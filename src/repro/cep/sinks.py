"""Sinks: where detections go.

On gesture detection, the paper's engine produces "a result tuple …  which
can be used to trigger arbitrary actions in any listening application".
A :class:`Sink` receives :class:`~repro.cep.matcher.Detection` objects; the
engine attaches one (or more) to every deployed query.

Thread safety
-------------
The sharded runtime (:mod:`repro.runtime`) emits detections from worker
threads while application code reads them, so the built-in sinks are
thread-safe: :class:`CollectingSink` guards its storage with a lock and
every read (``detections`` / ``outputs`` / ``last``) returns a *snapshot*,
never a live reference; :class:`FanOutSink` copies its sink list per emit
so ``add`` during delivery is safe.  ``FanOutSink`` additionally isolates
its children: one raising sink no longer starves the sinks after it — the
failure is recorded in :attr:`FanOutSink.failures`, every remaining sink
still receives the detection, and the first exception is re-raised once
the fan-out completes (so an inline emitter still observes it, exactly
like :meth:`~repro.streams.stream.Stream.push` does for subscribers; the
sharded runtime catches and records instead, because a user sink must not
kill a worker shard).
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.cep.matcher import Detection

#: Cap on remembered failures; long-running sessions must stay bounded.
_MAX_RECORDED_FAILURES = 256


class Sink(ABC):
    """A consumer of detections."""

    @abstractmethod
    def emit(self, detection: Detection) -> None:
        """Handle one detection."""


class CollectingSink(Sink):
    """Stores all detections in memory (the default sink; tests rely on it).

    Parameters
    ----------
    capacity:
        Optional bound on the number of stored detections; older detections
        are dropped first, which keeps long-running sessions bounded.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive when given")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._detections: List[Detection] = []

    @property
    def detections(self) -> List[Detection]:
        """Snapshot of the collected detections (safe under concurrent emit)."""
        with self._lock:
            return list(self._detections)

    def emit(self, detection: Detection) -> None:
        with self._lock:
            self._detections.append(detection)
            if self.capacity is not None and len(self._detections) > self.capacity:
                del self._detections[0 : len(self._detections) - self.capacity]

    def clear(self) -> None:
        with self._lock:
            self._detections.clear()

    def restore(self, detections: List[Detection]) -> None:
        """Replace the stored detections (snapshot recovery path).

        The capacity bound still applies: restoring more detections than
        ``capacity`` keeps the newest ones, exactly as if they had been
        emitted one by one.
        """
        with self._lock:
            self._detections = list(detections)
            if self.capacity is not None and len(self._detections) > self.capacity:
                del self._detections[0 : len(self._detections) - self.capacity]

    def outputs(self) -> List[str]:
        """Just the output values, in detection order."""
        return [d.output for d in self.detections]

    def __len__(self) -> int:
        with self._lock:
            return len(self._detections)

    def last(self) -> Optional[Detection]:
        with self._lock:
            return self._detections[-1] if self._detections else None


class CallbackSink(Sink):
    """Invokes a callable for every detection (application integration).

    Exceptions raised by the callback propagate to the emitter; wrap the
    callback (or rely on :class:`FanOutSink` isolation or the session's
    handler guard) when a failure must not break the data path.
    """

    def __init__(self, callback: Callable[[Detection], None]) -> None:
        self.callback = callback
        self.emitted = 0

    def emit(self, detection: Detection) -> None:
        self.callback(detection)
        self.emitted += 1


class NullSink(Sink):
    """Counts detections but keeps nothing (benchmarking)."""

    def __init__(self) -> None:
        self.emitted = 0

    def emit(self, detection: Detection) -> None:
        self.emitted += 1


@dataclass(frozen=True)
class SinkFailure:
    """One exception raised by a fanned-out sink (delivery was not broken)."""

    sink: Sink
    detection: Detection
    error: BaseException


class FanOutSink(Sink):
    """Forwards every detection to several sinks, isolating the fan-out.

    A raising child no longer prevents delivery to the remaining sinks:
    every sink receives the detection, each failure is recorded in
    :attr:`failures` (bounded, oldest dropped), and the **first** exception
    is re-raised once the fan-out completes — mirroring
    :meth:`~repro.streams.stream.Stream.push` — so the emitter still
    observes the failure (the sharded runtime catches and records it; the
    inline engine propagates it to the feeding caller, as before this
    class isolated anything).  ``add`` may race with ``emit`` — the sink
    list is copied per delivery.
    """

    def __init__(self, sinks: List[Sink]) -> None:
        self._lock = threading.Lock()
        self.sinks = list(sinks)
        self.failures: Deque[SinkFailure] = deque(maxlen=_MAX_RECORDED_FAILURES)

    def emit(self, detection: Detection) -> None:
        with self._lock:
            sinks = list(self.sinks)
        first_error: Optional[BaseException] = None
        for sink in sinks:
            try:
                sink.emit(detection)
            except Exception as error:  # noqa: BLE001 — finish the fan-out first
                self.failures.append(SinkFailure(sink, detection, error))
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error

    def add(self, sink: Sink) -> None:
        with self._lock:
            self.sinks.append(sink)
