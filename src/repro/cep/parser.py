"""Parser for the gesture query dialect.

The dialect is the one the paper's query generator produces (Fig. 1)::

    SELECT "swipe_right"
    MATCHING (
      kinect_t(
        abs(rhand_x - 0) < 50 and abs(rhand_y - 150) < 50
      ) ->
      kinect_t(
        abs(rhand_x - 400) < 50
      )
      within 1 seconds select first consume all
    ) ->
    kinect_t(
      abs(rhand_x - 800) < 50
    )
    within 1 seconds select first consume all;

Grammar (informally)::

    query       := SELECT STRING MATCHING pattern [";"]
    pattern     := term ("->" term)* [constraints]
    term        := IDENT "(" expression ")"          -- an event pattern
                 | "(" pattern ")"                   -- a nested sequence
    constraints := ["within" NUMBER unit] ["select" IDENT] ["consume" IDENT]
    expression  := the usual boolean/arithmetic expression grammar

Keywords are case-insensitive.  Time units: ``seconds``, ``second``, ``s``,
``ms``, ``milliseconds``, ``minutes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cep.expressions import (
    BinaryOp,
    BooleanOp,
    Comparison,
    Expression,
    FieldRef,
    FunctionCall,
    Literal,
    NotOp,
    UnaryMinus,
)
from repro.cep.query import (
    ConsumePolicy,
    EventPattern,
    PatternNode,
    Query,
    SelectPolicy,
    SequencePattern,
)
from repro.errors import QuerySyntaxError

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_KEYWORDS = {
    "select",
    "matching",
    "within",
    "consume",
    "and",
    "or",
    "not",
    "true",
    "false",
}

_MULTI_CHAR_OPERATORS = ("->", "<=", ">=", "==", "!=", "<>")
_SINGLE_CHAR_OPERATORS = "()<>=+-*/,;"

_TIME_UNITS = {
    "s": 1.0,
    "sec": 1.0,
    "secs": 1.0,
    "second": 1.0,
    "seconds": 1.0,
    "ms": 0.001,
    "millisecond": 0.001,
    "milliseconds": 0.001,
    "minute": 60.0,
    "minutes": 60.0,
    "min": 60.0,
}


@dataclass(frozen=True)
class Token:
    """A lexical token with its position for error reporting."""

    kind: str  # "ident", "keyword", "number", "string", "op", "eof"
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(text: str) -> List[Token]:
    """Split query text into tokens.

    Raises
    ------
    QuerySyntaxError
        On unexpected characters or unterminated strings.
    """
    tokens: List[Token] = []
    line, column = 1, 1
    index = 0
    length = len(text)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and text[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = text[index]
        if char in " \t\r\n":
            advance(1)
            continue
        if char == "#" or text.startswith("--", index):
            # Comment until end of line.
            while index < length and text[index] != "\n":
                advance(1)
            continue
        start_line, start_column = line, column
        matched_multi = False
        for operator in _MULTI_CHAR_OPERATORS:
            if text.startswith(operator, index):
                tokens.append(Token("op", operator, start_line, start_column))
                advance(len(operator))
                matched_multi = True
                break
        if matched_multi:
            continue
        if char in _SINGLE_CHAR_OPERATORS:
            tokens.append(Token("op", char, start_line, start_column))
            advance(1)
            continue
        if char in "\"'":
            quote = char
            end = index + 1
            while end < length and text[end] != quote:
                end += 1
            if end >= length:
                raise QuerySyntaxError("unterminated string literal", start_line, start_column)
            value = text[index + 1:end]
            tokens.append(Token("string", value, start_line, start_column))
            advance(end - index + 1)
            continue
        if char.isdigit() or (char == "." and index + 1 < length and text[index + 1].isdigit()):
            end = index
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            tokens.append(Token("number", text[index:end], start_line, start_column))
            advance(end - index)
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            kind = "keyword" if word.lower() in _KEYWORDS else "ident"
            tokens.append(Token(kind, word, start_line, start_column))
            advance(end - index)
            continue
        raise QuerySyntaxError(f"unexpected character {char!r}", start_line, start_column)

    tokens.append(Token("eof", "", line, column))
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- token helpers -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        position = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[position]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind != "eof":
            self._position += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> QuerySyntaxError:
        token = token or self._peek()
        return QuerySyntaxError(message, token.line, token.column)

    def _expect_op(self, operator: str) -> Token:
        token = self._peek()
        if token.kind != "op" or token.value != operator:
            raise self._error(f"expected '{operator}' but found {token.value!r}")
        return self._next()

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._peek()
        if token.kind != "keyword" or token.value.lower() != keyword:
            raise self._error(f"expected keyword '{keyword}' but found {token.value!r}")
        return self._next()

    def _match_op(self, operator: str) -> bool:
        token = self._peek()
        if token.kind == "op" and token.value == operator:
            self._next()
            return True
        return False

    def _match_keyword(self, keyword: str) -> bool:
        token = self._peek()
        if token.kind == "keyword" and token.value.lower() == keyword:
            self._next()
            return True
        return False

    # -- query level -----------------------------------------------------------------

    def parse_query(self) -> Query:
        self._expect_keyword("select")
        output_token = self._next()
        if output_token.kind not in ("string", "ident"):
            raise self._error("expected the output value after SELECT", output_token)
        output = output_token.value
        self._expect_keyword("matching")
        pattern = self.parse_pattern()
        self._match_op(";")
        if self._peek().kind != "eof":
            raise self._error("unexpected trailing input after query")
        if isinstance(pattern, EventPattern):
            pattern = SequencePattern(elements=(pattern,))
        return Query(output=output, pattern=pattern)

    # -- pattern level ------------------------------------------------------------------

    def parse_pattern(self) -> PatternNode:
        elements: List[PatternNode] = [self._parse_term()]
        while self._match_op("->"):
            elements.append(self._parse_term())
        within, select, consume = self._parse_constraints()
        if len(elements) == 1 and within is None and select is None and consume is None:
            return elements[0]
        return SequencePattern(
            elements=tuple(elements),
            within_seconds=within,
            select=select or SelectPolicy.FIRST,
            consume=consume or ConsumePolicy.ALL,
        )

    def _parse_term(self) -> PatternNode:
        token = self._peek()
        if token.kind == "op" and token.value == "(":
            self._next()
            inner = self.parse_pattern()
            self._expect_op(")")
            return inner
        if token.kind == "ident":
            # Either an event pattern "stream(expr)" — streams are idents
            # followed by '(' — or a syntax error.
            next_token = self._peek(1)
            if next_token.kind == "op" and next_token.value == "(":
                stream = self._next().value
                self._expect_op("(")
                predicate = self.parse_expression()
                self._expect_op(")")
                return EventPattern(stream=stream, predicate=predicate)
        raise self._error(
            "expected an event pattern 'stream(<predicate>)' or a "
            "parenthesised sequence"
        )

    def _parse_constraints(
        self,
    ) -> Tuple[Optional[float], Optional[SelectPolicy], Optional[ConsumePolicy]]:
        within: Optional[float] = None
        select: Optional[SelectPolicy] = None
        consume: Optional[ConsumePolicy] = None
        while True:
            if self._match_keyword("within"):
                number_token = self._next()
                if number_token.kind != "number":
                    raise self._error("expected a number after 'within'", number_token)
                value = float(number_token.value)
                unit_token = self._peek()
                factor = 1.0
                if unit_token.kind in ("ident", "keyword"):
                    unit = unit_token.value.lower()
                    if unit in _TIME_UNITS:
                        factor = _TIME_UNITS[unit]
                        self._next()
                within = value * factor
                continue
            if self._match_keyword("select"):
                policy_token = self._next()
                try:
                    select = SelectPolicy(policy_token.value.lower())
                except ValueError:
                    raise self._error(
                        f"unknown select policy '{policy_token.value}'", policy_token
                    ) from None
                continue
            if self._match_keyword("consume"):
                policy_token = self._next()
                try:
                    consume = ConsumePolicy(policy_token.value.lower())
                except ValueError:
                    raise self._error(
                        f"unknown consume policy '{policy_token.value}'", policy_token
                    ) from None
                continue
            break
        return within, select, consume

    # -- expression level -------------------------------------------------------------------

    def parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        operands = [self._parse_and()]
        while self._match_keyword("or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("or", operands)

    def _parse_and(self) -> Expression:
        operands = [self._parse_not()]
        while self._match_keyword("and"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("and", operands)

    def _parse_not(self) -> Expression:
        if self._match_keyword("not"):
            return NotOp(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.kind == "op" and token.value in ("<", "<=", ">", ">=", "==", "=", "!=", "<>"):
            operator = self._next().value
            right = self._parse_additive()
            return Comparison(operator, left, right)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("+", "-"):
                operator = self._next().value
                right = self._parse_multiplicative()
                left = BinaryOp(operator, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("*", "/"):
                operator = self._next().value
                right = self._parse_unary()
                left = BinaryOp(operator, left, right)
            else:
                return left

    def _parse_unary(self) -> Expression:
        if self._match_op("-"):
            return UnaryMinus(self._parse_unary())
        if self._match_op("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.kind == "number":
            self._next()
            value = float(token.value)
            if value == int(value) and "." not in token.value:
                return Literal(int(value))
            return Literal(value)
        if token.kind == "string":
            self._next()
            return Literal(token.value)
        if token.kind == "keyword" and token.value.lower() in ("true", "false"):
            self._next()
            return Literal(token.value.lower() == "true")
        if token.kind == "op" and token.value == "(":
            self._next()
            inner = self.parse_expression()
            self._expect_op(")")
            return inner
        if token.kind == "ident":
            name = self._next().value
            if self._match_op("("):
                arguments: List[Expression] = []
                if not (self._peek().kind == "op" and self._peek().value == ")"):
                    arguments.append(self.parse_expression())
                    while self._match_op(","):
                        arguments.append(self.parse_expression())
                self._expect_op(")")
                return FunctionCall(name, arguments)
            return FieldRef(name)
        raise self._error(f"unexpected token {token.value!r} in expression")


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def parse_query(text: str) -> Query:
    """Parse a full gesture query.

    Examples
    --------
    >>> query = parse_query(
    ...     'SELECT "demo" MATCHING kinect_t(rhand_x > 100) -> '
    ...     'kinect_t(rhand_x > 500) within 2 seconds select first consume all;'
    ... )
    >>> query.output
    'demo'
    >>> query.event_count()
    2
    """
    parser = _Parser(tokenize(text))
    return parser.parse_query()


def parse_expression(text: str) -> Expression:
    """Parse a standalone predicate expression (useful for manual tuning)."""
    parser = _Parser(tokenize(text))
    expression = parser.parse_expression()
    trailing = parser._peek()
    if trailing.kind != "eof":
        raise QuerySyntaxError(
            f"unexpected trailing input {trailing.value!r}",
            trailing.line,
            trailing.column,
        )
    return expression
