"""Snapshot files: captured state, anchored to an event-log offset.

A snapshot is one JSON file, ``snapshot-<offset>.json``, holding whatever
``capture_state()`` returned (engine, sharded runtime, or the session
wrapper around them) plus the log offset the state is consistent with:
recovery restores the newest snapshot and replays the log strictly after
its offset.  Files are written atomically (tmp + rename + fsync) so a
crash mid-snapshot can never leave a half-written file that shadows an
older good one, and every file is a versioned envelope
(:func:`repro.storage.serialization.dump_envelope`) sharing the
library-wide format-evolution scheme.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.errors import SerializationError, SnapshotError
from repro.storage.serialization import FORMAT_VERSION, dump_envelope, load_envelope

__all__ = ["SnapshotRecord", "SnapshotStore"]

_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".json"
_SNAPSHOT_KIND = "snapshot"


@dataclass(frozen=True)
class SnapshotRecord:
    """One loaded snapshot: the captured state and its log anchor."""

    log_offset: int
    state: Dict[str, Any]
    path: Path


def _snapshot_name(log_offset: int) -> str:
    # Offsets sort lexicographically thanks to the fixed width; -1 (snapshot
    # before any log entry) maps to 0-width slot "-0000000001" which still
    # sorts first.
    return f"{_SNAPSHOT_PREFIX}{log_offset:012d}{_SNAPSHOT_SUFFIX}"


class SnapshotStore:
    """Reads and writes the snapshot files of one durability directory.

    Parameters
    ----------
    directory:
        Where snapshot files live (shared with the event log; the file
        name prefixes keep them apart).  Created if missing.
    keep_last:
        Retain at most this many snapshots; older ones are pruned after
        each save (``None`` keeps everything).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        keep_last: Optional[int] = 4,
    ) -> None:
        if keep_last is not None and keep_last < 1:
            raise ValueError("keep_last must be positive when given")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep_last = keep_last

    # -- writing -----------------------------------------------------------------------

    def save(self, state: Mapping[str, Any], log_offset: int) -> Path:
        """Persist ``state`` anchored at ``log_offset``; returns the path.

        Atomic: the file appears fully written or not at all.
        """
        text = dump_envelope(
            _SNAPSHOT_KIND, {"log_offset": int(log_offset), "state": dict(state)}
        )
        path = self.directory / _snapshot_name(log_offset)
        tmp = path.with_suffix(path.suffix + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            raise SnapshotError(f"cannot write snapshot {path}: {exc}") from exc
        self._prune()
        return path

    def _prune(self) -> None:
        if self.keep_last is None:
            return
        paths = self.paths()
        for path in paths[: -self.keep_last]:
            # A vanished or busy file is not worth failing a save.
            with contextlib.suppress(OSError):
                path.unlink()

    # -- reading -----------------------------------------------------------------------

    def paths(self) -> List[Path]:
        """Snapshot files on disk, oldest (lowest offset) first."""
        return sorted(
            path
            for path in self.directory.glob(
                f"{_SNAPSHOT_PREFIX}*{_SNAPSHOT_SUFFIX}"
            )
            if path.is_file()
        )

    def load(self, path: Union[str, Path]) -> SnapshotRecord:
        """Load and validate one snapshot file."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
        try:
            payload = load_envelope(text, _SNAPSHOT_KIND, version=FORMAT_VERSION)
        except SerializationError as exc:
            raise SnapshotError(f"malformed snapshot {path}: {exc}") from exc
        try:
            return SnapshotRecord(
                log_offset=int(payload["log_offset"]),
                state=dict(payload["state"]),
                path=path,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed snapshot {path}: {exc}") from exc

    def latest(self) -> Optional[SnapshotRecord]:
        """The newest snapshot, or ``None`` if none exists."""
        paths = self.paths()
        return self.load(paths[-1]) if paths else None

    def best_for(self, offset: int) -> Optional[SnapshotRecord]:
        """The newest snapshot anchored at or before ``offset`` (for seek)."""
        best: Optional[Path] = None
        for path in self.paths():
            name = path.name[len(_SNAPSHOT_PREFIX) : -len(_SNAPSHOT_SUFFIX)]
            try:
                anchored = int(name)
            except ValueError:
                continue
            if anchored <= offset:
                best = path
        return self.load(best) if best is not None else None

    def __len__(self) -> int:
        return len(self.paths())

    def __repr__(self) -> str:
        return (
            f"SnapshotStore(directory={str(self.directory)!r}, "
            f"snapshots={len(self)})"
        )
