"""Durability orchestration: one manager owning the log and the snapshots.

:class:`DurabilityManager` is the glue between a live stack (an inline
:class:`~repro.cep.engine.CEPEngine` or a
:class:`~repro.runtime.ShardedRuntime` — anything exposing
``add_ingest_tap`` and ``capture_state``) and the on-disk formats of
:mod:`repro.persistence.log` / :mod:`repro.persistence.snapshots`:

* :meth:`attach` installs the write-ahead ingest tap, so every externally
  fed tuple is logged *before* delivery;
* :meth:`log_control` records state-changing operations (deploy /
  undeploy / clear / …) in the same ordered log;
* :meth:`snapshot` captures the target's state at a quiesced point and
  anchors it to the current log offset; :meth:`maybe_snapshot` does so
  automatically every ``snapshot_every_tuples`` ingested tuples;
* :meth:`recover_into` drives recovery: restore the newest snapshot, then
  replay the log tail — with logging *suspended*, so replayed work is not
  re-appended.

The manager is deliberately policy-free about *what* state means: capture
and restore are callables supplied by the owner (the session façade wires
its own), which keeps this module free of engine imports.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Union

from repro.errors import RecoveryError
from repro.observability.clock import perf_clock
from repro.persistence.log import FSYNC_POLICIES, EventLog, LogEntry, read_log
from repro.persistence.snapshots import SnapshotStore
from repro.runtime.metrics import DurabilityMetrics

__all__ = ["DurabilityConfig", "DurabilityManager", "RecoveryResult"]


@dataclass(frozen=True)
class DurabilityConfig:
    """Configuration of the durability subsystem.

    Attributes
    ----------
    directory:
        Where the event log segments and snapshot files live.  Created on
        first use; pointing a fresh session at an existing directory
        *appends* (recovery is explicit, via ``GestureSession.recover``).
    fsync:
        Disk-sync policy of the event log: ``"always"`` (sync every
        append), ``"batch"`` (every few appends) or ``"rotate"``
        (default; on segment rotation and close).  Any policy survives a
        killed process — fsync buys power-loss durability.
    segment_max_bytes / segment_max_entries:
        Segment rotation thresholds (see :class:`~repro.persistence.log.EventLog`).
    snapshot_every_tuples:
        Take a snapshot automatically once this many tuples were logged
        since the last one (``None`` disables automatic snapshots; manual
        ``session.snapshot()`` always works).
    keep_snapshots:
        Retain at most this many snapshot files (``None`` keeps all).
    """

    directory: Union[str, Path]
    fsync: str = "rotate"
    segment_max_bytes: Optional[int] = 4 * 1024 * 1024
    segment_max_entries: Optional[int] = None
    snapshot_every_tuples: Optional[int] = None
    keep_snapshots: Optional[int] = 4

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {self.fsync!r}; expected one of "
                f"{FSYNC_POLICIES}"
            )
        if self.snapshot_every_tuples is not None and self.snapshot_every_tuples < 1:
            raise ValueError("snapshot_every_tuples must be positive when given")


@dataclass(frozen=True)
class RecoveryResult:
    """What :meth:`DurabilityManager.recover_into` did."""

    snapshot_offset: Optional[int]
    replayed_entries: int
    replayed_tuples: int


class DurabilityManager:
    """Owns one durability directory: event log + snapshot store.

    Parameters
    ----------
    target:
        The live stack: must expose ``add_ingest_tap`` /
        ``remove_ingest_tap`` (engine or sharded runtime).
    config:
        The :class:`DurabilityConfig`.
    capture:
        Zero-argument callable returning the JSON-serialisable state to
        snapshot (the owner decides what "state" spans).
    metrics:
        :class:`~repro.runtime.metrics.DurabilityMetrics` to record on; a
        private instance is created when omitted.
    """

    def __init__(
        self,
        target: Any,
        config: DurabilityConfig,
        capture: Callable[[], Mapping[str, Any]],
        metrics: Optional[DurabilityMetrics] = None,
    ) -> None:
        self.config = config
        self.metrics = metrics if metrics is not None else DurabilityMetrics()
        self.log = EventLog(
            config.directory,
            segment_max_bytes=config.segment_max_bytes,
            segment_max_entries=config.segment_max_entries,
            fsync=config.fsync,
            metrics=self.metrics,
        )
        self.snapshots = SnapshotStore(config.directory, keep_last=config.keep_snapshots)
        self._target = target
        self._capture = capture
        self._suspended = 0
        self._tuples_since_snapshot = 0
        self._attached = False
        self._closed = False

    # -- wiring ------------------------------------------------------------------------

    def attach(self) -> None:
        """Install the write-ahead ingest tap on the target."""
        if not self._attached:
            self._target.add_ingest_tap(self._tap)
            self._attached = True

    def detach(self) -> None:
        if self._attached:
            self._target.remove_ingest_tap(self._tap)
            self._attached = False

    def _tap(self, stream: str, records: Any, batch_size: Optional[int]) -> None:
        if self._suspended or self._closed:
            return
        self.log.append_tuples(stream, records, batch_size)
        self._tuples_since_snapshot += len(records)

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Temporarily stop logging (used while *replaying* logged work)."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    # -- control + snapshot ------------------------------------------------------------

    def log_control(self, control: str, payload: Any = None) -> Optional[int]:
        """Record a state-changing operation; no-op while suspended."""
        if self._suspended or self._closed:
            return None
        return self.log.append_control(control, payload)

    def snapshot(self) -> int:
        """Capture and persist the target's state; returns the anchor offset.

        Must be called at a quiesced point — for the session façade that is
        after a synchronous ``feed`` returned (sharded captures drain their
        queues themselves).  The snapshot is anchored at the log's current
        last offset: recovery replays strictly after it.
        """
        started = perf_clock()
        state = self._capture()
        offset = self.log.last_offset
        self.snapshots.save(state, offset)
        self.log.append_snapshot_marker({"log_offset": offset})
        self.metrics.add_snapshot(perf_clock() - started)
        self._tuples_since_snapshot = 0
        return offset

    def maybe_snapshot(self) -> Optional[int]:
        """Snapshot if the automatic threshold has been crossed."""
        every = self.config.snapshot_every_tuples
        if every is None or self._suspended or self._closed:
            return None
        if self._tuples_since_snapshot >= every:
            return self.snapshot()
        return None

    # -- recovery ----------------------------------------------------------------------

    def recover_into(
        self,
        restore: Callable[[Dict[str, Any]], None],
        apply_entry: Callable[[LogEntry], None],
    ) -> RecoveryResult:
        """Restore the newest snapshot, then replay the log tail.

        ``restore`` receives the snapshot state (skipped when no snapshot
        exists — recovery then replays the whole log from offset 0);
        ``apply_entry`` receives every tuple/control entry after the
        snapshot anchor, in order.  Logging is suspended throughout, so
        replayed work is not appended again.

        Raises
        ------
        repro.errors.RecoveryError
            If restoring or replaying fails (chains the original error).
        """
        record = self.snapshots.latest()
        start_offset = 0
        snapshot_offset: Optional[int] = None
        replayed = 0
        tuples = 0
        with self.suspended():
            if record is not None:
                try:
                    restore(record.state)
                except Exception as exc:
                    raise RecoveryError(
                        f"cannot restore snapshot {record.path.name}: {exc}"
                    ) from exc
                snapshot_offset = record.log_offset
                start_offset = record.log_offset + 1
            for entry in read_log(self.config.directory, start_offset):
                if entry.op == "snapshot":
                    continue
                try:
                    apply_entry(entry)
                except Exception as exc:
                    raise RecoveryError(
                        f"cannot replay log entry {entry.offset} "
                        f"({entry.op}): {exc}"
                    ) from exc
                replayed += 1
                if entry.op == "tuples" and entry.records:
                    tuples += len(entry.records)
        self.metrics.add_replayed(replayed)
        self.metrics.add_recovery()
        return RecoveryResult(
            snapshot_offset=snapshot_offset,
            replayed_entries=replayed,
            replayed_tuples=tuples,
        )

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Detach the tap and seal the log (flush + fsync).  Idempotent."""
        if self._closed:
            return
        self.detach()
        self.log.close()
        self._closed = True

    def __repr__(self) -> str:
        return (
            f"DurabilityManager(directory={str(self.config.directory)!r}, "
            f"last_offset={self.log.last_offset}, "
            f"snapshots={len(self.snapshots)})"
        )
