"""Durability: write-ahead event log, snapshots, recovery and replay.

The subsystem splits into four layers, each usable on its own:

* :mod:`repro.persistence.log` — the append-only segmented event log
  (:class:`EventLog`, :func:`read_log`);
* :mod:`repro.persistence.snapshots` — atomic snapshot files anchored to
  log offsets (:class:`SnapshotStore`);
* :mod:`repro.persistence.manager` — the orchestration glue installed on
  a live engine or sharded runtime (:class:`DurabilityManager`,
  configured by :class:`DurabilityConfig`);
* :mod:`repro.persistence.replay` — deterministic, seekable re-execution
  of a recorded directory (:class:`ReplayController`).

The session façade wires everything together::

    from repro import DurabilityConfig, GestureSession

    with GestureSession(durability=DurabilityConfig("./run1")) as session:
        session.deploy("PATTERN SEQ(up u, down d) ...")
        session.feed(frames)

    recovered = GestureSession.recover(DurabilityConfig("./run1"))
"""

from repro.persistence.log import (
    BATCH_FSYNC_EVERY,
    FSYNC_POLICIES,
    EventLog,
    LogEntry,
    read_log,
)
from repro.persistence.manager import (
    DurabilityConfig,
    DurabilityManager,
    RecoveryResult,
)
from repro.persistence.replay import (
    ReplayController,
    apply_engine_control,
    restore_engine_state,
)
from repro.persistence.snapshots import SnapshotRecord, SnapshotStore

__all__ = [
    "BATCH_FSYNC_EVERY",
    "FSYNC_POLICIES",
    "EventLog",
    "LogEntry",
    "read_log",
    "DurabilityConfig",
    "DurabilityManager",
    "RecoveryResult",
    "ReplayController",
    "apply_engine_control",
    "restore_engine_state",
    "SnapshotRecord",
    "SnapshotStore",
]
