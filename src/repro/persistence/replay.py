"""Deterministic replay of a recorded event log.

:class:`ReplayController` re-drives a fresh target (an engine, a sharded
runtime, or a whole ``GestureSession`` — whatever ``target_factory``
builds) from a durability directory, entry by entry, with VCR-style
controls:

* **faster than real time** — ``speed=None`` (default) applies entries as
  fast as possible; ``speed=2.0`` paces tuple entries at twice the
  recorded event-time rate (``1.0`` is real time);
* **pause / resume** — :meth:`pause` stops an in-progress :meth:`play`
  between entries (callable from a detection handler or another thread);
* **seek** — :meth:`seek` jumps to any log offset.  Seeking backward
  rebuilds the target from the newest snapshot at or before the requested
  offset (or from scratch) and replays forward, so the state at any offset
  is exactly the state the live run had there — determinism is what makes
  seeking *meaningful*.

The controller is policy-free about target semantics: ``restore`` maps a
snapshot state into a fresh target and ``apply_control`` applies one
logged control operation; the session façade supplies both
(``session.replay()``), and the defaults work for any target exposing the
engine surface (``push_many`` / ``restore_state`` / ``register_query`` /
…).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import RecoveryError, ReplayStateError
from repro.persistence.log import LogEntry, read_log
from repro.persistence.snapshots import SnapshotStore

__all__ = ["ReplayController", "apply_engine_control", "restore_engine_state"]

#: Sentinel distinguishing "parameter not given" from an explicit ``None``.
_UNSET: Any = object()


def apply_engine_control(target: Any, control: str, payload: Any) -> None:
    """Apply one logged control to a bare engine / sharded runtime.

    The default ``apply_control`` of :class:`ReplayController`; the session
    façade substitutes its own (which routes deploys through the detector).
    """
    if control == "deploy":
        if payload["name"] not in getattr(target, "queries", {}):
            target.register_query(
                payload["text"], name=payload["name"], create_missing_streams=True
            )
    elif control == "undeploy":
        target.unregister_query(payload["name"])
    elif control == "enable":
        target.enable_query(payload["name"], bool(payload["enabled"]))
    elif control == "clear":
        target.clear_detections()
        target.reset_matchers()
        reset_transformers = getattr(target, "reset_transformers", None)
        if callable(reset_transformers):
            reset_transformers()
    elif control == "clear_detections":
        target.clear_detections()
    elif control == "reset_matchers":
        target.reset_matchers()
    else:
        raise RecoveryError(f"unknown logged control operation {control!r}")


def restore_engine_state(target: Any, state: Dict[str, Any]) -> None:
    """Default snapshot restorer: ``target.restore_state(state)``, with the
    session façade's ``{"kind": "session", "engine": …}`` wrapper unwrapped
    so a bare engine target can replay a session-recorded directory."""
    if state.get("kind") == "session":
        state = state["engine"]
    target.restore_state(state)


class ReplayController:
    """Replays one durability directory into targets built on demand.

    Parameters
    ----------
    directory:
        A durability directory (event-log segments + snapshots).
    target_factory:
        Builds a fresh, empty target.  Called once up front and again on
        every backward :meth:`seek`.
    restore:
        ``(target, snapshot_state) -> None`` — map a snapshot into a fresh
        target (default :func:`restore_engine_state`).
    apply_control:
        ``(target, control, payload) -> None`` — apply one logged control
        (default :func:`apply_engine_control`).
    speed:
        Default pacing of :meth:`play`: ``None`` replays as fast as
        possible, a positive float paces tuple entries at that multiple of
        the recorded event-time rate (``1.0`` = real time).
    timestamp_field:
        Tuple field carrying event time, used only for pacing.
    """

    def __init__(
        self,
        directory: Union[str, Any],
        target_factory: Callable[[], Any],
        restore: Callable[[Any, Dict[str, Any]], None] = restore_engine_state,
        apply_control: Callable[[Any, str, Any], None] = apply_engine_control,
        speed: Optional[float] = None,
        timestamp_field: str = "ts",
    ) -> None:
        if speed is not None and speed <= 0:
            raise ValueError("speed must be positive when given (None = unpaced)")
        self.directory = directory
        self.speed = speed
        self.timestamp_field = timestamp_field
        self._factory = target_factory
        self._restore = restore
        self._apply_control = apply_control
        self._snapshots = SnapshotStore(directory)
        self._entries: List[LogEntry] = [
            entry for entry in read_log(directory) if entry.op != "snapshot"
        ]
        self._paused = False
        self._last_event_time: Optional[float] = None
        self.target = target_factory()
        #: Offset of the last applied entry (``-1`` before any).
        self.position = -1

    # -- introspection -----------------------------------------------------------------

    @property
    def last_offset(self) -> int:
        """Offset of the final replayable entry (``-1`` for an empty log)."""
        return self._entries[-1].offset if self._entries else -1

    @property
    def finished(self) -> bool:
        return self.position >= self.last_offset

    @property
    def paused(self) -> bool:
        return self._paused

    def __len__(self) -> int:
        return len(self._entries)

    # -- controls ----------------------------------------------------------------------

    def pause(self) -> None:
        """Stop an in-progress :meth:`play` after the current entry."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False

    def step(self, entries: int = 1) -> int:
        """Apply up to ``entries`` next entries (no pacing); returns applied."""
        applied = 0
        for entry in self._pending():
            if applied >= entries:
                break
            self._apply(entry)
            applied += 1
        return applied

    def play(
        self,
        until_offset: Optional[int] = None,
        speed: Any = _UNSET,
    ) -> int:
        """Apply entries until the end, ``until_offset`` (inclusive) or
        :meth:`pause`; returns the number applied.

        ``speed`` overrides the controller default for this call.
        """
        pace = self.speed if speed is _UNSET else speed
        if pace is not None and pace <= 0:
            raise ValueError("speed must be positive when given (None = unpaced)")
        self._paused = False
        applied = 0
        for entry in self._pending():
            if until_offset is not None and entry.offset > until_offset:
                break
            if self._paused:
                break
            if pace is not None:
                self._pace(entry, pace)
            self._apply(entry)
            applied += 1
        return applied

    def seek(self, offset: int) -> None:
        """Jump so the target holds exactly the state the live run had
        after log offset ``offset`` (``-1`` = pristine).

        Forward seeks replay the gap; backward seeks rebuild the target
        from the newest snapshot at or before ``offset`` (or from scratch)
        and replay forward — deterministically identical either way.
        """
        if offset < -1 or offset > self.last_offset:
            raise ReplayStateError(
                f"cannot seek to offset {offset}; the log spans -1..{self.last_offset}"
            )
        if offset < self.position:
            record = self._snapshots.best_for(offset)
            self.target = self._factory()
            self._last_event_time = None
            if record is not None:
                self._restore(self.target, record.state)
                self.position = record.log_offset
            else:
                self.position = -1
        for entry in self._pending():
            if entry.offset > offset:
                break
            self._apply(entry)

    # -- internals ---------------------------------------------------------------------

    def _pending(self):
        for entry in self._entries:
            if entry.offset > self.position:
                yield entry

    def _apply(self, entry: LogEntry) -> None:
        if entry.op == "tuples":
            self.target.push_many(
                entry.stream, entry.records or [], batch_size=entry.batch_size
            )
        elif entry.op == "control":
            self._apply_control(self.target, entry.control, entry.payload)
        self.position = entry.offset

    def _pace(self, entry: LogEntry, speed: float) -> None:
        """Sleep so tuple entries arrive at ``speed`` × the recorded rate."""
        if entry.op != "tuples" or not entry.records:
            return
        stamp = entry.records[0].get(self.timestamp_field)
        if stamp is None:
            return
        stamp = float(stamp)
        if self._last_event_time is not None and stamp > self._last_event_time:
            time.sleep((stamp - self._last_event_time) / speed)
        last = entry.records[-1].get(self.timestamp_field)
        self._last_event_time = float(last) if last is not None else stamp

    def __repr__(self) -> str:
        return (
            f"ReplayController(position={self.position}, "
            f"last_offset={self.last_offset}, entries={len(self._entries)}, "
            f"speed={self.speed})"
        )
