"""The append-only, segmented event log (write-ahead side of durability).

Every tuple fed into the stack — and every state-changing control
operation (deploy / undeploy / clear / …) — is appended here *before* any
matcher sees it, so a crash at an arbitrary point can always be repaired
by replaying the tail (:mod:`repro.persistence.replay`).  The log is a
directory of JSONL segments plus a manifest::

    events-00000001.jsonl     one JSON entry per line, header line first
    events-00000002.jsonl
    manifest.json             segment list, rewritten atomically

Entries carry monotonically increasing integer **offsets** — the
coordinate system snapshots and replay seeking use.  Every line (header,
manifest, entry) is a versioned envelope
(:func:`repro.storage.serialization.dump_envelope`), so the log shares the
library-wide format-evolution scheme.

Durability model
----------------
Each append is ``write()`` + ``flush()``: the bytes reach the OS page
cache, which survives a killed *process* (the SIGKILL crash test relies on
it) though not a powered-off machine.  The ``fsync`` policy adds disk
durability: ``"always"`` syncs every append, ``"batch"`` every
:data:`BATCH_FSYNC_EVERY` appends, ``"rotate"`` (default) only on segment
rotation and close.  Segments rotate by size and/or entry count; a new
writer always starts a fresh segment, so a segment whose final line was
cut off mid-write is never appended to (readers tolerate exactly one
truncated line, at the very end of the last segment).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro.errors import EventLogError
from repro.observability.clock import perf_clock
from repro.storage.serialization import FORMAT_VERSION, dump_envelope, load_envelope

__all__ = [
    "FSYNC_POLICIES",
    "BATCH_FSYNC_EVERY",
    "LogEntry",
    "EventLog",
    "read_log",
]

#: Accepted values of the ``fsync`` policy.
FSYNC_POLICIES = ("always", "batch", "rotate")

#: With ``fsync="batch"``: sync after this many appends (and on rotate/close).
BATCH_FSYNC_EVERY = 64

_SEGMENT_PREFIX = "events-"
_SEGMENT_SUFFIX = ".jsonl"
_MANIFEST_NAME = "manifest.json"

_ENTRY_KIND = "log-entry"
_HEADER_KIND = "event-log-segment"
_MANIFEST_KIND = "event-log-manifest"

#: Operations an entry can record.
_ENTRY_OPS = ("tuples", "control", "snapshot")


@dataclass(frozen=True)
class LogEntry:
    """One replayable record of the event log.

    ``op`` is ``"tuples"`` (a chunk of ingested tuples), ``"control"`` (a
    state-changing operation such as a deploy) or ``"snapshot"`` (a barrier
    marker noting that a snapshot was taken at this point).
    """

    offset: int
    op: str
    stream: Optional[str] = None
    records: Optional[List[Dict[str, Any]]] = None
    batch_size: Optional[int] = None
    control: Optional[str] = None
    payload: Any = None

    def to_line(self) -> str:
        body: Dict[str, Any] = {"offset": self.offset, "op": self.op}
        if self.op == "tuples":
            body["stream"] = self.stream
            body["records"] = self.records
            body["batch_size"] = self.batch_size
        elif self.op == "control":
            body["control"] = self.control
            body["payload"] = self.payload
        else:
            body["payload"] = self.payload
        return dump_envelope(_ENTRY_KIND, body)

    @staticmethod
    def from_payload(payload: Mapping[str, Any]) -> "LogEntry":
        op = payload.get("op")
        if op not in _ENTRY_OPS:
            raise EventLogError(f"log entry has unknown op {op!r}")
        return LogEntry(
            offset=int(payload["offset"]),
            op=op,
            stream=payload.get("stream"),
            records=payload.get("records"),
            batch_size=payload.get("batch_size"),
            control=payload.get("control"),
            payload=payload.get("payload"),
        )


def _segment_name(index: int) -> str:
    return f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"


def _segment_index(name: str) -> int:
    return int(name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)])


def _list_segments(directory: Path) -> List[Path]:
    """All segment files on disk, in segment order (manifest-independent:
    a crash can leave a segment the manifest never recorded)."""
    segments = [
        path
        for path in directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")
        if path.is_file()
    ]
    return sorted(segments, key=lambda path: _segment_index(path.name))


class EventLog:
    """Appending side of the segmented event log.

    Parameters
    ----------
    directory:
        Log directory; created if missing.  A fresh segment is started on
        every open — an old segment is never appended to, so a torn final
        line from a crash stays isolated at a segment end.
    segment_max_bytes / segment_max_entries:
        Rotate the active segment once it holds this many bytes / entries
        (whichever triggers first; ``None`` disables that trigger).
    fsync:
        Disk-durability policy: ``"always"``, ``"batch"`` or ``"rotate"``
        (see the module docstring).
    metrics:
        Optional :class:`~repro.runtime.metrics.DurabilityMetrics` to
        record appended bytes, fsyncs and rotations on.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        segment_max_bytes: Optional[int] = 4 * 1024 * 1024,
        segment_max_entries: Optional[int] = None,
        fsync: str = "rotate",
        metrics: Optional[Any] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}"
            )
        if segment_max_bytes is not None and segment_max_bytes < 1:
            raise ValueError("segment_max_bytes must be positive when given")
        if segment_max_entries is not None and segment_max_entries < 1:
            raise ValueError("segment_max_entries must be positive when given")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = segment_max_bytes
        self.segment_max_entries = segment_max_entries
        self.fsync_policy = fsync
        self.metrics = metrics
        self._closed = False
        self._appends_since_fsync = 0

        existing = _list_segments(self.directory)
        last_offset = -1
        if existing:
            for entry in read_log(self.directory):
                last_offset = entry.offset
        self._next_offset = last_offset + 1
        self._segment_index = (
            _segment_index(existing[-1].name) + 1 if existing else 1
        )
        self._open_segment()
        self._write_manifest()

    # -- appending ---------------------------------------------------------------------

    @property
    def last_offset(self) -> int:
        """Offset of the most recently appended entry (``-1`` when empty)."""
        return self._next_offset - 1

    @property
    def closed(self) -> bool:
        return self._closed

    def append_tuples(
        self,
        stream: str,
        records: Sequence[Mapping[str, Any]],
        batch_size: Optional[int] = None,
    ) -> int:
        """Record one ingest chunk; returns its offset.

        The chunk boundary (and ``batch_size``) is preserved so replay
        reproduces the exact delivery the live run saw — chunk granularity
        matters for multi-stream patterns and batched matchers.

        ``records`` is serialised before this call returns, so the caller
        may mutate or reuse the sequence afterwards; no copy is taken.
        """
        entry = LogEntry(
            offset=self._next_offset,
            op="tuples",
            stream=stream,
            records=list(records),
            batch_size=batch_size,
        )
        return self._append(entry)

    def append_control(self, control: str, payload: Any = None) -> int:
        """Record one state-changing control operation; returns its offset."""
        entry = LogEntry(
            offset=self._next_offset, op="control", control=control, payload=payload
        )
        return self._append(entry)

    def append_snapshot_marker(self, payload: Any = None) -> int:
        """Record a snapshot barrier (bookkeeping aid; replay skips it)."""
        entry = LogEntry(offset=self._next_offset, op="snapshot", payload=payload)
        return self._append(entry)

    def _append(self, entry: LogEntry) -> int:
        if self._closed:
            raise EventLogError("the event log has been closed")
        line = entry.to_line() + "\n"
        data = line.encode("utf-8")
        try:
            self._file.write(data)
            # User-space buffers die with the process; the page cache does
            # not.  flush() is what makes a SIGKILL survivable.
            self._file.flush()
        except OSError as exc:
            raise EventLogError(f"cannot append to event log: {exc}") from exc
        self._next_offset += 1
        self._segment_entries += 1
        self._segment_bytes += len(data)
        if self.metrics is not None:
            self.metrics.add_append(len(data))
        self._appends_since_fsync += 1
        if self.fsync_policy == "always":
            self._fsync()
        elif (
            self.fsync_policy == "batch"
            and self._appends_since_fsync >= BATCH_FSYNC_EVERY
        ):
            self._fsync()
        if self._should_rotate():
            self.rotate()
        return entry.offset

    def _should_rotate(self) -> bool:
        if (
            self.segment_max_bytes is not None
            and self._segment_bytes >= self.segment_max_bytes
        ):
            return True
        if (
            self.segment_max_entries is not None
            and self._segment_entries >= self.segment_max_entries
        ):
            return True
        return False

    def rotate(self) -> None:
        """Seal the active segment and start a new one."""
        if self._closed:
            raise EventLogError("the event log has been closed")
        self._fsync()
        self._file.close()
        self._segment_index += 1
        self._open_segment()
        self._write_manifest()
        if self.metrics is not None:
            self.metrics.add_rotation()

    def flush(self, sync: bool = True) -> None:
        """Flush buffered data; with ``sync`` also fsync to disk."""
        if self._closed:
            return
        self._file.flush()
        if sync:
            self._fsync()

    def close(self) -> None:
        """Seal the log: flush, fsync, rewrite the manifest.  Idempotent."""
        if self._closed:
            return
        try:
            self._fsync()
            self._file.close()
            self._write_manifest()
        finally:
            self._closed = True

    # -- internals ---------------------------------------------------------------------

    def _open_segment(self) -> None:
        path = self.directory / _segment_name(self._segment_index)
        try:
            # Long-lived segment handle; closed by rotate()/close(), so a
            # context manager cannot own it.
            self._file = open(path, "xb")  # noqa: SIM115
        except OSError as exc:
            raise EventLogError(f"cannot create log segment {path}: {exc}") from exc
        header = dump_envelope(
            _HEADER_KIND,
            {"segment": self._segment_index, "first_offset": self._next_offset},
        )
        data = (header + "\n").encode("utf-8")
        self._file.write(data)
        self._file.flush()
        self._segment_entries = 0
        self._segment_bytes = len(data)

    def _fsync(self) -> None:
        started = perf_clock()
        try:
            os.fsync(self._file.fileno())
        except (OSError, ValueError) as exc:
            raise EventLogError(f"cannot fsync event log: {exc}") from exc
        self._appends_since_fsync = 0
        if self.metrics is not None:
            self.metrics.add_fsync(duration_seconds=perf_clock() - started)

    def _write_manifest(self) -> None:
        segments = []
        for path in _list_segments(self.directory):
            segments.append({"name": path.name})
        text = dump_envelope(
            _MANIFEST_KIND,
            {"segments": segments, "next_offset": self._next_offset},
        )
        tmp = self.directory / (_MANIFEST_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.directory / _MANIFEST_NAME)

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"EventLog(directory={str(self.directory)!r}, "
            f"last_offset={self.last_offset}, segment={self._segment_index})"
        )


def read_log(
    directory: Union[str, Path],
    start_offset: int = 0,
    migrations: Optional[Mapping[int, Any]] = None,
) -> Iterator[LogEntry]:
    """Yield the log's entries with ``offset >= start_offset``, in order.

    Reads straight from the segment files (discovered on disk, so a
    segment the manifest never recorded before a crash is still found).  A
    truncated final line of the *last* segment — the signature of a crash
    mid-append — is silently dropped; a malformed line anywhere else
    raises :class:`~repro.errors.EventLogError`.
    """
    directory = Path(directory)
    segments = _list_segments(directory)
    expected: Optional[int] = None
    for segment_number, path in enumerate(segments):
        is_last_segment = segment_number == len(segments) - 1
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError as exc:
            raise EventLogError(f"cannot read log segment {path}: {exc}") from exc
        for line_number, line in enumerate(lines):
            is_last_line = is_last_segment and line_number == len(lines) - 1
            stripped = line.strip()
            if not stripped:
                continue
            try:
                if line_number == 0:
                    load_envelope(stripped, _HEADER_KIND, version=FORMAT_VERSION)
                    continue
                payload = load_envelope(
                    stripped,
                    _ENTRY_KIND,
                    version=FORMAT_VERSION,
                    migrations=migrations,
                )
                entry = LogEntry.from_payload(payload)
            except Exception as exc:  # noqa: BLE001 — classify below
                if is_last_line and not line.endswith("\n"):
                    # Torn final write: the crash interrupted this append,
                    # so nothing after it exists either.  Drop it.
                    return
                raise EventLogError(
                    f"corrupt log entry in {path.name} line {line_number + 1}: {exc}"
                ) from exc
            if expected is not None and entry.offset != expected:
                raise EventLogError(
                    f"log offset gap in {path.name}: expected offset "
                    f"{expected}, found {entry.offset}"
                )
            expected = entry.offset + 1
            if entry.offset >= start_offset:
                yield entry
