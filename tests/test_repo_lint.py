"""The repo-specific lint (``tools/repo_lint.py``) and its rules.

Asserts both directions: the repository itself is clean, and the rules
actually fire on synthetic violations (so the clean result is not
vacuous).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

from repo_lint import (  # noqa: E402 — path set up above
    HASH_FORBIDDEN_PATHS,
    WALL_CLOCK_FORBIDDEN_PATHS,
    lint_file,
    lint_repository,
    main,
)


def write_module(root: Path, relative: str, source: str) -> Path:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


class TestRepositoryIsClean:
    def test_lint_repository_clean(self):
        violations = lint_repository()
        assert violations == [], [v.describe() for v in violations]

    def test_cli_exit_zero(self, capsys):
        assert main([]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_list_catalogue(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "RL001" in out and "RL002" in out and "RL003" in out and "RL004" in out

    def test_script_runs_standalone(self):
        result = subprocess.run(
            [sys.executable, str(TOOLS / "repo_lint.py")],
            capture_output=True,
            text=True,
            check=False,
        )
        assert result.returncode == 0, result.stdout + result.stderr


class TestRL001BuiltinHash:
    def test_hash_call_on_routing_path_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/runtime/bad_router.py",
            "def route(key, shards):\n    return hash(key) % shards\n",
        )
        violations = lint_file(path, root=tmp_path)
        assert [v.code for v in violations] == ["RL001"]
        assert violations[0].line == 2
        assert "stable_partition_hash" in violations[0].message

    @pytest.mark.parametrize("prefix", HASH_FORBIDDEN_PATHS)
    def test_every_forbidden_tree_is_covered(self, tmp_path, prefix):
        path = write_module(
            tmp_path, f"{prefix}/bad.py", "value = hash('x')\n"
        )
        assert [v.code for v in lint_file(path, root=tmp_path)] == ["RL001"]

    def test_hash_call_elsewhere_allowed(self, tmp_path):
        path = write_module(
            tmp_path, "src/repro/core/ok.py", "value = hash('x')\n"
        )
        assert lint_file(path, root=tmp_path) == []

    def test_dunder_hash_definition_allowed(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/runtime/ok.py",
            "class Key:\n    def __hash__(self):\n        return 7\n",
        )
        assert lint_file(path, root=tmp_path) == []

    def test_attribute_hash_call_allowed(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/runtime/ok2.py",
            "import zlib\nvalue = zlib.crc32(b'x')\n",
        )
        assert lint_file(path, root=tmp_path) == []


class TestRL002SilentExcept:
    def test_bare_except_pass_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/util.py",
            "try:\n    work()\nexcept:\n    pass\n",
        )
        assert [v.code for v in lint_file(path, root=tmp_path)] == ["RL002"]

    def test_broad_except_exception_pass_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/util.py",
            "try:\n    work()\nexcept Exception:\n    pass\n",
        )
        assert [v.code for v in lint_file(path, root=tmp_path)] == ["RL002"]

    def test_tuple_with_base_exception_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/util.py",
            "try:\n    work()\nexcept (ValueError, BaseException):\n    pass\n",
        )
        assert [v.code for v in lint_file(path, root=tmp_path)] == ["RL002"]

    def test_specific_exception_pass_allowed(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/util.py",
            "try:\n    work()\nexcept OSError:\n    pass\n",
        )
        assert lint_file(path, root=tmp_path) == []

    def test_broad_except_with_handling_allowed(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/util.py",
            "try:\n    work()\nexcept Exception as exc:\n    log(exc)\n",
        )
        assert lint_file(path, root=tmp_path) == []

    def test_outside_src_repro_allowed(self, tmp_path):
        path = write_module(
            tmp_path,
            "benchmarks/bench.py",
            "try:\n    work()\nexcept Exception:\n    pass\n",
        )
        assert lint_file(path, root=tmp_path) == []


class TestRL003WallClock:
    def test_time_time_on_latency_path_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/runtime/bad_timer.py",
            "import time\nstarted = time.time()\n",
        )
        violations = lint_file(path, root=tmp_path)
        assert [v.code for v in violations] == ["RL003"]
        assert violations[0].line == 2
        assert "perf_clock" in violations[0].message

    def test_bare_time_import_call_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/gateway/bad_timer.py",
            "from time import time\nstarted = time()\n",
        )
        assert [v.code for v in lint_file(path, root=tmp_path)] == ["RL003"]

    @pytest.mark.parametrize("prefix", WALL_CLOCK_FORBIDDEN_PATHS)
    def test_every_forbidden_tree_is_covered(self, tmp_path, prefix):
        path = write_module(
            tmp_path, f"{prefix}/bad.py", "import time\nnow = time.time()\n"
        )
        assert [v.code for v in lint_file(path, root=tmp_path)] == ["RL003"]

    def test_clock_module_is_sanctioned(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/observability/clock.py",
            "import time\ndef wall_clock():\n    return time.time()\n",
        )
        assert lint_file(path, root=tmp_path) == []

    def test_monotonic_and_perf_counter_allowed(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/runtime/ok_timer.py",
            "import time\ndeadline = time.monotonic() + 5\n",
        )
        assert lint_file(path, root=tmp_path) == []

    def test_time_time_outside_latency_paths_allowed(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/detection/ok.py",
            "import time\nstamp = time.time()\n",
        )
        assert lint_file(path, root=tmp_path) == []


class TestRL004UnnamedThreads:
    def test_unnamed_thread_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/runtime/bad_thread.py",
            "import threading\nworker = threading.Thread(target=print, daemon=True)\n",
        )
        violations = lint_file(path, root=tmp_path)
        assert [v.code for v in violations] == ["RL004"]
        assert violations[0].line == 2
        assert "name=" in violations[0].message

    def test_bare_thread_import_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/gateway/bad_thread.py",
            "from threading import Thread\nworker = Thread(target=print)\n",
        )
        assert [v.code for v in lint_file(path, root=tmp_path)] == ["RL004"]

    def test_named_thread_allowed(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/runtime/ok_thread.py",
            "import threading\n"
            "worker = threading.Thread(target=print, name='repro-worker', daemon=True)\n",
        )
        assert lint_file(path, root=tmp_path) == []

    def test_kwargs_splat_assumed_named(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/runtime/splat_thread.py",
            "import threading\n"
            "def spawn(**kwargs):\n"
            "    return threading.Thread(target=print, **kwargs)\n",
        )
        assert lint_file(path, root=tmp_path) == []

    def test_outside_src_repro_allowed(self, tmp_path):
        path = write_module(
            tmp_path,
            "tools/helper.py",
            "import threading\nworker = threading.Thread(target=print)\n",
        )
        assert lint_file(path, root=tmp_path) == []
