"""Tests of the static query analyzer (``repro.analysis``).

Covers the interval algebra, every diagnostic rule family, the
deploy-time gating at the engine / detector / session / sharded-runtime
layers, the vocabulary report, and the ``python -m repro.analysis`` CLI.
"""

from __future__ import annotations

import json
import math
import warnings

import pytest

from repro.analysis import (
    ANALYZE_MODES,
    AnalysisContext,
    Diagnostic,
    Interval,
    IntervalSet,
    QueryAnalysisError,
    QueryAnalysisWarning,
    Severity,
    analyze_query,
    analyze_vocabulary,
    gate_diagnostics,
    validate_analyze_mode,
)
from repro.analysis.cli import main as analysis_cli
from repro.api import F, GestureSession, Q, SessionConfig
from repro.cep import CEPEngine
from repro.cep.engine import coerce_query
from repro.cep.matcher import MatcherConfig
from repro.storage.database import GestureDatabase
from repro.streams.clock import SimulatedClock

GOOD = (
    'SELECT "wave" MATCHING (kinect_t(abs(rhand_x - 400) < 50) -> '
    "kinect_t(abs(rhand_x - 500) < 50) within 2 seconds select first consume all);"
)
UNSAT_ABS = 'SELECT "never" MATCHING (kinect_t(abs(rhand_x - 400) < -5));'
UNSAT_CONJ = (
    'SELECT "never" MATCHING (kinect_t(abs(rhand_x - 400) < 50 and '
    "abs(rhand_x - 600) < 50));"
)


def codes(diagnostics):
    return sorted({d.code for d in diagnostics})


# ---------------------------------------------------------------------------
# Interval algebra
# ---------------------------------------------------------------------------


class TestIntervals:
    def test_empty_and_point(self):
        assert Interval(3.0, 2.0).is_empty()
        assert Interval(1.0, 1.0, low_open=True).is_empty()
        assert not Interval.point(1.0).is_empty()
        assert Interval.point(1.0).contains_value(1.0)

    def test_infinite_bounds_forced_open(self):
        full = Interval.full()
        assert full.low_open and full.high_open
        assert Interval(-math.inf, 0.0).low_open

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Interval(math.nan, 1.0)

    def test_normalisation_merges_touching(self):
        merged = IntervalSet([Interval(0.0, 1.0), Interval(1.0, 2.0), Interval(5.0, 6.0)])
        assert len(merged.intervals) == 2
        assert merged.contains_value(1.0)
        assert not merged.contains_value(3.0)

    def test_open_endpoints_do_not_merge(self):
        gap = IntervalSet(
            [Interval(0.0, 1.0, high_open=True), Interval(1.0, 2.0, low_open=True)]
        )
        assert len(gap.intervals) == 2
        assert not gap.contains_value(1.0)

    def test_intersection_union_complement(self):
        a = IntervalSet.of(Interval(0.0, 10.0))
        b = IntervalSet.of(Interval(5.0, 15.0))
        assert a.intersect(b) == IntervalSet.of(Interval(5.0, 10.0))
        assert a.union(b) == IntervalSet.of(Interval(0.0, 15.0))
        outside = a.complement()
        assert outside.contains_value(-1.0)
        assert outside.contains_value(11.0)
        assert not outside.contains_value(5.0)
        assert a.complement().complement() == a

    def test_affine_negative_scale_swaps_bounds(self):
        image = IntervalSet.of(Interval(1.0, 2.0)).affine(-1.0, 0.0)
        assert image == IntervalSet.of(Interval(-2.0, -1.0))
        with pytest.raises(ValueError):
            IntervalSet.full().affine(0.0, 1.0)

    def test_covers(self):
        wide = IntervalSet.of(Interval(0.0, 10.0))
        narrow = IntervalSet.of(Interval(2.0, 3.0))
        assert wide.covers(narrow)
        assert not narrow.covers(wide)
        assert IntervalSet.full().covers(wide)
        assert wide.covers(IntervalSet.empty())

    def test_from_comparison(self):
        assert IntervalSet.from_comparison("<", 5.0).contains_value(4.9)
        assert not IntervalSet.from_comparison("<", 5.0).contains_value(5.0)
        assert IntervalSet.from_comparison("<=", 5.0).contains_value(5.0)
        ne = IntervalSet.from_comparison("!=", 5.0)
        assert ne.contains_value(4.0) and not ne.contains_value(5.0)
        assert IntervalSet.from_comparison("~", 5.0) is None


# ---------------------------------------------------------------------------
# Per-query rules
# ---------------------------------------------------------------------------


class TestQueryRules:
    def test_clean_query_has_no_findings(self):
        assert analyze_query(GOOD) == []

    def test_unsat_negative_abs_window(self):
        found = analyze_query(UNSAT_ABS)
        assert codes(found) == ["QA001"]
        assert found[0].severity is Severity.ERROR
        assert found[0].step == 0

    def test_unsat_empty_conjunction_of_abs_windows(self):
        found = analyze_query(UNSAT_CONJ)
        assert "QA001" in codes(found)

    def test_dead_step_reported_query_level(self):
        query = (
            'SELECT "g" MATCHING (kinect_t(rhand_x > 0) -> '
            "kinect_t(rhand_y > 10 and rhand_y < 5) within 1 seconds);"
        )
        found = analyze_query(query)
        assert codes(found) == ["QA001", "QA002"]
        by_code = {d.code: d for d in found}
        assert by_code["QA001"].step == 1
        assert by_code["QA002"].detail["unsatisfiable_steps"] == [1]
        assert by_code["QA002"].detail["dead_steps"] == [0]

    def test_contradictory_plain_comparisons(self):
        found = analyze_query('SELECT "g" MATCHING (kinect_t(rhand_x < 5 and rhand_x > 10));')
        assert "QA001" in codes(found)

    def test_tautological_atom_warning(self):
        found = analyze_query('SELECT "g" MATCHING (kinect_t(abs(rhand_x - 1) >= 0));')
        assert codes(found) == ["QA003"]
        assert found[0].severity is Severity.WARNING

    def test_always_false_atom_in_disjunction(self):
        found = analyze_query(
            'SELECT "g" MATCHING (kinect_t(rhand_x > 5 or abs(rhand_y - 1) < -1));'
        )
        assert "QA005" in codes(found)

    def test_match_all_step_is_info(self):
        found = analyze_query('SELECT "g" MATCHING (kinect_t(true) -> kinect_t(rhand_x > 1) within 1 seconds);')
        assert "QA004" in codes(found)
        by_code = {d.code: d for d in found}
        assert by_code["QA004"].severity is Severity.INFO

    def test_opaque_udf_predicate_not_flagged(self):
        found = analyze_query('SELECT "g" MATCHING (kinect_t(dist(rhand_x, rhand_y) < -1));')
        assert "QA001" not in codes(found)
        assert "QA005" not in codes(found)

    def test_multi_field_atom_not_flagged(self):
        found = analyze_query('SELECT "g" MATCHING (kinect_t(rhand_x - lhand_x < -10000));')
        assert "QA001" not in codes(found)

    def test_uncovered_within_warns_without_ttl(self):
        query = (
            'SELECT "g" MATCHING ((kinect_t(rhand_x > 1) -> kinect_t(rhand_x > 2) '
            "within 1 seconds) -> kinect_t(rhand_x > 3));"
        )
        found = analyze_query(query, context=AnalysisContext(run_ttl_seconds=None))
        assert "QA010" in codes(found)
        by_code = {d.code: d for d in found}
        assert by_code["QA010"].detail["uncovered_steps"] == [1]

    def test_uncovered_within_info_with_ttl(self):
        query = (
            'SELECT "g" MATCHING ((kinect_t(rhand_x > 1) -> kinect_t(rhand_x > 2) '
            "within 1 seconds) -> kinect_t(rhand_x > 3));"
        )
        found = analyze_query(query, context=AnalysisContext(run_ttl_seconds=10.0))
        assert "QA011" in codes(found)
        assert "QA010" not in codes(found)

    def test_fully_covered_within_is_silent(self):
        found = analyze_query(GOOD, context=AnalysisContext(run_ttl_seconds=None))
        assert found == []

    def test_nested_policies_warn(self):
        query = (
            'SELECT "g" MATCHING ((kinect_t(rhand_x > 1) -> kinect_t(rhand_x > 2) '
            "within 1 seconds select last consume none) -> kinect_t(rhand_x > 3) "
            "within 5 seconds select first consume all);"
        )
        found = analyze_query(query)
        assert "QA020" in codes(found)

    def test_select_all_consume_none_info(self):
        query = (
            'SELECT "g" MATCHING (kinect_t(rhand_x > 1) -> kinect_t(rhand_x > 2) '
            "within 1 seconds select all consume none);"
        )
        found = analyze_query(query)
        assert "QA021" in codes(found)

    def test_partition_mismatch_is_error(self):
        context = AnalysisContext(
            partition_field="player",
            stream_fields={
                "kinect_t": frozenset({"ts", "player", "rhand_x"}),
                "buttons": frozenset({"ts", "pressed"}),
            },
        )
        query = (
            'SELECT "g" MATCHING (kinect_t(rhand_x > 1) -> buttons(pressed > 0) '
            "within 1 seconds);"
        )
        found = analyze_query(query, context=context)
        assert "QA030" in codes(found)
        by_code = {d.code: d for d in found}
        assert by_code["QA030"].severity is Severity.ERROR

    def test_partition_unknown_schema_is_warning(self):
        context = AnalysisContext(partition_field="player", stream_fields={})
        query = (
            'SELECT "g" MATCHING (kinect_t(rhand_x > 1) -> buttons(pressed > 0) '
            "within 1 seconds);"
        )
        found = analyze_query(query, context=context)
        assert "QA031" in codes(found)
        assert "QA030" not in codes(found)

    def test_accepts_query_objects_and_builders(self):
        assert analyze_query(coerce_query(GOOD)) == []
        chain = Q.stream("kinect_t").where(F("rhand_y") > 400)
        assert analyze_query(chain.build("hands_up")) == []


# ---------------------------------------------------------------------------
# Vocabulary analysis
# ---------------------------------------------------------------------------


class TestVocabulary:
    def test_duplicate_text_flagged(self):
        report = analyze_vocabulary({"a": GOOD, "b": GOOD})
        assert "QA040" in codes(report.diagnostics)
        dup = next(d for d in report.diagnostics if d.code == "QA040")
        assert sorted(dup.detail["queries"]) == ["a", "b"]

    def test_semantic_equivalence_flagged(self):
        left = 'SELECT "a" MATCHING (kinect_t(abs(rhand_x - 400) < 50));'
        # The same interval (350, 450) spelled as two comparisons.
        right = 'SELECT "b" MATCHING (kinect_t(rhand_x > 350 and rhand_x < 450));'
        report = analyze_vocabulary({"a": left, "b": right})
        assert "QA041" in codes(report.diagnostics)

    def test_subsumption_flagged_with_direction(self):
        wide = 'SELECT "wide" MATCHING (kinect_t(abs(rhand_x - 400) < 100));'
        narrow = 'SELECT "narrow" MATCHING (kinect_t(abs(rhand_x - 400) < 10));'
        report = analyze_vocabulary({"wide": wide, "narrow": narrow})
        sub = next(d for d in report.diagnostics if d.code == "QA042")
        assert sub.detail["wide"] == "wide"
        assert sub.detail["narrow"] == "narrow"

    def test_wider_within_window_needed_for_subsumption(self):
        fast = (
            'SELECT "fast" MATCHING (kinect_t(rhand_x > 1) -> kinect_t(rhand_x > 2) '
            "within 1 seconds);"
        )
        slow = (
            'SELECT "slow" MATCHING (kinect_t(rhand_x > 1) -> kinect_t(rhand_x > 2) '
            "within 9 seconds);"
        )
        report = analyze_vocabulary({"fast": fast, "slow": slow})
        sub = next(d for d in report.diagnostics if d.code == "QA042")
        assert sub.detail["wide"] == "slow"

    def test_shared_predicate_factoring_report(self):
        a = 'SELECT "a" MATCHING (kinect_t(rhand_y > 400 and rhand_x > 100));'
        b = 'SELECT "b" MATCHING (kinect_t(rhand_y > 400) -> kinect_t(rhand_y < 100) within 2 seconds);'
        report = analyze_vocabulary({"a": a, "b": b})
        assert report.shared_predicates == {"rhand_y > 400": ("a", "b")}
        assert "QA050" in codes(report.diagnostics)

    def test_distinct_queries_clean(self):
        report = analyze_vocabulary(
            {
                "up": 'SELECT "up" MATCHING (kinect_t(rhand_y > 400));',
                "down": 'SELECT "down" MATCHING (kinect_t(lhand_y < 100));',
            }
        )
        assert report.diagnostics == ()
        assert not report.has_errors
        assert report.queries == ("up", "down")

    def test_for_query_filter_and_to_dict(self):
        report = analyze_vocabulary({"a": GOOD, "b": GOOD})
        assert report.for_query("b")
        payload = report.to_dict()
        assert payload["summary"]["warning"] >= 1
        json.dumps(payload)  # must be JSON-serialisable

    def test_sequence_source_uses_registration_names(self):
        report = analyze_vocabulary([GOOD, UNSAT_ABS])
        assert report.queries == ("wave", "never")
        assert report.has_errors

    def test_database_source(self, tmp_path):
        from repro.core import GestureDescription, PoseWindow, Window

        db = GestureDatabase(str(tmp_path / "gestures.db"))
        description = GestureDescription(
            name="stored",
            poses=[
                PoseWindow(0, Window({"rhand_x": 100.0}, {"rhand_x": 25.0})),
                PoseWindow(1, Window({"rhand_x": 300.0}, {"rhand_x": 25.0})),
            ],
            joints=["rhand"],
            max_duration_s=1.0,
        )
        db.save_gesture(description)
        report = analyze_vocabulary(db)
        assert report.queries == ("stored",)
        assert not report.has_errors
        db.close()


# ---------------------------------------------------------------------------
# Gating
# ---------------------------------------------------------------------------


class TestGating:
    def test_modes_catalogue(self):
        assert ANALYZE_MODES == ("off", "warn", "strict")
        assert validate_analyze_mode("warn") == "warn"
        with pytest.raises(ValueError):
            validate_analyze_mode("loud")

    def test_gate_off_is_inert(self):
        found = analyze_query(UNSAT_ABS)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert gate_diagnostics(found, "off") == found

    def test_gate_warn_emits_warnings(self):
        found = analyze_query(UNSAT_ABS)
        with pytest.warns(QueryAnalysisWarning, match="QA001"):
            gate_diagnostics(found, "warn")

    def test_gate_strict_raises_typed_error(self):
        found = analyze_query(UNSAT_ABS)
        with pytest.raises(QueryAnalysisError) as excinfo:
            gate_diagnostics(found, "strict", subject="query 'never'")
        assert excinfo.value.codes == ["QA001"]
        assert excinfo.value.diagnostics
        assert "never" in str(excinfo.value)

    def test_gate_strict_warns_when_only_warnings(self):
        found = [
            Diagnostic(code="QA003", severity=Severity.WARNING, message="tautology")
        ]
        with pytest.warns(QueryAnalysisWarning):
            gate_diagnostics(found, "strict")

    def test_engine_strict_rejects_and_leaves_engine_clean(self):
        engine = CEPEngine(clock=SimulatedClock())
        with pytest.raises(QueryAnalysisError):
            engine.register_query(UNSAT_ABS, create_missing_streams=True, analyze="strict")
        assert engine.queries == {}
        assert "kinect_t" not in engine.streams

    def test_engine_warn_still_deploys(self):
        engine = CEPEngine(clock=SimulatedClock())
        with pytest.warns(QueryAnalysisWarning):
            engine.register_query(UNSAT_ABS, create_missing_streams=True, analyze="warn")
        assert "never" in engine.queries

    def test_engine_off_stays_silent(self):
        engine = CEPEngine(clock=SimulatedClock())
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine.register_query(UNSAT_ABS, create_missing_streams=True)

    def test_engine_rejects_unknown_mode(self):
        engine = CEPEngine(clock=SimulatedClock())
        with pytest.raises(ValueError, match="analyze mode"):
            engine.register_query(GOOD, create_missing_streams=True, analyze="loud")

    def test_session_deploy_strict(self):
        with GestureSession() as session:
            with pytest.raises(QueryAnalysisError):
                session.deploy(UNSAT_ABS, analyze="strict")
            session.deploy(GOOD, analyze="strict")
            assert "wave" in session.deployed_gestures()

    def test_session_config_default_mode(self):
        config = SessionConfig(analyze="strict")
        with GestureSession(config=config) as session:
            with pytest.raises(QueryAnalysisError):
                session.deploy(UNSAT_ABS)
            # An explicit argument overrides the configured default.
            session.deploy(UNSAT_ABS, analyze="off")

    def test_session_config_validates_mode(self):
        with pytest.raises(ValueError, match="analyze"):
            SessionConfig(analyze="sometimes")

    def test_session_vocabulary_strict_rejects_all_or_nothing(self):
        with GestureSession() as session:
            with pytest.raises(QueryAnalysisError) as excinfo:
                session.deploy_vocabulary(
                    {"wave": GOOD, "never": UNSAT_ABS}, analyze="strict"
                )
            assert "vocabulary" in str(excinfo.value)
            assert session.deployed_gestures() == []

    def test_session_vocabulary_warn_deploys_everything(self):
        with GestureSession() as session:
            with pytest.warns(QueryAnalysisWarning):
                deployed = session.deploy_vocabulary(
                    {"a": GOOD, "never": UNSAT_ABS}, analyze="warn"
                )
            assert deployed == ["a", "never"]

    def test_sharded_runtime_strict_rejects_before_broadcast(self):
        from repro.runtime import ShardedRuntime

        with ShardedRuntime(shard_count=2) as runtime:
            with pytest.raises(QueryAnalysisError):
                runtime.register_query(UNSAT_ABS, analyze="strict")
            assert runtime.query_names() == []
            runtime.register_query(GOOD, analyze="strict")
            assert runtime.query_names() == ["wave"]

    def test_detections_identical_with_analysis_enabled(self):
        """Enabling analysis must not change what the matcher produces."""

        def run(analyze: str):
            engine = CEPEngine(clock=SimulatedClock())
            engine.create_stream("kinect_t")
            deployed = engine.register_query(GOOD, analyze=analyze)
            for ts, x in enumerate([400.0, 500.0, 410.0, 505.0]):
                engine.push("kinect_t", {"ts": float(ts), "player": 1, "rhand_x": x})
            return [
                (d.query_name, d.output, d.timestamp, d.partition)
                for d in deployed.detections()
            ]

        assert run("off") == run("strict")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCLI:
    def write_manifest(self, tmp_path, name, queries):
        path = tmp_path / name
        path.write_text(json.dumps({"queries": queries}), encoding="utf-8")
        return path

    def test_clean_manifest_exits_zero(self, tmp_path, capsys):
        path = self.write_manifest(tmp_path, "good.json", {"wave": GOOD})
        assert analysis_cli([str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 queries" in out and "0 error(s)" in out

    def test_error_manifest_exits_one(self, tmp_path, capsys):
        path = self.write_manifest(tmp_path, "bad.json", {"never": UNSAT_ABS})
        assert analysis_cli([str(path)]) == 1
        assert "QA001" in capsys.readouterr().out

    def test_strict_fails_on_warnings(self, tmp_path):
        path = self.write_manifest(tmp_path, "dup.json", {"a": GOOD, "b": GOOD})
        assert analysis_cli([str(path)]) == 0  # duplicates are warnings
        assert analysis_cli(["--strict", str(path)]) == 1

    def test_unreadable_source_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert analysis_cli([str(missing)]) == 2
        assert "cannot analyse" in capsys.readouterr().err

    def test_json_report_written(self, tmp_path):
        manifest = self.write_manifest(tmp_path, "good.json", {"wave": GOOD})
        report_path = tmp_path / "report.json"
        assert analysis_cli(["--json", str(report_path), str(manifest)]) == 0
        payload = json.loads(report_path.read_text())
        assert str(manifest) in payload["sources"]
        assert payload["sources"][str(manifest)]["queries"] == ["wave"]

    def test_flat_manifest_and_ttl_flag(self, tmp_path):
        path = tmp_path / "flat.json"
        uncovered = (
            'SELECT "g" MATCHING ((kinect_t(rhand_x > 1) -> kinect_t(rhand_x > 2) '
            "within 1 seconds) -> kinect_t(rhand_x > 3));"
        )
        path.write_text(json.dumps({"g": uncovered}), encoding="utf-8")
        assert analysis_cli(["--strict", str(path)]) == 1  # QA010 warning
        assert analysis_cli(["--strict", "--ttl", "10", str(path)]) == 0  # QA011 info

    def test_database_source(self, tmp_path):
        from repro.core import GestureDescription, PoseWindow, Window

        db_path = tmp_path / "gestures.db"
        db = GestureDatabase(str(db_path))
        db.save_gesture(
            GestureDescription(
                name="stored",
                poses=[PoseWindow(0, Window({"rhand_x": 100.0}, {"rhand_x": 25.0}))],
                joints=["rhand"],
                max_duration_s=1.0,
            )
        )
        db.close()
        assert analysis_cli([str(db_path)]) == 0
