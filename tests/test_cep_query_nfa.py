"""Unit tests for repro.cep.query (pattern model) and repro.cep.nfa (compilation)."""

import pytest

from repro.cep.expressions import Comparison, FieldRef, Literal
from repro.cep.nfa import CompiledPattern, Step, TimeConstraint, compile_pattern, compile_query
from repro.cep.query import (
    ConsumePolicy,
    EventPattern,
    Query,
    SelectPolicy,
    SequencePattern,
    match_all,
    sequence,
)
from repro.cep.tuples import Field, Schema, kinect_schema
from repro.errors import SchemaError


def _event(threshold: float, stream: str = "kinect_t") -> EventPattern:
    return EventPattern(
        stream=stream, predicate=Comparison(">", FieldRef("x"), Literal(threshold))
    )


class TestQueryModel:
    def test_sequence_requires_elements(self):
        with pytest.raises(ValueError):
            SequencePattern(elements=())

    def test_sequence_rejects_nonpositive_within(self):
        with pytest.raises(ValueError):
            sequence([_event(1)], within_seconds=0.0)

    def test_event_and_predicate_counts(self):
        pattern = sequence([_event(1), sequence([_event(2), _event(3)])])
        assert pattern.event_count() == 3
        assert pattern.predicate_count() == 3

    def test_flatten_preserves_order(self):
        inner = sequence([_event(2), _event(3)])
        pattern = sequence([_event(1), inner, _event(4)])
        thresholds = [
            event.predicate.right.value for event in pattern.flatten()
        ]
        assert thresholds == [1, 2, 3, 4]

    def test_streams_are_collected(self):
        pattern = sequence([_event(1, "a"), _event(2, "b")])
        assert pattern.streams() == {"a", "b"}

    def test_query_requires_output(self):
        with pytest.raises(ValueError):
            Query(output="", pattern=sequence([_event(1)]))

    def test_query_registration_name_defaults_to_output(self):
        query = Query(output="swipe", pattern=sequence([_event(1)]))
        assert query.registration_name == "swipe"
        named = Query(output="swipe", pattern=sequence([_event(1)]), name="custom")
        assert named.registration_name == "custom"

    def test_query_text_contains_select_and_matching(self):
        query = Query(output="swipe", pattern=sequence([_event(1)], within_seconds=2.0))
        text = query.to_query()
        assert text.startswith('SELECT "swipe"')
        assert "MATCHING" in text
        assert "within 2 seconds" in text

    def test_match_all_accepts_everything(self):
        assert match_all("kinect").predicate.evaluate({}) is True


class TestSchema:
    def test_field_type_validation(self):
        with pytest.raises(SchemaError):
            Field("x", type="decimal")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            Schema("s", [Field("x"), Field("x")])

    def test_validate_required_and_types(self):
        schema = Schema("s", [Field("ts"), Field("name", "string", required=False)])
        schema.validate({"ts": 1.0})
        with pytest.raises(SchemaError):
            schema.validate({})
        with pytest.raises(SchemaError):
            schema.validate({"ts": 1.0, "name": 5})

    def test_conforms_and_project(self):
        schema = Schema("s", [Field("a"), Field("b", required=False)])
        assert schema.conforms({"a": 1.0})
        assert not schema.conforms({"b": 1.0})
        assert schema.project({"a": 1.0, "c": 2.0}) == {"a": 1.0}

    def test_bool_is_not_a_number(self):
        schema = Schema("s", [Field("a", "number")])
        assert not schema.conforms({"a": True})

    def test_kinect_schema_has_all_joint_fields(self):
        schema = kinect_schema()
        assert "rhand_x" in schema
        assert "ts" in schema
        assert len(schema) == 2 + 15 * 3

    def test_kinect_schema_subset(self):
        schema = kinect_schema(joints=["rhand"])
        assert "rhand_x" in schema
        assert "lhand_x" not in schema


class TestCompilation:
    def test_flat_sequence_compiles_one_step_per_event(self):
        compiled = compile_pattern(sequence([_event(1), _event(2)], within_seconds=1.0))
        assert compiled.length == 2
        assert [step.index for step in compiled.steps] == [0, 1]
        assert compiled.constraints == (TimeConstraint(0, 1, 1.0),)

    def test_nested_groups_produce_constraints_per_level(self):
        inner = sequence([_event(1), _event(2)], within_seconds=1.0)
        outer = sequence([inner, _event(3)], within_seconds=2.0)
        compiled = compile_pattern(outer)
        assert compiled.length == 3
        assert TimeConstraint(0, 1, 1.0) in compiled.constraints
        assert TimeConstraint(0, 2, 2.0) in compiled.constraints

    def test_policies_come_from_the_outermost_sequence(self):
        inner = sequence([_event(1), _event(2)], select=SelectPolicy.ALL)
        outer = sequence([inner, _event(3)], select=SelectPolicy.LAST,
                         consume=ConsumePolicy.NONE)
        compiled = compile_pattern(outer)
        assert compiled.select is SelectPolicy.LAST
        assert compiled.consume is ConsumePolicy.NONE

    def test_constraint_lookup_helpers(self):
        inner = sequence([_event(1), _event(2)], within_seconds=1.0)
        outer = sequence([inner, _event(3)], within_seconds=2.0)
        compiled = compile_pattern(outer)
        assert [c.last for c in compiled.constraints_ending_at(1)] == [1]
        assert len(compiled.constraints_covering(0)) == 2
        assert len(compiled.constraints_covering(1)) == 1

    def test_time_constraint_validation(self):
        with pytest.raises(ValueError):
            TimeConstraint(2, 1, 1.0)
        with pytest.raises(ValueError):
            TimeConstraint(0, 1, 0.0)

    def test_compiled_pattern_requires_steps(self):
        with pytest.raises(ValueError):
            CompiledPattern(steps=(), constraints=())

    def test_compile_query_and_describe(self):
        query = Query(output="g", pattern=sequence([_event(1), _event(2)], within_seconds=1.0))
        compiled = compile_query(query)
        description = compiled.describe()
        assert "within 1s" in description
        assert "select first" in description
        assert compiled.streams() == {"kinect_t"}

    def test_step_describe_mentions_stream_and_predicate(self):
        step = Step(index=0, stream="kinect_t", predicate=Comparison(">", FieldRef("x"), Literal(1)))
        assert "kinect_t" in step.describe()
        assert "x > 1" in step.describe()
