"""Unit tests for the gesture detector, events and the learning workflow."""

import pytest

from repro.cep.matcher import Detection
from repro.detection import (
    DetectionFeedback,
    GestureDetector,
    GestureEvent,
    LearningWorkflow,
    WorkflowConfig,
    WorkflowPhase,
)
from repro.errors import (
    BindingError,
    GestureNotFoundError,
    InvalidWorkflowStateError,
    RecordingError,
)
from repro.storage import GestureDatabase
from repro.streams import SimulatedClock


class TestGestureEvent:
    def test_from_detection_copies_measures(self):
        detection = Detection(
            output="swipe", query_name="swipe", timestamp=2.0, start_timestamp=1.0,
            step_timestamps=(1.0, 2.0),
            matched=({"rhand_x": 1.0}, {"rhand_x": 800.0, "rhand_y": 150.0}),
        )
        event = GestureEvent.from_detection(detection)
        assert event.gesture == "swipe"
        assert event.duration == pytest.approx(1.0)
        assert event.measures["rhand_x"] == 800.0

    def test_from_detection_without_matched_tuples(self):
        detection = Detection(
            output="swipe", query_name="swipe", timestamp=2.0, start_timestamp=1.0,
            step_timestamps=(1.0, 2.0), matched=None,
        )
        assert GestureEvent.from_detection(detection).measures == {}


class TestDetectionFeedback:
    def test_best_candidate(self):
        feedback = DetectionFeedback(timestamp=0.0, progress={"a": 0.2, "b": 0.8})
        assert feedback.best_candidate() == "b"

    def test_best_candidate_none_when_no_progress(self):
        assert DetectionFeedback(timestamp=0.0, progress={"a": 0.0}).best_candidate() is None
        assert DetectionFeedback(timestamp=0.0).best_candidate() is None

    def test_describe(self):
        feedback = DetectionFeedback(timestamp=0.0, progress={"a": 0.5})
        assert "a: 50%" in feedback.describe()
        assert DetectionFeedback(timestamp=0.0).describe() == "no gestures deployed"


class TestGestureDetector:
    def test_deploy_description_and_detect(self, swipe_description, simulator, swipe):
        detector = GestureDetector()
        detector.deploy(swipe_description)
        assert detector.deployed_gestures() == ["swipe_right"]
        detector.process_frames(simulator.perform_variation(swipe, hold_start_s=0.2, hold_end_s=0.2))
        assert [event.gesture for event in detector.events] == ["swipe_right"]

    def test_deploy_query_text(self):
        detector = GestureDetector()
        detector.deploy('SELECT "up" MATCHING kinect_t(rhand_y > 10000);')
        assert "up" in detector.deployed_gestures()

    def test_undeploy(self, swipe_description):
        detector = GestureDetector()
        detector.deploy(swipe_description)
        detector.undeploy("swipe_right")
        assert detector.deployed_gestures() == []
        with pytest.raises(GestureNotFoundError):
            detector.undeploy("swipe_right")

    def test_handlers_per_gesture_and_global(self, swipe_description, simulator, swipe):
        detector = GestureDetector()
        detector.deploy(swipe_description)
        specific, all_events = [], []
        detector.on_gesture("swipe_right", specific.append)
        detector.on_any_gesture(all_events.append)
        detector.process_frames(simulator.perform_variation(swipe, hold_start_s=0.2, hold_end_s=0.2))
        assert len(specific) == 1
        assert len(all_events) == 1

    def test_handler_must_be_callable(self):
        detector = GestureDetector()
        with pytest.raises(BindingError):
            detector.on_gesture("x", "not callable")
        with pytest.raises(BindingError):
            detector.on_any_gesture(None)

    def test_enable_disable(self, swipe_description, simulator, swipe):
        detector = GestureDetector()
        detector.deploy(swipe_description)
        detector.set_enabled("swipe_right", False)
        detector.process_frames(simulator.perform_variation(swipe))
        assert detector.events == []
        with pytest.raises(GestureNotFoundError):
            detector.set_enabled("ghost", True)

    def test_feedback_reports_progress(self, swipe_description, simulator, swipe):
        detector = GestureDetector()
        detector.deploy(swipe_description)
        frames = simulator.perform_variation(swipe, hold_start_s=0.2)
        detector.process_frames(frames[: len(frames) // 2])
        feedback = detector.feedback()
        assert 0.0 < feedback.progress["swipe_right"] < 1.0
        assert feedback.active_runs["swipe_right"] >= 1

    def test_clear_resets_events_and_matchers(self, swipe_description, simulator, swipe):
        detector = GestureDetector()
        detector.deploy(swipe_description)
        detector.process_frames(simulator.perform_variation(swipe, hold_start_s=0.2, hold_end_s=0.2))
        detector.clear()
        assert detector.events == []
        assert detector.detections() == []

    def test_clear_resets_kinect_transformer_state(self, swipe_description, simulator, swipe):
        # clear() is the "new user steps in" hook: it must also drop the
        # kinect view's smoothed scale, or the previous user's body size
        # skews the next user's first seconds.
        detector = GestureDetector()
        detector.deploy(swipe_description)
        transformer = detector.transformer
        assert transformer is not None
        detector.process_frames(simulator.perform_variation(swipe))
        assert transformer.frames_transformed > 0
        detector.clear()
        assert transformer.frames_transformed == 0
        assert transformer.active_partitions == 0
        assert transformer.smoothed_scale(1) is None

    def test_transformer_exposed_for_external_engines(self):
        from repro.cep import CEPEngine
        from repro.cep.views import install_kinect_view

        engine = CEPEngine(clock=SimulatedClock())
        view = install_kinect_view(engine)
        detector = GestureDetector(engine=engine)
        assert detector.transformer is view.function
        assert detector.transformers == [view.function]

    def test_deploy_from_database(self, swipe_description):
        database = GestureDatabase(":memory:")
        database.save_gesture(swipe_description)
        detector = GestureDetector()
        deployed = detector.deploy_from_database(database)
        assert deployed == ["swipe_right"]


class TestLearningWorkflow:
    def _samples(self, simulator, trajectory, count=3):
        return [
            simulator.perform_variation(trajectory, hold_start_s=0.3, hold_end_s=0.3)
            for _ in range(count)
        ]

    def test_programmatic_learning_cycle(self, simulator, swipe):
        workflow = LearningWorkflow()
        assert workflow.phase is WorkflowPhase.IDLE
        workflow.begin_gesture("swipe_right")
        assert workflow.phase is WorkflowPhase.COLLECTING
        for sample in self._samples(simulator, swipe):
            workflow.record_sample(sample)
        description = workflow.finalize()
        assert workflow.phase is WorkflowPhase.TESTING
        assert description.name == "swipe_right"
        assert workflow.database.has_gesture("swipe_right")
        assert "swipe_right" in workflow.detector.deployed_gestures()
        workflow.accept()
        assert workflow.phase is WorkflowPhase.IDLE

    def test_testing_phase_detects_new_performance(self, simulator, swipe):
        workflow = LearningWorkflow()
        workflow.begin_gesture("swipe_right")
        for sample in self._samples(simulator, swipe):
            workflow.record_sample(sample)
        workflow.finalize()
        workflow.process_frames(
            simulator.perform_variation(swipe, hold_start_s=0.2, hold_end_s=0.2)
        )
        assert [event.gesture for event in workflow.test_events()] == ["swipe_right"]
        assert isinstance(workflow.feedback(), DetectionFeedback)

    def test_finalize_requires_min_samples(self, simulator, swipe):
        workflow = LearningWorkflow(config=WorkflowConfig(min_samples=3))
        workflow.begin_gesture("swipe_right")
        workflow.record_sample(simulator.perform_variation(swipe, hold_start_s=0.3, hold_end_s=0.3))
        with pytest.raises(InvalidWorkflowStateError):
            workflow.finalize()

    def test_state_machine_guards(self, simulator, swipe):
        workflow = LearningWorkflow()
        with pytest.raises(InvalidWorkflowStateError):
            workflow.record_sample(simulator.perform_variation(swipe))
        with pytest.raises(InvalidWorkflowStateError):
            workflow.finalize()
        with pytest.raises(InvalidWorkflowStateError):
            workflow.accept()
        workflow.begin_gesture("swipe_right")
        with pytest.raises(InvalidWorkflowStateError):
            workflow.begin_gesture("another")
        with pytest.raises(RecordingError):
            workflow.record_sample([])

    def test_discard_removes_gesture(self, simulator, swipe):
        workflow = LearningWorkflow()
        workflow.begin_gesture("swipe_right")
        for sample in self._samples(simulator, swipe):
            workflow.record_sample(sample)
        workflow.finalize()
        workflow.discard()
        assert workflow.phase is WorkflowPhase.IDLE
        assert not workflow.database.has_gesture("swipe_right")
        assert "swipe_right" not in workflow.detector.deployed_gestures()

    def test_validation_detects_overlap_with_existing_gesture(self, simulator, swipe):
        workflow = LearningWorkflow()
        # Learn the same movement twice under two different names: the second
        # one must trigger an overlap/subsumption message.
        for name in ("first_swipe", "second_swipe"):
            workflow.begin_gesture(name)
            for sample in self._samples(simulator, swipe):
                workflow.record_sample(sample)
            workflow.finalize()
            workflow.accept()
        report = workflow.last_validation
        assert report is not None
        assert report.has_conflicts

    def test_relearning_same_gesture_redeploys(self, simulator, swipe):
        workflow = LearningWorkflow()
        for _ in range(2):
            workflow.begin_gesture("swipe_right")
            for sample in self._samples(simulator, swipe):
                workflow.record_sample(sample)
            workflow.finalize()
            workflow.accept()
        assert workflow.detector.deployed_gestures().count("swipe_right") == 1

    def test_control_gestures_are_deployed(self):
        workflow = LearningWorkflow()
        names = workflow.engine.query_names()
        assert "__control_record" in names
        assert "__control_finalize" in names

    def test_control_gestures_can_be_disabled(self):
        workflow = LearningWorkflow(deploy_control_gestures=False)
        assert workflow.engine.query_names() == []

    def test_min_samples_validation(self):
        with pytest.raises(ValueError):
            WorkflowConfig(min_samples=0)
