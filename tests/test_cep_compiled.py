"""Equivalence suite: compiled expression closures vs the interpreted walk.

``Expression.compile`` must return closures that produce exactly the values
(and the error types) of ``Expression.evaluate`` — the NFA matcher's fast
path relies on it, and the batched benchmarks assert it end to end.  The
corpus below covers every node type the parser can produce, including the
two specialized comparison shapes (``field <op> literal`` and the learner's
``abs(field ± c) <op> w`` pose-window template).
"""

import pytest

from repro.cep.expressions import (
    Comparison,
    CompiledPredicateCache,
    Expression,
    Literal,
    abs_diff_predicate,
)
from repro.cep.matcher import MatcherConfig, NFAMatcher
from repro.cep.nfa import compile_pattern
from repro.cep.parser import parse_expression, parse_query
from repro.cep.query import EventPattern, sequence
from repro.cep.udf import default_functions
from repro.errors import ExpressionError, UnknownFunctionError

#: The paper's Fig. 1 swipe query (lower-cased fields); its step predicates
#: are the canonical generated-query corpus.
FIG1_QUERY = """
SELECT "swipe_right"
MATCHING (
  kinect(
    abs(rhand_x - torso_x - 0) < 50 and
    abs(rhand_y - torso_y - 150) < 50 and
    abs(rhand_z - torso_z + 120) < 50
  ) ->
  kinect(
    abs(rhand_x - torso_x - 400) < 50 and
    abs(rhand_y - torso_y - 150) < 50 and
    abs(rhand_z - torso_z + 420) < 50
  )
  within 1 seconds select first consume all
) ->
kinect(
  abs(rhand_x - torso_x - 800) < 50 and
  abs(rhand_y - torso_y - 150) < 50 and
  abs(rhand_z - torso_z + 120) < 50
)
within 1 seconds select first consume all;
"""

#: Expression corpus exercising every AST node and operator.
EXPRESSIONS = [
    "1 + 2 * 3",
    "(1 + 2) * 3",
    "10 / 4 - 1",
    "-x + 5",
    "x - y * z",
    "2 + 3 < 10",
    "x < 5",
    "x <= 5",
    "x > 5",
    "x >= 5",
    "x == 5",
    "x != 5",
    "x = 5",
    "x <> 5",
    "x < 5 and y > 2",
    "x < 5 or y > 2",
    "not (x == 3)",
    "x < 5 and y > 2 or not (z == 3)",
    "true",
    "false",
    'name == "swipe"',
    "abs(x - 40) < 50",
    "abs(x + 120) <= 50",
    "abs(x - 0) < 50",
    "abs(x) > 2",
    "sqrt(y) < 3",
    "min(x, y, 3) == 3",
    "max(x, y) > 1",
    "dist(x, y, z, 0, 0, 0) < 100",
    "abs(x - 400) < 50 and abs(y - 150) < 50 and abs(z + 120) < 50",
]

#: Records the corpus is evaluated against.
RECORDS = [
    {"x": 3.0, "y": 4.0, "z": 3.0, "name": "swipe"},
    {"x": -7.5, "y": 9.0, "z": 0.0, "name": "circle"},
    {"x": 420.0, "y": 151.0, "z": -119.0, "name": "swipe"},
    {"x": 5, "y": 2, "z": 12, "name": ""},
]


class TestCompiledEquivalence:
    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_compiled_matches_interpreted_on_corpus(self, text):
        functions = default_functions()
        expression = parse_expression(text)
        compiled = expression.compile(functions)
        for record in RECORDS:
            assert compiled(record) == expression.evaluate(record, functions), (
                f"{text!r} diverged on {record!r}"
            )

    def test_fig1_step_predicates_are_equivalent(self):
        functions = default_functions()
        pattern = compile_pattern(parse_query(FIG1_QUERY).pattern)
        records = [
            {"rhand_x": rx, "rhand_y": 150.0, "rhand_z": -120.0,
             "torso_x": 0.0, "torso_y": 0.0, "torso_z": 0.0}
            for rx in (0.0, 390.0, 430.0, 800.0, 1200.0)
        ]
        for step in pattern.steps:
            compiled = step.predicate.compile(functions)
            for record in records:
                assert compiled(record) == step.predicate.evaluate(record, functions)

    def test_abs_diff_predicate_template_is_equivalent(self):
        functions = default_functions()
        for center in (-120.0, 0.0, 400.0):
            predicate = abs_diff_predicate("rhand_x", center, 50.0)
            compiled = predicate.compile(functions)
            for value in (center - 60, center - 49, center, center + 49, center + 60):
                record = {"rhand_x": value}
                assert compiled(record) == predicate.evaluate(record, functions)

    def test_division_by_zero_raises_in_both_paths(self):
        expression = parse_expression("x / y")
        record = {"x": 1.0, "y": 0.0}
        with pytest.raises(ExpressionError):
            expression.evaluate(record)
        with pytest.raises(ExpressionError):
            expression.compile()(record)

    def test_missing_field_raises_in_both_paths(self):
        for text in ("x + 1", "x < 5", "abs(x - 40) < 50"):
            expression = parse_expression(text)
            with pytest.raises(ExpressionError):
                expression.evaluate({"other": 1.0})
            with pytest.raises(ExpressionError):
                expression.compile()({"other": 1.0})

    def test_unknown_function_raises_at_compile_time(self):
        expression = parse_expression("mystery(x) < 5")
        with pytest.raises(UnknownFunctionError):
            expression.compile(default_functions())

    def test_arity_mismatch_raises_at_compile_time(self):
        expression = parse_expression("abs(x, y) < 5")
        with pytest.raises(ExpressionError):
            expression.compile(default_functions())

    def test_custom_udf_resolves_through_registry(self):
        functions = default_functions()
        functions.register("double", lambda value: value * 2, arity=1)
        expression = parse_expression("double(x) > 10")
        compiled = expression.compile(functions)
        assert compiled({"x": 6}) is True
        assert compiled({"x": 4}) is False

    def test_abs_override_disables_the_window_specialization(self):
        # A user-registered 'abs' must win over the builtin shortcut.
        functions = default_functions()
        functions.register("abs", lambda value: 0.0, arity=1)
        expression = parse_expression("abs(x - 400) < 50")
        compiled = expression.compile(functions)
        for record in ({"x": 0.0}, {"x": 1000.0}):
            assert compiled(record) == expression.evaluate(record, functions)
            assert compiled(record) is True  # overridden abs returns 0 < 50

    def test_base_class_fallback_interprets_custom_nodes(self):
        class Always7(Expression):
            def evaluate(self, record, functions=None):
                return 7

            def to_query(self):
                return "always7"

            def fields(self):
                return frozenset()

        comparison = Comparison("<", Always7(), Literal(10))
        assert comparison.compile()({}) is True


class TestCompiledPredicateCache:
    def test_identical_predicates_share_one_closure(self):
        cache = CompiledPredicateCache(default_functions())
        first = cache.compile(parse_expression("x > 100"))
        second = cache.compile(parse_expression("x > 100"))
        assert first is second
        assert cache.hits == 1
        assert cache.misses == 1
        assert len(cache) == 1

    def test_different_predicates_get_distinct_closures(self):
        cache = CompiledPredicateCache(default_functions())
        first = cache.compile(parse_expression("x > 100"))
        second = cache.compile(parse_expression("x > 200"))
        assert first is not second
        assert len(cache) == 2

    def test_clear_forgets_cached_closures(self):
        cache = CompiledPredicateCache(default_functions())
        closure = cache.compile(parse_expression("x > 100"))
        cache.clear()
        assert len(cache) == 0
        assert cache.compile(parse_expression("x > 100")) is not closure


class TestMatcherPathEquivalence:
    def _matchers(self):
        events = [
            EventPattern(stream="s", predicate=parse_expression(f"abs(x - {i * 100}) < 25"))
            for i in range(3)
        ]
        pattern = compile_pattern(sequence(events, within_seconds=1.0))
        compiled = NFAMatcher(pattern, output="g", config=MatcherConfig())
        interpreted = NFAMatcher(
            pattern, output="g", config=MatcherConfig(compile_predicates=False)
        )
        return compiled, interpreted

    def test_compiled_and_interpreted_matchers_agree(self):
        compiled, interpreted = self._matchers()
        values = [0, 310, 100, 90, 210, 0, 120, 95, 200, 205, 0, 100, 200]
        tuples = [{"x": float(v), "ts": i * 0.1} for i, v in enumerate(values)]
        assert compiled.process_many(tuples, "s") == interpreted.process_many(tuples, "s")
        assert (
            compiled.stats.predicate_evaluations
            == interpreted.stats.predicate_evaluations
        )
        assert compiled.stats.runs_started == interpreted.stats.runs_started
        assert compiled.stats.runs_pruned == interpreted.stats.runs_pruned
