"""Unit tests for motion detection and the recording state machine."""

import pytest

from repro.detection.controller import (
    ControllerConfig,
    MotionDetector,
    RecordingController,
    RecordingPhase,
)
from repro.errors import RecordingError


def _frame(x, ts, y=0.0):
    return {"rhand_x": x, "rhand_y": y, "rhand_z": 0.0,
            "lhand_x": 0.0, "lhand_y": 0.0, "lhand_z": 0.0, "ts": ts}


def _still_frames(count, x=0.0, start_ts=0.0):
    return [_frame(x, start_ts + i / 30.0) for i in range(count)]


def _moving_frames(count, start_x=0.0, step=30.0, start_ts=0.0):
    return [_frame(start_x + i * step, start_ts + i / 30.0) for i in range(count)]


class TestControllerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ControllerConfig(motion_window_s=0)
        with pytest.raises(ValueError):
            ControllerConfig(frequency_hz=0)
        with pytest.raises(ValueError):
            ControllerConfig(stationary_threshold_mm=0)
        with pytest.raises(ValueError):
            ControllerConfig(stationary_hold_s=-1)
        with pytest.raises(ValueError):
            ControllerConfig(max_recording_s=0)
        with pytest.raises(ValueError):
            ControllerConfig(min_recording_frames=0)

    def test_derived_frame_counts(self):
        config = ControllerConfig(motion_window_s=0.5, frequency_hz=30.0, stationary_hold_s=0.5)
        assert config.window_frames == 15
        assert config.hold_frames == 15


class TestMotionDetector:
    def test_reports_moving_until_window_full(self):
        detector = MotionDetector(ControllerConfig(motion_window_s=0.2))
        results = [detector.observe(frame) for frame in _still_frames(3)]
        assert results[0] is False

    def test_stationary_user_detected(self):
        detector = MotionDetector()
        results = [detector.observe(frame) for frame in _still_frames(30)]
        assert results[-1] is True

    def test_moving_user_detected(self):
        detector = MotionDetector()
        results = [detector.observe(frame) for frame in _moving_frames(30)]
        assert results[-1] is False

    def test_extent_reflects_movement(self):
        detector = MotionDetector()
        for frame in _moving_frames(15, step=50.0):
            detector.observe(frame)
        assert detector.current_extent() > 100.0

    def test_reset_clears_window(self):
        detector = MotionDetector()
        for frame in _still_frames(30):
            detector.observe(frame)
        detector.reset()
        assert detector.current_extent() == 0.0


class TestRecordingController:
    def _config(self):
        return ControllerConfig(
            motion_window_s=0.2, stationary_hold_s=0.3, min_recording_frames=5,
            stationary_threshold_mm=60.0,
        )

    def _run(self, controller, frames):
        phases = []
        for frame in frames:
            phases.append(controller.observe(frame))
        return phases

    def test_initial_phase_is_idle_and_frames_ignored(self):
        controller = RecordingController(self._config())
        phases = self._run(controller, _still_frames(20))
        assert all(phase is RecordingPhase.IDLE for phase in phases)

    def test_full_recording_cycle(self):
        controller = RecordingController(self._config())
        controller.arm()
        assert controller.phase is RecordingPhase.ARMED
        # Hold still at the start pose -> READY.
        self._run(controller, _still_frames(30, x=0.0, start_ts=0.0))
        assert controller.phase is RecordingPhase.READY
        # Move -> RECORDING; stop -> COMPLETE.
        self._run(controller, _moving_frames(30, start_ts=1.0))
        self._run(controller, _still_frames(30, x=30.0 * 29, start_ts=2.0))
        assert controller.phase is RecordingPhase.COMPLETE
        assert controller.has_sample
        sample = controller.take_sample()
        assert len(sample) >= 5
        assert controller.phase is RecordingPhase.IDLE

    def test_take_sample_without_recording_raises(self):
        controller = RecordingController(self._config())
        with pytest.raises(RecordingError):
            controller.take_sample()

    def test_cancel_aborts(self):
        controller = RecordingController(self._config())
        controller.arm()
        controller.cancel()
        assert controller.phase is RecordingPhase.IDLE

    def test_short_twitch_is_rejected_and_controller_returns_to_ready(self):
        config = ControllerConfig(
            motion_window_s=0.2, stationary_hold_s=0.3, min_recording_frames=50,
            stationary_threshold_mm=60.0,
        )
        controller = RecordingController(config)
        controller.arm()
        self._run(controller, _still_frames(30))
        self._run(controller, _moving_frames(8, start_ts=1.0))
        self._run(controller, _still_frames(30, x=8 * 30.0, start_ts=1.3))
        assert controller.phase is RecordingPhase.READY
        assert not controller.has_sample

    def test_overlong_recording_raises_and_cancels(self):
        config = ControllerConfig(
            motion_window_s=0.2, stationary_hold_s=0.3, max_recording_s=1.0,
            stationary_threshold_mm=60.0,
        )
        controller = RecordingController(config)
        controller.arm()
        self._run(controller, _still_frames(30))
        with pytest.raises(RecordingError):
            self._run(controller, _moving_frames(120, start_ts=1.0))
        assert controller.phase is RecordingPhase.IDLE

    def test_overlong_recording_without_timestamps_still_cancels(self):
        # Frames lacking "ts" used to default to 0.0, so the max-duration
        # guard compared against zero and never fired; the controller now
        # synthesises time from the frame count and the configured rate.
        config = ControllerConfig(
            motion_window_s=0.2, stationary_hold_s=0.3, max_recording_s=1.0,
            stationary_threshold_mm=60.0,
        )
        controller = RecordingController(config)
        controller.arm()
        stripped_still = [
            {k: v for k, v in frame.items() if k != "ts"}
            for frame in _still_frames(30)
        ]
        self._run(controller, stripped_still)
        assert controller.phase is RecordingPhase.READY
        stripped_moving = [
            {k: v for k, v in frame.items() if k != "ts"}
            for frame in _moving_frames(120, start_ts=1.0)
        ]
        with pytest.raises(RecordingError):
            self._run(controller, stripped_moving)
        assert controller.phase is RecordingPhase.IDLE

    def test_short_recording_without_timestamps_is_not_cancelled(self):
        # The synthesised clock must not fire the guard early either: a
        # normal-length ts-less recording completes like a timestamped one.
        controller = RecordingController(self._config())
        controller.arm()
        frames = (
            _still_frames(30)
            + _moving_frames(30, start_ts=1.0)
            + _still_frames(30, x=30.0 * 29, start_ts=2.0)
        )
        stripped = [{k: v for k, v in frame.items() if k != "ts"} for frame in frames]
        self._run(controller, stripped)
        assert controller.phase is RecordingPhase.COMPLETE

    def test_timestamps_lost_mid_recording_keep_one_time_basis(self):
        # A stream that starts with real timestamps (far from zero) and
        # loses them mid-recording must keep counting from where the real
        # clock stopped — not restart a synthetic clock at zero, which
        # would disable the max-duration guard for thousands of frames.
        config = ControllerConfig(
            motion_window_s=0.2, stationary_hold_s=0.3, max_recording_s=1.0,
            stationary_threshold_mm=60.0,
        )
        controller = RecordingController(config)
        controller.arm()
        self._run(controller, _still_frames(30, start_ts=100.0))
        assert controller.phase is RecordingPhase.READY
        # 10 timestamped moving frames, then the tracker stops stamping.
        moving = _moving_frames(120, start_ts=101.0)
        for frame in moving[10:]:
            del frame["ts"]
        with pytest.raises(RecordingError):
            self._run(controller, moving)
        assert controller.phase is RecordingPhase.IDLE

    def test_recorded_sample_covers_the_movement(self):
        controller = RecordingController(self._config())
        controller.arm()
        self._run(controller, _still_frames(30, x=0.0))
        self._run(controller, _moving_frames(30, step=30.0, start_ts=1.0))
        self._run(controller, _still_frames(30, x=870.0, start_ts=2.0))
        sample = controller.take_sample()
        xs = [frame["rhand_x"] for frame in sample]
        assert max(xs) - min(xs) > 500.0
