"""Shared fixtures for the test suite.

Fixtures centralise the expensive setup (simulators, learned gestures,
workloads) so individual tests stay fast and deterministic: every random
generator is seeded, and every clock is simulated.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cep import CEPEngine, install_kinect_view
from repro.core import GestureLearner, QueryGenerator
from repro.kinect import (
    CircleTrajectory,
    GaussianNoise,
    KinectSimulator,
    NoNoise,
    SwipeTrajectory,
    user_by_name,
)
from repro.streams import SimulatedClock


@pytest.fixture
def clock() -> SimulatedClock:
    return SimulatedClock()


@pytest.fixture
def simulator() -> KinectSimulator:
    """A deterministic adult-user simulator with moderate sensor noise."""
    return KinectSimulator(
        user=user_by_name("adult"),
        clock=SimulatedClock(),
        noise=GaussianNoise(sigma_mm=5.0, rng=np.random.default_rng(42)),
        rng=np.random.default_rng(7),
    )


@pytest.fixture
def noiseless_simulator() -> KinectSimulator:
    """A simulator without sensor noise, for exact-geometry assertions."""
    return KinectSimulator(
        user=user_by_name("adult"),
        clock=SimulatedClock(),
        noise=NoNoise(),
        rng=np.random.default_rng(7),
    )


@pytest.fixture
def swipe() -> SwipeTrajectory:
    return SwipeTrajectory(direction="right")


@pytest.fixture
def circle() -> CircleTrajectory:
    return CircleTrajectory()


@pytest.fixture
def engine_with_view() -> CEPEngine:
    """An engine with the raw stream and the kinect_t view installed."""
    engine = CEPEngine(clock=SimulatedClock())
    install_kinect_view(engine)
    return engine


@pytest.fixture
def swipe_samples(simulator, swipe):
    """Four slightly varied performances of the swipe gesture (raw frames)."""
    return [
        simulator.perform_variation(swipe, hold_start_s=0.3, hold_end_s=0.3)
        for _ in range(4)
    ]


@pytest.fixture
def swipe_description(swipe_samples):
    """A learned description of the swipe gesture."""
    learner = GestureLearner("swipe_right")
    return learner.learn(swipe_samples)


@pytest.fixture
def swipe_query(swipe_description):
    """The generated CEP query for the learned swipe gesture."""
    return QueryGenerator().generate(swipe_description)
