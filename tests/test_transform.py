"""Unit tests for repro.transform (coordinate, rotation, pipeline)."""


import pytest

from repro.kinect import KinectSimulator, NoNoise, SwipeTrajectory, user_by_name
from repro.streams import SimulatedClock
from repro.transform.coordinate import (
    REFERENCE_FOREARM_MM,
    forearm_scale,
    scale_coordinates,
    shift_to_torso,
)
from repro.transform.pipeline import KinectTransformer, TransformConfig, transform_frame
from repro.transform.rotation import (
    estimate_yaw_deg,
    joint_roll_pitch_yaw,
    roll_pitch_yaw,
    rotate_about_y,
)


def _rest_frame(user="adult", position=(0.0, 0.0, 2200.0), yaw=0.0):
    simulator = KinectSimulator(
        user=user_by_name(user),
        clock=SimulatedClock(),
        noise=NoNoise(),
        position=position,
        yaw_deg=yaw,
    )
    return simulator.measure_rest()


class TestShiftToTorso:
    def test_torso_becomes_origin(self):
        shifted = shift_to_torso(_rest_frame(position=(300.0, 100.0, 2500.0)))
        assert shifted["torso_x"] == pytest.approx(0.0)
        assert shifted["torso_y"] == pytest.approx(0.0)
        assert shifted["torso_z"] == pytest.approx(0.0)

    def test_relative_geometry_is_preserved(self):
        frame = _rest_frame(position=(300.0, 100.0, 2500.0))
        shifted = shift_to_torso(frame)
        assert shifted["head_y"] == pytest.approx(frame["head_y"] - frame["torso_y"])

    def test_position_invariance(self):
        near = shift_to_torso(_rest_frame(position=(0.0, 0.0, 1800.0)))
        far = shift_to_torso(_rest_frame(position=(700.0, 0.0, 3500.0)))
        assert near["rhand_x"] == pytest.approx(far["rhand_x"], abs=1e-6)
        assert near["rhand_z"] == pytest.approx(far["rhand_z"], abs=1e-6)

    def test_non_joint_fields_pass_through(self):
        frame = dict(_rest_frame(), ts=1.25, player=2)
        shifted = shift_to_torso(frame)
        assert shifted["ts"] == 1.25
        assert shifted["player"] == 2

    def test_missing_torso_raises(self):
        with pytest.raises(KeyError):
            shift_to_torso({"rhand_x": 0.0, "rhand_y": 0.0, "rhand_z": 0.0})


class TestForearmScale:
    def test_reference_user_measures_reference_forearm(self):
        scale = forearm_scale(_rest_frame())
        assert scale == pytest.approx(REFERENCE_FOREARM_MM, rel=0.02)

    def test_child_measures_proportionally_smaller(self):
        scale = forearm_scale(_rest_frame(user="child"))
        expected = REFERENCE_FOREARM_MM * user_by_name("child").scale
        assert scale == pytest.approx(expected, rel=0.02)

    def test_missing_joints_fall_back(self):
        assert forearm_scale({}) == REFERENCE_FOREARM_MM

    def test_degenerate_measurement_falls_back(self):
        frame = {f"rhand_{a}": 0.0 for a in "xyz"}
        frame.update({f"relbow_{a}": 0.0 for a in "xyz"})
        assert forearm_scale(frame) == REFERENCE_FOREARM_MM

    def test_left_side_option(self):
        assert forearm_scale(_rest_frame(), side="left") == pytest.approx(
            REFERENCE_FOREARM_MM, rel=0.02
        )


class TestScaleCoordinates:
    def test_scaling_maps_child_onto_reference_proportions(self):
        child_frame = shift_to_torso(_rest_frame(user="child"))
        adult_frame = shift_to_torso(_rest_frame(user="adult"))
        child_scaled = scale_coordinates(child_frame, forearm_scale(_rest_frame(user="child")))
        adult_scaled = scale_coordinates(adult_frame, forearm_scale(_rest_frame(user="adult")))
        assert child_scaled["rhand_x"] == pytest.approx(adult_scaled["rhand_x"], rel=0.03)
        assert child_scaled["head_y"] == pytest.approx(adult_scaled["head_y"], rel=0.03)

    def test_reference_one_yields_forearm_units(self):
        frame = shift_to_torso(_rest_frame())
        scaled = scale_coordinates(frame, forearm_scale(_rest_frame()), reference=1.0)
        assert abs(scaled["rhand_x"]) < 3.0  # roughly one forearm away laterally

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            scale_coordinates({"rhand_x": 1.0}, 0.0)

    def test_non_joint_fields_untouched(self):
        scaled = scale_coordinates({"ts": 2.0, "rhand_x": 100.0}, 200.0)
        assert scaled["ts"] == 2.0


class TestRotation:
    def test_yaw_zero_when_facing_camera(self):
        assert estimate_yaw_deg(shift_to_torso(_rest_frame())) == pytest.approx(0.0, abs=2.0)

    def test_yaw_estimate_matches_simulated_turn(self):
        for angle in (20.0, -35.0, 60.0):
            frame = shift_to_torso(_rest_frame(yaw=angle))
            assert estimate_yaw_deg(frame) == pytest.approx(angle, abs=2.0)

    def test_yaw_missing_shoulders_defaults_to_zero(self):
        assert estimate_yaw_deg({}) == 0.0

    def test_rotation_cancels_user_heading(self):
        straight = shift_to_torso(_rest_frame(yaw=0.0))
        turned = shift_to_torso(_rest_frame(yaw=40.0))
        aligned = rotate_about_y(turned, -estimate_yaw_deg(turned))
        assert aligned["rhand_x"] == pytest.approx(straight["rhand_x"], abs=2.0)
        assert aligned["rhand_z"] == pytest.approx(straight["rhand_z"], abs=2.0)

    def test_rotation_preserves_height(self):
        frame = shift_to_torso(_rest_frame(yaw=30.0))
        rotated = rotate_about_y(frame, -30.0)
        assert rotated["head_y"] == pytest.approx(frame["head_y"])

    def test_roll_pitch_yaw_of_axis_aligned_vectors(self):
        roll, pitch, yaw = roll_pitch_yaw((0, 0, 0), (1, 0, 0))
        assert (roll, pitch, yaw) == (0.0, 0.0, 0.0)
        _, pitch_up, _ = roll_pitch_yaw((0, 0, 0), (0, 1, 0))
        assert pitch_up == pytest.approx(90.0)
        _, _, yaw_left = roll_pitch_yaw((0, 0, 0), (0, 0, -1))
        assert yaw_left == pytest.approx(90.0)

    def test_joint_roll_pitch_yaw_uses_frame_fields(self):
        frame = {
            "relbow_x": 0.0, "relbow_y": 0.0, "relbow_z": 0.0,
            "rhand_x": 100.0, "rhand_y": 100.0, "rhand_z": 0.0,
        }
        _, pitch, yaw = joint_roll_pitch_yaw(frame, "relbow", "rhand")
        assert pitch == pytest.approx(45.0)
        assert yaw == pytest.approx(0.0)


class TestPipeline:
    def test_transform_produces_user_independent_swipe(self):
        paths = {}
        for user in ("child", "tall_adult"):
            simulator = KinectSimulator(
                user=user_by_name(user),
                clock=SimulatedClock(),
                noise=NoNoise(),
                position=(400.0 if user == "child" else -300.0, 0.0, 2600.0),
            )
            transformer = KinectTransformer()
            frames = simulator.perform(SwipeTrajectory("right"))
            transformed = [transformer.transform(frame) for frame in frames]
            paths[user] = transformed
        child_end = paths["child"][-1]
        tall_end = paths["tall_adult"][-1]
        assert child_end["rhand_x"] == pytest.approx(tall_end["rhand_x"], rel=0.05)
        assert child_end["rhand_y"] == pytest.approx(tall_end["rhand_y"], abs=30.0)

    def test_transform_adds_scale_field(self):
        transformed = KinectTransformer().transform(_rest_frame())
        assert transformed["scale"] == pytest.approx(REFERENCE_FOREARM_MM, rel=0.05)

    def test_scale_smoothing_converges(self):
        transformer = KinectTransformer(TransformConfig(smooth_scale=0.9))
        frame = _rest_frame(user="child")
        for _ in range(100):
            result = transformer.transform(frame)
        expected = REFERENCE_FOREARM_MM * user_by_name("child").scale
        assert result["scale"] == pytest.approx(expected, rel=0.03)

    def test_reset_clears_smoothing_state(self):
        transformer = KinectTransformer()
        transformer.transform(_rest_frame(user="child"))
        transformer.reset()
        assert transformer.frames_transformed == 0
        assert transformer.active_partitions == 0

    def test_concurrent_players_do_not_blend_scale_factors(self):
        # A child and a tall adult sharing the stream: each player's frames
        # must smooth against their own history only, so the interleaved
        # stream yields the same scales as two isolated transformers.
        child = [_rest_frame(user="child") for _ in range(40)]
        adult = [_rest_frame(user="tall_adult") for _ in range(40)]
        for i, frame in enumerate(child):
            frame.update(player=1, ts=i / 30.0)
        for i, frame in enumerate(adult):
            frame.update(player=2, ts=i / 30.0)

        shared = KinectTransformer(TransformConfig(smooth_scale=0.9))
        interleaved = [
            shared.transform(frame)
            for pair in zip(child, adult)
            for frame in pair
        ]
        isolated_child = KinectTransformer(TransformConfig(smooth_scale=0.9))
        expected_child = [isolated_child.transform(frame) for frame in child]
        isolated_adult = KinectTransformer(TransformConfig(smooth_scale=0.9))
        expected_adult = [isolated_adult.transform(frame) for frame in adult]

        assert [t["scale"] for t in interleaved[0::2]] == [
            t["scale"] for t in expected_child
        ]
        assert [t["scale"] for t in interleaved[1::2]] == [
            t["scale"] for t in expected_adult
        ]
        assert shared.active_partitions == 2
        # Sanity: the two bodies converge to genuinely different scales.
        assert interleaved[-2]["scale"] != pytest.approx(
            interleaved[-1]["scale"], rel=0.2
        )

    def test_unpartitioned_transformer_blends_players(self):
        # partition_field=None restores the single shared smoothing slot.
        config = TransformConfig(smooth_scale=0.9, partition_field=None)
        shared = KinectTransformer(config)
        child = _rest_frame(user="child")
        child.update(player=1, ts=0.0)
        adult = _rest_frame(user="tall_adult")
        adult.update(player=2, ts=1 / 30.0)
        first = shared.transform(child)["scale"]
        second = shared.transform(adult)["scale"]
        # The adult's scale is dragged toward the child's history.
        alone = KinectTransformer(config).transform(dict(adult))["scale"]
        assert second != pytest.approx(alone, rel=0.01)
        assert abs(second - first) < abs(alone - first)

    def test_idle_partition_state_is_evicted(self):
        config = TransformConfig(smooth_scale=0.9, partition_idle_seconds=5.0)
        transformer = KinectTransformer(config)
        child = _rest_frame(user="child")
        child.update(player=1, ts=0.0)
        transformer.transform(child)
        smoothed = transformer.smoothed_scale(1)
        assert smoothed is not None
        # The same player id returns after the idle TTL — possibly a
        # different person — and must start from a fresh measurement.
        adult = _rest_frame(user="tall_adult")
        adult.update(player=1, ts=10.0)
        returned = transformer.transform(adult)["scale"]
        fresh = KinectTransformer(config).transform(dict(adult))["scale"]
        assert returned == pytest.approx(fresh)

    def test_reset_partition_forgets_single_player(self):
        transformer = KinectTransformer()
        child = _rest_frame(user="child")
        child.update(player=1, ts=0.0)
        adult = _rest_frame(user="tall_adult")
        adult.update(player=2, ts=0.0)
        transformer.transform(child)
        transformer.transform(adult)
        transformer.reset_partition(1)
        assert transformer.smoothed_scale(1) is None
        assert transformer.smoothed_scale(2) is not None

    def test_orientation_alignment_can_be_disabled(self):
        config = TransformConfig(align_orientation=False)
        turned = _rest_frame(yaw=45.0)
        aligned = transform_frame(turned, TransformConfig(align_orientation=True))
        unaligned = transform_frame(turned, config)
        assert aligned["rhand_x"] != pytest.approx(unaligned["rhand_x"], abs=5.0)

    def test_transform_frame_honours_every_config_field(self):
        # transform_frame zeroes smoothing via dataclasses.replace, so any
        # config field (including ones added later, like the partition
        # settings) survives instead of being silently dropped.
        config = TransformConfig(
            align_orientation=False,
            scale_side="left",
            scale_reference_mm=100.0,
            smooth_scale=0.5,
            partition_field="player",
            partition_idle_seconds=1.0,
        )
        frame = _rest_frame(yaw=45.0)
        result = transform_frame(frame, config)
        import dataclasses

        manual_cfg = dataclasses.replace(config, smooth_scale=0.0)
        expected = KinectTransformer(manual_cfg).transform(frame)
        assert result == expected
        # And the non-smoothing fields genuinely took effect.
        default = transform_frame(frame)
        assert result["rhand_x"] != pytest.approx(default["rhand_x"], abs=1.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TransformConfig(scale_side="middle")
        with pytest.raises(ValueError):
            TransformConfig(partition_idle_seconds=0.0)
        with pytest.raises(ValueError):
            TransformConfig(smooth_scale=1.5)
        with pytest.raises(ValueError):
            TransformConfig(scale_reference_mm=0.0)

    def test_transform_frame_is_stateless_convenience(self):
        frame = _rest_frame()
        assert transform_frame(frame)["torso_x"] == pytest.approx(0.0)
