"""Unit tests for repro.kinect.simulator."""

import numpy as np
import pytest

from repro.kinect.noise import NoNoise
from repro.kinect.simulator import KINECT_FREQUENCY_HZ, KinectSimulator
from repro.kinect.trajectories import SwipeTrajectory, TwoHandSwipeTrajectory
from repro.kinect.users import user_by_name
from repro.streams import SimulatedClock, Stream


@pytest.fixture
def quiet_sim():
    return KinectSimulator(clock=SimulatedClock(), noise=NoNoise())


class TestFrameGeneration:
    def test_frame_rate_matches_kinect(self, quiet_sim):
        frames = quiet_sim.perform(SwipeTrajectory("right"))
        duration = frames[-1]["ts"] - frames[0]["ts"]
        expected = len(frames) / KINECT_FREQUENCY_HZ
        assert duration == pytest.approx(expected, rel=0.05)

    def test_timestamps_are_strictly_increasing(self, quiet_sim):
        frames = quiet_sim.perform(SwipeTrajectory("right"))
        timestamps = [frame["ts"] for frame in frames]
        assert all(b > a for a, b in zip(timestamps, timestamps[1:]))

    def test_frames_carry_player_and_all_joints(self, quiet_sim):
        frame = quiet_sim.measure_rest()
        assert frame["player"] == 1
        assert "rhand_x" in frame and "torso_z" in frame

    def test_hold_phases_add_frames(self, quiet_sim):
        plain = quiet_sim.perform(SwipeTrajectory("right"))
        held = quiet_sim.perform(SwipeTrajectory("right"), hold_start_s=0.5, hold_end_s=0.5)
        assert len(held) == len(plain) + 2 * round(0.5 * KINECT_FREQUENCY_HZ)

    def test_hold_start_keeps_hand_at_start_pose(self, quiet_sim):
        frames = quiet_sim.perform(SwipeTrajectory("right"), hold_start_s=0.4)
        hold_frames = frames[: int(0.4 * 30)]
        xs = [frame["rhand_x"] for frame in hold_frames]
        assert max(xs) - min(xs) < 1.0

    def test_swipe_moves_hand_by_extent_scaled_to_user(self, quiet_sim):
        frames = quiet_sim.perform(SwipeTrajectory("right", extent_mm=800.0))
        travelled = frames[-1]["rhand_x"] - frames[0]["rhand_x"]
        assert travelled == pytest.approx(800.0, rel=0.02)

    def test_child_performs_smaller_movement(self):
        child_sim = KinectSimulator(
            user=user_by_name("child"), clock=SimulatedClock(), noise=NoNoise()
        )
        frames = child_sim.perform(SwipeTrajectory("right", extent_mm=800.0))
        travelled = frames[-1]["rhand_x"] - frames[0]["rhand_x"]
        assert travelled == pytest.approx(800.0 * user_by_name("child").scale, rel=0.02)

    def test_forearm_length_stays_constant_during_gesture(self, quiet_sim):
        frames = quiet_sim.perform(SwipeTrajectory("right"))
        lengths = [
            np.linalg.norm(
                [
                    frame["rhand_x"] - frame["relbow_x"],
                    frame["rhand_y"] - frame["relbow_y"],
                    frame["rhand_z"] - frame["relbow_z"],
                ]
            )
            for frame in frames
        ]
        assert max(lengths) - min(lengths) < 1.0

    def test_two_hand_gesture_moves_both_hands(self, quiet_sim):
        frames = quiet_sim.perform(TwoHandSwipeTrajectory())
        assert frames[-1]["rhand_x"] > frames[0]["rhand_x"]
        assert frames[-1]["lhand_x"] < frames[0]["lhand_x"]

    def test_user_position_offsets_all_coordinates(self):
        simulator = KinectSimulator(
            clock=SimulatedClock(), noise=NoNoise(), position=(500.0, 0.0, 3000.0)
        )
        frame = simulator.measure_rest()
        assert frame["torso_x"] == pytest.approx(500.0)
        assert frame["torso_z"] == pytest.approx(3000.0)

    def test_performance_speed_changes_frame_count(self):
        slow_user = user_by_name("careful_adult")  # performance_speed > 1
        fast_user = user_by_name("hasty_adult")
        slow = KinectSimulator(user=slow_user, clock=SimulatedClock(), noise=NoNoise())
        fast = KinectSimulator(user=fast_user, clock=SimulatedClock(), noise=NoNoise())
        swipe = SwipeTrajectory("right")
        assert len(slow.perform(swipe)) > len(fast.perform(swipe))

    def test_idle_frames_stay_near_rest_pose(self, quiet_sim):
        frames = quiet_sim.idle_frames(1.0)
        assert len(frames) == 30
        xs = [frame["rhand_x"] for frame in frames]
        assert max(xs) - min(xs) < 1.0

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            KinectSimulator(frequency_hz=0)


class TestVariationAndStreaming:
    def test_perform_variation_differs_between_repetitions(self):
        simulator = KinectSimulator(
            clock=SimulatedClock(), noise=NoNoise(), rng=np.random.default_rng(3)
        )
        swipe = SwipeTrajectory("right")
        first = simulator.perform_variation(swipe)
        second = simulator.perform_variation(swipe)
        assert first[-1]["rhand_x"] != pytest.approx(second[-1]["rhand_x"], abs=1e-6)

    def test_stream_to_pushes_every_frame(self, quiet_sim):
        stream = Stream("kinect")
        received = []
        stream.subscribe(received.append)
        count = quiet_sim.stream_to(stream, SwipeTrajectory("right"))
        assert count == len(received)

    def test_stream_session_inserts_pauses(self, quiet_sim):
        stream = Stream("kinect")
        received = []
        stream.subscribe(received.append)
        swipe = SwipeTrajectory("right")
        total = quiet_sim.stream_session(stream, [swipe, swipe], pause_s=1.0)
        assert total == len(received)
        assert total > 2 * len(quiet_sim.perform(swipe)) * 0.9

    def test_move_and_turn_user(self, quiet_sim):
        quiet_sim.move_user((100.0, 0.0, 2500.0))
        quiet_sim.turn_user(30.0)
        frame = quiet_sim.measure_rest()
        assert frame["torso_x"] == pytest.approx(100.0)
