"""Integration tests that mirror the paper's figures and claims end to end.

Each test class corresponds to one experiment id of DESIGN.md / EXPERIMENTS.md
and exercises the full stack: simulator → transformation → learning → query
generation → CEP detection → application actions.
"""

import pytest

from repro.apps import CubeNavigator, GestureBindings, GraphNavigator, collaboration_demo_graph, olap_demo_cube
from repro.cep.parser import parse_query
from repro.core import (
    GestureLearner,
    LearnerConfig,
    PatternOptimizer,
    PatternValidator,
    QueryGenerator,
)
from repro.detection import GestureDetector, LearningWorkflow
from repro.evaluation import DetectionExperiment, ExperimentConfig, WorkloadConfig, build_workload
from repro.kinect import (
    CircleTrajectory,
    GaussianNoise,
    KinectSimulator,
    PushTrajectory,
    SwipeTrajectory,
    WaveTrajectory,
    user_by_name,
)
from repro.streams import SimulatedClock

import numpy as np


def _simulator(user="adult", seed=11, position=(0.0, 0.0, 2200.0), yaw=0.0):
    return KinectSimulator(
        user=user_by_name(user),
        clock=SimulatedClock(),
        noise=GaussianNoise(sigma_mm=6.0, rng=np.random.default_rng(seed)),
        rng=np.random.default_rng(seed + 1),
        position=position,
        yaw_deg=yaw,
    )


class TestFig1SwipeRightQuery:
    """F1: the learned swipe_right query has the structure of the paper's Fig. 1
    and detects the gesture end to end."""

    @pytest.fixture(scope="class")
    def learned(self):
        simulator = _simulator()
        swipe = SwipeTrajectory("right")
        learner = GestureLearner("swipe_right", config=LearnerConfig(joints=("rhand",)))
        for _ in range(4):
            learner.add_sample(
                simulator.perform_variation(swipe, hold_start_s=0.3, hold_end_s=0.3)
            )
        description = learner.description()
        query = QueryGenerator().generate(description)
        return description, query

    def test_three_to_five_poses_like_the_paper(self, learned):
        description, _ = learned
        assert 3 <= description.pose_count <= 6

    def test_pose_centres_follow_fig1_path(self, learned):
        description, _ = learned
        first = description.poses[0].window.center
        last = description.poses[-1].window.center
        assert first["rhand_x"] == pytest.approx(0.0, abs=120.0)
        assert last["rhand_x"] == pytest.approx(800.0, abs=150.0)
        assert first["rhand_y"] == pytest.approx(150.0, abs=100.0)
        assert first["rhand_z"] == pytest.approx(-120.0, abs=120.0)

    def test_query_text_has_fig1_shape(self, learned):
        _, query = learned
        text = query.to_query()
        assert text.startswith('SELECT "swipe_right"')
        assert "abs(rhand_x" in text
        assert "->" in text
        assert "within" in text and "select first consume all" in text
        assert parse_query(text).output == "swipe_right"

    def test_deployed_query_detects_new_performances(self, learned):
        _, query = learned
        detector = GestureDetector()
        detector.deploy(query)
        simulator = _simulator(seed=99)
        hits = 0
        for _ in range(5):
            detector.clear()
            detector.process_frames(
                simulator.perform_variation(SwipeTrajectory("right"),
                                            hold_start_s=0.2, hold_end_s=0.2)
            )
            hits += int(any(e.gesture == "swipe_right" for e in detector.events))
        assert hits >= 4

    def test_deployed_query_ignores_other_gestures(self, learned):
        _, query = learned
        detector = GestureDetector()
        detector.deploy(query)
        simulator = _simulator(seed=100)
        false_positives = 0
        for trajectory in (CircleTrajectory(), PushTrajectory()):
            for _ in range(3):
                detector.clear()
                detector.process_frames(
                    simulator.perform_variation(trajectory, hold_start_s=0.2, hold_end_s=0.2)
                )
                false_positives += len(detector.events)
        assert false_positives == 0


class TestFig3Invariance:
    """F3: position, orientation and body-size invariance of the transformation."""

    @pytest.fixture(scope="class")
    def swipe_query(self):
        simulator = _simulator()
        learner = GestureLearner("swipe_right", config=LearnerConfig(joints=("rhand",)))
        for _ in range(4):
            learner.add_sample(
                simulator.perform_variation(SwipeTrajectory("right"),
                                            hold_start_s=0.3, hold_end_s=0.3)
            )
        return QueryGenerator().generate(learner.description())

    def _detects(self, query, simulator):
        detector = GestureDetector()
        detector.deploy(query)
        detector.process_frames(
            simulator.perform_variation(SwipeTrajectory("right"),
                                        hold_start_s=0.2, hold_end_s=0.2)
        )
        return any(event.gesture == "swipe_right" for event in detector.events)

    def test_detection_survives_user_displacement(self, swipe_query):
        for position in [(-600.0, 0.0, 1800.0), (500.0, 100.0, 3000.0)]:
            assert self._detects(swipe_query, _simulator(seed=5, position=position))

    def test_detection_survives_body_size_change(self, swipe_query):
        for user in ("child", "tall_adult"):
            assert self._detects(swipe_query, _simulator(user=user, seed=6))

    def test_detection_survives_user_rotation(self, swipe_query):
        assert self._detects(swipe_query, _simulator(seed=7, yaw=25.0))


class TestClaimSamplesSufficiency:
    """C1: '3-5 samples are sufficient to achieve acceptable results'."""

    def test_recall_saturates_by_five_samples(self):
        workload = build_workload(
            WorkloadConfig(gestures=("swipe_right", "circle", "push"),
                           training_samples=5, test_performances=2,
                           test_users=("adult", "child"))
        )
        recalls = {}
        for samples in (1, 3, 5):
            result = DetectionExperiment(
                workload, ExperimentConfig(training_samples=samples)
            ).run()
            recalls[samples] = result.macro_recall
        assert recalls[5] >= 0.8
        assert recalls[3] >= recalls[1] - 0.05
        assert recalls[5] >= recalls[1] - 0.05


class TestClaimOverfitting:
    """C2: raw per-frame poses overfit; distance sampling generalises."""

    def test_sampled_description_has_far_fewer_poses_than_frames(self):
        simulator = _simulator()
        frames = simulator.perform_variation(SwipeTrajectory("right"),
                                             hold_start_s=0.3, hold_end_s=0.3)
        learner = GestureLearner("swipe_right", config=LearnerConfig(joints=("rhand",)))
        learner.add_sample(frames)
        description = learner.description()
        assert description.pose_count <= len(frames) / 5


class TestClaimOverlap:
    """C3: widening windows too much makes different gestures overlap, and
    the validator reports exactly that."""

    @pytest.fixture(scope="class")
    def descriptions(self):
        simulator = _simulator()
        catalog = {"swipe_right": SwipeTrajectory("right"), "circle": CircleTrajectory()}
        result = {}
        for name, trajectory in catalog.items():
            learner = GestureLearner(name, config=LearnerConfig(joints=("rhand",)))
            for _ in range(3):
                learner.add_sample(
                    simulator.perform_variation(trajectory, hold_start_s=0.3, hold_end_s=0.3)
                )
            result[name] = learner.description()
        return result

    def test_unscaled_patterns_do_not_conflict(self, descriptions):
        report = PatternValidator().validate(list(descriptions.values()))
        assert not report.has_conflicts

    def test_heavy_scaling_creates_overlaps(self, descriptions):
        scaled = [description.scaled(6.0) for description in descriptions.values()]
        report = PatternValidator().validate(scaled)
        assert report.overlaps
        assert report.has_conflicts


class TestClaimOptimization:
    """C4: optimisation reduces predicate evaluations without losing recall."""

    def test_optimised_pattern_is_cheaper_and_still_detects(self):
        simulator = _simulator()
        learner = GestureLearner("swipe_right", config=LearnerConfig(joints=("rhand",)))
        for _ in range(4):
            learner.add_sample(
                simulator.perform_variation(SwipeTrajectory("right"),
                                            hold_start_s=0.3, hold_end_s=0.3)
            )
        description = learner.description()
        optimised, report = PatternOptimizer().optimize(description)
        assert optimised.predicate_count() <= description.predicate_count()

        generator = QueryGenerator()
        test_sim = _simulator(seed=55)
        for candidate in (description, optimised):
            detector = GestureDetector()
            detector.deploy(generator.generate(candidate))
            detector.process_frames(
                test_sim.perform_variation(SwipeTrajectory("right"),
                                           hold_start_s=0.2, hold_end_s=0.2)
            )
            assert any(event.gesture == "swipe_right" for event in detector.events)


class TestA1ApplicationIntegration:
    """A1: learned gestures drive OLAP and graph navigation."""

    def test_gestures_drive_olap_and_graph_navigation(self):
        simulator = _simulator()
        catalog = {
            "swipe_right": SwipeTrajectory("right"),
            "push": PushTrajectory(),
        }
        detector = GestureDetector()
        for name, trajectory in catalog.items():
            learner = GestureLearner(name, config=LearnerConfig(joints=("rhand",)))
            for _ in range(3):
                learner.add_sample(
                    simulator.perform_variation(trajectory, hold_start_s=0.3, hold_end_s=0.3)
                )
            detector.deploy(learner.description())

        cube_navigator = CubeNavigator(olap_demo_cube(), "time", "geography")
        graph_navigator = GraphNavigator(collaboration_demo_graph(), "kevin_bacon")
        bindings = GestureBindings(detector)
        bindings.bind("swipe_right", cube_navigator.drill_down, name="drill_down")
        bindings.bind("push", graph_navigator.follow, name="follow")

        test_sim = _simulator(seed=77)
        detector.process_frames(
            test_sim.perform_variation(SwipeTrajectory("right"), hold_start_s=0.2, hold_end_s=0.2)
        )
        test_sim.idle_frames(0.5)
        detector.process_frames(
            test_sim.perform_variation(PushTrajectory(), hold_start_s=0.2, hold_end_s=0.2)
        )

        assert cube_navigator.row_level == "quarter"
        assert graph_navigator.current != "kevin_bacon"
        assert len(bindings.log.successes()) == 2

    def test_bindings_can_be_exchanged_at_runtime(self):
        """The demo's selling point: exchange navigation operations without
        touching application code or re-learning gestures."""
        detector = GestureDetector()
        detector.deploy('SELECT "swipe_right" MATCHING kinect_t(rhand_x > 100000);')
        cube_navigator = CubeNavigator(olap_demo_cube(), "time", "geography")
        bindings = GestureBindings(detector)
        bindings.bind("swipe_right", cube_navigator.drill_down, name="drill_down")
        bindings.rebind("swipe_right", cube_navigator.pivot, name="pivot")
        bindings.trigger("swipe_right")
        assert cube_navigator.history == ["pivot"]


class TestWorkflowStreaming:
    """F2/F5: the stream-driven workflow — control gesture arms recording, a
    stationary pose starts/stops it, and the testing phase produces feedback."""

    def test_wave_control_arms_recording_and_sample_is_captured(self):
        workflow = LearningWorkflow()
        simulator = KinectSimulator(
            clock=SimulatedClock(),
            noise=GaussianNoise(sigma_mm=4.0, rng=np.random.default_rng(3)),
            rng=np.random.default_rng(4),
        )
        workflow.begin_gesture("push")

        # 1. The user waves -> the control query fires -> controller armed.
        for frame in simulator.perform(WaveTrajectory(), hold_start_s=0.2, hold_end_s=0.2):
            workflow.process_frame(frame)
        assert any("wave detected" in message for message in workflow.messages)

        # 2. The user moves to the start pose, holds still, performs the
        #    gesture, and holds still again -> one sample recorded.
        for frame in simulator.perform(PushTrajectory(), hold_start_s=1.0, hold_end_s=1.0):
            workflow.process_frame(frame)
        assert workflow.sample_count == 1

    def test_feedback_reports_partial_progress_during_testing(self):
        workflow = LearningWorkflow()
        simulator = _simulator(seed=21)
        workflow.begin_gesture("swipe_right")
        for _ in range(3):
            workflow.record_sample(
                simulator.perform_variation(SwipeTrajectory("right"),
                                            hold_start_s=0.3, hold_end_s=0.3)
            )
        workflow.finalize()
        # Stream only the first half of a new performance: no detection yet,
        # but the partial-match progress must be visible (Fig. 5 feedback).
        frames = simulator.perform_variation(SwipeTrajectory("right"), hold_start_s=0.2)
        workflow.process_frames(frames[: len(frames) // 2])
        feedback = workflow.feedback()
        assert feedback.progress["swipe_right"] > 0.0
        assert workflow.test_events() == []
