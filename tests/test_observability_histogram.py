"""Property tests of the mergeable log-linear latency histogram.

The load-bearing properties: the boundary ladder is fixed and shared, so
merge is associative, commutative and lossless (a merged histogram is
identical to the one a single observer would have recorded); percentile
estimates stay within the bucket edges of the true value; the Prometheus
rendering is a well-formed cumulative ``_bucket``/``_sum``/``_count``
family ending at ``le="+Inf"``.
"""

from __future__ import annotations

import json
import math
import random
from bisect import bisect_left

import pytest

from repro.observability.histogram import BUCKET_BOUNDS, LatencyHistogram
from repro.runtime.metrics import MetricsRegistry, histogram_exposition


def sample_batches(seed: int, batches: int = 4, size: int = 200):
    """Deterministic latency batches spanning the whole ladder."""
    rng = random.Random(seed)
    return [
        [rng.uniform(0.0, 60.0) * 10.0 ** rng.randint(-7, 0) for _ in range(size)]
        for _ in range(batches)
    ]


def recorded(samples) -> LatencyHistogram:
    histogram = LatencyHistogram()
    for value in samples:
        histogram.record(value)
    return histogram


class TestLadder:
    def test_ladder_is_1_2_5_per_decade(self):
        assert BUCKET_BOUNDS[0] == pytest.approx(1e-6)
        assert BUCKET_BOUNDS[-1] == pytest.approx(50.0)
        assert len(BUCKET_BOUNDS) == 24
        assert list(BUCKET_BOUNDS) == sorted(BUCKET_BOUNDS)

    def test_record_updates_count_sum_max(self):
        histogram = recorded([0.001, 0.002, 0.5])
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.503)
        assert histogram.max == pytest.approx(0.5)

    def test_negative_sample_clamps_to_zero(self):
        histogram = recorded([-1.0])
        assert histogram.count == 1
        assert histogram.sum == 0.0
        assert histogram.percentile(1.0) == 0.0

    def test_overflow_bucket_catches_beyond_ladder(self):
        histogram = recorded([120.0])
        assert histogram.bucket_pairs()[-1] == ("+Inf", 1)
        assert histogram.bucket_pairs()[-2][1] == 0


class TestPercentiles:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("quantile", [0.5, 0.9, 0.95, 0.99, 1.0])
    def test_estimate_within_true_values_bucket(self, seed, quantile):
        samples = [value for batch in sample_batches(seed) for value in batch]
        histogram = recorded(samples)
        ordered = sorted(samples)
        true_value = ordered[math.ceil(quantile * len(ordered)) - 1]
        estimate = histogram.percentile(quantile)
        assert estimate >= true_value
        index = bisect_left(BUCKET_BOUNDS, true_value)
        upper = BUCKET_BOUNDS[index] if index < len(BUCKET_BOUNDS) else histogram.max
        assert estimate <= upper

    def test_p100_is_clamped_to_exact_max(self):
        histogram = recorded([0.0011, 0.0013])
        assert histogram.percentile(1.0) == pytest.approx(0.0013)

    def test_empty_histogram_percentile_is_zero(self):
        assert LatencyHistogram().percentile(0.99) == 0.0

    @pytest.mark.parametrize("quantile", [0.0, -0.5, 1.5])
    def test_out_of_range_quantile_rejected(self, quantile):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(quantile)


class TestMerge:
    def test_merge_is_commutative(self):
        a, b, *_ = (recorded(batch) for batch in sample_batches(7))
        assert LatencyHistogram.merged([a, b]) == LatencyHistogram.merged([b, a])

    def test_merge_is_associative(self):
        a, b, c, _ = (recorded(batch) for batch in sample_batches(11))
        left = LatencyHistogram.merged([LatencyHistogram.merged([a, b]), c])
        right = LatencyHistogram.merged([a, LatencyHistogram.merged([b, c])])
        assert left == right

    def test_merge_is_lossless_against_single_observer(self):
        batches = sample_batches(13)
        single = recorded([value for batch in batches for value in batch])
        merged = LatencyHistogram.merged([recorded(batch) for batch in batches])
        # Bucket counts and max merge exactly; the sum is float addition,
        # so grouping may differ in the last ulp.
        assert merged.to_state()["counts"] == single.to_state()["counts"]
        assert merged.max == single.max
        assert merged.sum == pytest.approx(single.sum, rel=1e-12)
        for quantile in (0.5, 0.95, 0.99, 1.0):
            assert merged.percentile(quantile) == single.percentile(quantile)

    def test_merge_accepts_states_from_json(self):
        a, b, *_ = (recorded(batch) for batch in sample_batches(17))
        state = json.loads(json.dumps(b.to_state()))
        merged = LatencyHistogram.merged([a, state])
        assert merged == LatencyHistogram.merged([a, b])

    def test_state_round_trip(self):
        original = recorded(sample_batches(19)[0])
        restored = LatencyHistogram.from_state(original.to_state())
        assert restored == original

    def test_state_from_other_ladder_rejected(self):
        state = recorded([0.1]).to_state()
        state["buckets"] = 12
        with pytest.raises(ValueError):
            LatencyHistogram.from_state(state)

    def test_state_with_torn_counts_rejected(self):
        state = recorded([0.1]).to_state()
        state["counts"] = state["counts"][:-1]
        with pytest.raises(ValueError):
            LatencyHistogram.from_state(state)

    def test_state_with_negative_count_rejected(self):
        state = recorded([0.1]).to_state()
        state["counts"][0] = -1
        with pytest.raises(ValueError):
            LatencyHistogram.from_state(state)


def parse_exposition(lines):
    """Parse histogram exposition lines into (buckets, sum, count)."""
    buckets, total_sum, count = [], None, None
    for line in lines:
        if line.startswith("#"):
            continue
        name_part, value = line.rsplit(" ", 1)
        name = name_part.split("{", 1)[0]
        if name.endswith("_bucket"):
            le = name_part.split('le="', 1)[1].split('"')[0]
            buckets.append((le, int(value)))
        elif name.endswith("_sum"):
            total_sum = float(value)
        elif name.endswith("_count"):
            count = int(value)
    return buckets, total_sum, count


class TestPrometheusRendering:
    def test_bucket_pairs_are_cumulative_and_end_at_inf(self):
        histogram = recorded(sample_batches(23)[0])
        pairs = histogram.bucket_pairs()
        counts = [count for _, count in pairs]
        assert counts == sorted(counts)
        assert pairs[-1] == ("+Inf", histogram.count)

    def test_exposition_parses_and_reconciles(self):
        histogram = recorded(sample_batches(29)[0])
        lines = histogram_exposition(
            "repro_test_seconds", "A test histogram.", histogram, {"shard": "0"}
        )
        assert "# TYPE repro_test_seconds histogram" in lines
        buckets, total_sum, count = parse_exposition(lines)
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == count == histogram.count
        assert [c for _, c in buckets] == sorted(c for _, c in buckets)
        assert total_sum == pytest.approx(histogram.sum, rel=1e-6)
        # Every finite edge parses as a float and the list ascends.
        edges = [float(le) for le, _ in buckets[:-1]]
        assert edges == sorted(edges)

    def test_registry_renders_all_pipeline_families(self):
        registry = MetricsRegistry()
        registry.shard(0).record_queue_wait(0.002)
        registry.shard(0).record_batch_seconds(0.004)
        registry.histogram("ingest_to_detection").record(0.006)
        registry.durability.add_fsync(duration_seconds=0.001)
        text = registry.to_prometheus()
        for family in (
            "repro_queue_wait_seconds",
            "repro_batch_processing_seconds",
            "repro_ingest_to_detection_seconds",
            "repro_fsync_seconds",
        ):
            assert f"{family}_bucket" in text
            assert f"{family}_sum" in text
            assert f"{family}_count" in text
        assert 'le="+Inf"' in text

    def test_snapshot_histograms_survive_json(self):
        registry = MetricsRegistry()
        registry.shard(0).record_queue_wait(0.002)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["histograms"]["queue_wait"]["count"] == 1
