"""Unit tests for window merging (Sec. 3.3.2) and the gesture learner."""

import warnings

import pytest

from repro.core.description import GestureDescription
from repro.core.learner import GestureLearner, LearnerConfig, detect_moving_joints
from repro.core.merging import MergeConfig, WindowMerger, align_centers
from repro.core.sampling import DistanceBasedSampler, SamplingConfig
from repro.errors import EmptySampleError, IncompatibleSampleError, SampleDeviationWarning
from repro.kinect import SwipeTrajectory


def _sample_path(offset=0.0, count=40, fields=("rhand_x", "rhand_y", "rhand_z")):
    frames = [
        {
            "rhand_x": index * 20.0 + offset,
            "rhand_y": 150.0 + offset,
            "rhand_z": -120.0,
            "ts": index / 30.0,
        }
        for index in range(count)
    ]
    sampler = DistanceBasedSampler(SamplingConfig(fields=fields, relative_threshold=0.2))
    return sampler.sample(frames)


class TestAlignCenters:
    def test_same_length_is_copied(self):
        centers = [{"x": 0.0}, {"x": 10.0}]
        aligned = align_centers(centers, 2)
        assert aligned == centers
        aligned[0]["x"] = 99.0
        assert centers[0]["x"] == 0.0

    def test_upsampling_interpolates(self):
        aligned = align_centers([{"x": 0.0}, {"x": 100.0}], 3)
        assert [point["x"] for point in aligned] == [0.0, 50.0, 100.0]

    def test_downsampling_keeps_endpoints(self):
        aligned = align_centers([{"x": 0.0}, {"x": 30.0}, {"x": 70.0}, {"x": 100.0}], 2)
        assert aligned[0]["x"] == 0.0
        assert aligned[-1]["x"] == 100.0

    def test_single_source_point_is_repeated(self):
        aligned = align_centers([{"x": 5.0}], 3)
        assert [point["x"] for point in aligned] == [5.0, 5.0, 5.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            align_centers([], 2)
        with pytest.raises(ValueError):
            align_centers([{"x": 1.0}], 0)


class TestWindowMerger:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            WindowMerger("")

    def test_description_requires_samples(self):
        with pytest.raises(IncompatibleSampleError):
            WindowMerger("g").description()

    def test_single_sample_produces_min_width_windows(self):
        merger = WindowMerger("g", MergeConfig(min_width_mm=50.0, padding_mm=0.0))
        merger.add_sample(_sample_path())
        description = merger.description()
        assert description.sample_count == 1
        assert all(pose.window.width["rhand_y"] >= 50.0 for pose in description.poses)

    def test_merging_grows_windows_to_cover_all_samples(self):
        merger = WindowMerger("g", MergeConfig(min_width_mm=10.0, padding_mm=0.0))
        merger.add_sample(_sample_path(offset=0.0))
        narrow = merger.description()
        merger.add_sample(_sample_path(offset=80.0))
        wide = merger.description()
        assert wide.poses[0].window.width["rhand_y"] > narrow.poses[0].window.width["rhand_y"]
        assert wide.sample_count == 2

    def test_pose_count_fixed_by_first_sample(self):
        merger = WindowMerger("g")
        first = _sample_path(count=40)
        second = _sample_path(count=80)
        merger.add_sample(first)
        merger.add_sample(second)
        assert merger.description().pose_count == first.pose_count
        assert merger.reference_length == first.pose_count

    def test_incompatible_fields_rejected(self):
        merger = WindowMerger("g")
        merger.add_sample(_sample_path())
        with pytest.raises(IncompatibleSampleError):
            merger.add_sample(_sample_path(fields=("lhand_x", "lhand_y", "lhand_z")))

    def test_deviation_warning_for_outlier_sample(self):
        merger = WindowMerger(
            "g", MergeConfig(deviation_warning_factor=0.5, min_width_mm=20.0, padding_mm=0.0)
        )
        merger.add_sample(_sample_path(offset=0.0))
        with pytest.warns(SampleDeviationWarning):
            result = merger.add_sample(_sample_path(offset=400.0))
        assert result.warnings
        assert result.deviation > 0.5

    def test_warnings_can_be_silenced_but_still_recorded(self):
        merger = WindowMerger(
            "g",
            MergeConfig(deviation_warning_factor=0.5, emit_warnings=False, padding_mm=0.0),
        )
        merger.add_sample(_sample_path(offset=0.0))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = merger.add_sample(_sample_path(offset=400.0))
        assert result.warnings

    def test_scale_factor_generalises_windows(self):
        base = WindowMerger("g", MergeConfig(scale_factor=1.0))
        scaled = WindowMerger("g", MergeConfig(scale_factor=2.0))
        for merger in (base, scaled):
            merger.add_sample(_sample_path())
        base_width = base.description().poses[0].window.width["rhand_x"]
        scaled_width = scaled.description().poses[0].window.width["rhand_x"]
        assert scaled_width == pytest.approx(2.0 * base_width)

    def test_duration_statistics(self):
        merger = WindowMerger("g")
        merger.add_sample(_sample_path(count=40))
        merger.add_sample(_sample_path(count=80))
        description = merger.description()
        assert description.max_duration_s > description.mean_duration_s > 0.0

    def test_reset_clears_state(self):
        merger = WindowMerger("g")
        merger.add_sample(_sample_path())
        merger.reset()
        assert merger.sample_count == 0
        with pytest.raises(IncompatibleSampleError):
            merger.description()

    def test_merge_config_validation(self):
        with pytest.raises(ValueError):
            MergeConfig(min_width_mm=0.0)
        with pytest.raises(ValueError):
            MergeConfig(padding_mm=-1.0)
        with pytest.raises(ValueError):
            MergeConfig(scale_factor=0.0)
        with pytest.raises(ValueError):
            MergeConfig(deviation_warning_factor=0.0)


class TestDetectMovingJoints:
    def test_detects_only_the_moving_hand(self, noiseless_simulator):
        from repro.transform import KinectTransformer

        transformer = KinectTransformer()
        frames = [
            transformer.transform(frame)
            for frame in noiseless_simulator.perform(SwipeTrajectory("right"))
        ]
        joints = detect_moving_joints(frames)
        assert "rhand" in joints
        assert "lhand" not in joints
        assert "head" not in joints

    def test_empty_frames_give_no_joints(self):
        assert detect_moving_joints([]) == []

    def test_stationary_frames_give_no_joints(self):
        frames = [{"rhand_x": 0.0, "rhand_y": 0.0, "rhand_z": 0.0}] * 10
        assert detect_moving_joints(frames) == []

    def test_joint_occluded_in_first_frame_is_still_detected(self):
        # A tracking dropout on frame 0 used to exclude the joint outright,
        # even when the rest of the sample shows clear movement.
        frames = [
            {"rhand_x": float(i * 100), "rhand_y": 0.0, "rhand_z": 0.0}
            for i in range(10)
        ]
        frames[0] = {}
        assert detect_moving_joints(frames) == ["rhand"]

    def test_mid_sample_dropout_uses_consistent_frame_subsets(self):
        # When tracking drops mid-sample, per-axis spans must be measured
        # over the same frames.  Here the only frame with a large x also
        # lacks y/z; measuring axes over inconsistent subsets would count
        # the joint as moving although no fully tracked frame moved.
        frames = [
            {"rhand_x": 0.0, "rhand_y": 0.0, "rhand_z": 0.0} for _ in range(10)
        ]
        frames[5] = {"rhand_x": 900.0}
        assert detect_moving_joints(frames) == []


class TestGestureLearner:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            GestureLearner("")

    def test_rejects_unknown_joints_in_config(self):
        with pytest.raises(ValueError):
            LearnerConfig(joints=("tail",))

    def test_rejects_empty_sample(self):
        with pytest.raises(EmptySampleError):
            GestureLearner("g").add_sample([])

    def test_learns_swipe_from_samples(self, swipe_samples):
        learner = GestureLearner("swipe_right")
        description = learner.learn(swipe_samples)
        assert isinstance(description, GestureDescription)
        assert description.sample_count == len(swipe_samples)
        assert 2 <= description.pose_count <= 8
        assert "rhand" in description.joints

    def test_pose_centers_follow_the_movement(self, swipe_samples):
        description = GestureLearner("swipe_right").learn(swipe_samples)
        xs = [pose.window.center["rhand_x"] for pose in description.poses]
        assert xs == sorted(xs)
        assert xs[-1] - xs[0] > 500.0

    def test_explicit_joint_configuration_is_respected(self, swipe_samples):
        config = LearnerConfig(joints=("rhand",))
        description = GestureLearner("swipe_right", config=config).learn(swipe_samples)
        assert description.joints == ["rhand"]
        assert set(description.fields()) == {"rhand_x", "rhand_y", "rhand_z"}

    def test_stationary_first_sample_raises(self, noiseless_simulator):
        learner = GestureLearner("nothing")
        with pytest.raises(EmptySampleError):
            learner.add_sample(noiseless_simulator.idle_frames(1.0))

    def test_pretransformed_input_mode(self, swipe_samples):
        from repro.transform import KinectTransformer

        transformer = KinectTransformer()
        transformed = [
            [transformer.transform(frame) for frame in sample] for sample in swipe_samples
        ]
        config = LearnerConfig(transform_input=False)
        description = GestureLearner("swipe_right", config=config).learn(transformed)
        assert description.pose_count >= 2

    def test_reset_forgets_samples_and_joints(self, swipe_samples):
        learner = GestureLearner("swipe_right")
        learner.add_sample(swipe_samples[0])
        learner.reset()
        assert learner.sample_count == 0
        assert learner.joints is None

    def test_results_record_merge_outcomes(self, swipe_samples):
        learner = GestureLearner("swipe_right")
        learner.learn(swipe_samples)
        assert len(learner.results) == len(swipe_samples)

    def test_description_metadata_mentions_learning_parameters(self, swipe_description):
        assert "learner" in swipe_description.metadata
        assert swipe_description.stream == "kinect_t"

    def test_sample_path_exposes_sampling_only(self, swipe_samples):
        learner = GestureLearner("swipe_right")
        path = learner.sample_path(swipe_samples[0])
        assert path.pose_count >= 2
