"""The sampling profiler: tagging, attribution, merging, rendering.

Unit tests drive :meth:`SamplingProfiler.sample_once` against threads
parked at known points, so attribution is deterministic.  The acceptance
tests run a skewed two-query workload through a real session — inline
and across process shards — and require >=80% of the sampled matcher CPU
charged to the heavy query.
"""

from __future__ import annotations

import threading

import pytest

from repro.api.session import GestureSession, SessionConfig
from repro.observability import profiling
from repro.observability.profiling import (
    UNTAGGED,
    SamplingProfiler,
    render_top,
    tag_query,
    untag_query,
)

HEAVY = 'SELECT "heavy" MATCHING busy_t(rhand_y > 450);'
LIGHT = 'SELECT "light" MATCHING quiet_t(rhand_y > 450);'


class ParkedWorker:
    """A thread parked inside a recognisably named function, optionally
    tagged as matcher work for a query."""

    def __init__(self, name, query=None):
        self.query = query
        self.ready = threading.Event()
        self.release = threading.Event()
        self.thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )

    def _run(self):
        if self.query is not None:
            tag_query(self.query)
        try:
            self._parked_in_matcher()
        finally:
            if self.query is not None:
                untag_query()

    def _parked_in_matcher(self):
        self.ready.set()
        self.release.wait(10.0)

    def __enter__(self):
        self.thread.start()
        assert self.ready.wait(5.0)
        return self

    def __exit__(self, *exc):
        self.release.set()
        self.thread.join(5.0)


@pytest.fixture
def profiler():
    instance = SamplingProfiler(hz=200.0)
    # Activate tagging without starting the wall-clock thread: samples
    # are taken explicitly so counts are deterministic.
    profiling._ACTIVE_PROFILERS += 1
    try:
        yield instance
    finally:
        profiling._ACTIVE_PROFILERS -= 1
        profiling._TAGS.clear()


class TestTagging:
    def test_tagging_is_noop_without_active_profiler(self):
        assert profiling._ACTIVE_PROFILERS == 0
        tag_query("q")
        assert profiling._TAGS == {}
        untag_query()  # must not raise either

    def test_tags_set_and_cleared_when_active(self, profiler):
        tag_query("q")
        assert profiling._TAGS[threading.get_ident()] == "q"
        untag_query()
        assert threading.get_ident() not in profiling._TAGS

    def test_stop_of_last_profiler_clears_tags(self):
        instance = SamplingProfiler(hz=50.0)
        instance.start()
        try:
            tag_query("leftover")
            assert profiling._TAGS
        finally:
            instance.stop()
        assert profiling._TAGS == {}
        assert profiling._ACTIVE_PROFILERS == 0


class TestSampling:
    def test_samples_attribute_to_tagged_query(self, profiler):
        with ParkedWorker("repro-shard-0", query="swipe"):
            for _ in range(5):
                profiler.sample_once()
        samples = profiler.query_samples()
        assert samples["swipe"] == 5
        assert profiler.query_share() == {"swipe": 1.0}

    def test_untagged_threads_fall_into_untagged_bucket(self, profiler):
        with ParkedWorker("repro-aux"):
            profiler.sample_once()
        assert profiler.query_samples()[UNTAGGED] >= 1
        # The untagged bucket never appears in the share.
        assert UNTAGGED not in profiler.query_share()

    def test_share_splits_across_queries(self, profiler):
        with ParkedWorker("w1", query="heavy"), ParkedWorker("w2", query="light"):
            for _ in range(4):
                profiler.sample_once()
        share = profiler.query_share()
        assert share["heavy"] == pytest.approx(0.5)
        assert share["light"] == pytest.approx(0.5)

    def test_collapsed_stack_rooted_at_thread_name(self, profiler):
        with ParkedWorker("repro-shard-3", query="swipe"):
            profiler.sample_once()
        lines = profiler.collapsed()
        mine = [line for line in lines if "_parked_in_matcher" in line]
        assert mine, lines
        stack, count = mine[0].rsplit(" ", 1)
        assert stack.startswith("repro-shard-3;")
        assert int(count) >= 1
        # Frames are ordered outermost -> innermost.
        assert stack.index("_run") < stack.index("_parked_in_matcher")

    def test_profiler_skips_its_own_thread(self, profiler):
        profiler.sample_once()
        assert all(
            "sample_once" not in line.rsplit(";", 1)[-1]
            for line in profiler.collapsed()
        )


class TestStateAndMerge:
    def test_state_roundtrip_and_absorb_sums(self, profiler):
        with ParkedWorker("w", query="swipe"):
            profiler.sample_once()
            profiler.sample_once()
        state = profiler.to_state()
        sink = SamplingProfiler(hz=100.0)
        sink.absorb(state)
        sink.absorb(state)
        assert sink.samples == 2 * profiler.samples
        assert sink.query_samples()["swipe"] == 4

    def test_clear_resets_counts(self, profiler):
        with ParkedWorker("w", query="swipe"):
            profiler.sample_once()
        profiler.clear()
        assert profiler.samples == 0
        assert profiler.query_samples() == {}
        assert profiler.collapsed() == []

    def test_snapshot_is_json_shaped(self, profiler):
        with ParkedWorker("w", query="swipe"):
            profiler.sample_once()
        snapshot = profiler.snapshot()
        assert snapshot["samples"] >= 1
        assert snapshot["query_samples"]["swipe"] == 1
        assert snapshot["top_stacks"][0]["count"] >= 1

    def test_invalid_hz_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0.0)

    def test_thread_is_named(self):
        instance = SamplingProfiler(hz=50.0)
        instance.start()
        try:
            assert "repro-profiler" in {t.name for t in threading.enumerate()}
        finally:
            instance.stop()


class TestRenderTop:
    def test_renders_queries_and_stacks(self, profiler):
        with ParkedWorker("w", query="swipe"):
            profiler.sample_once()
        text = render_top(profiler.snapshot())
        assert "QUERY" in text and "CPU%" in text
        assert "swipe" in text
        assert "HOTTEST STACKS" in text

    def test_untagged_row_has_no_percentage(self, profiler):
        with ParkedWorker("w"):
            profiler.sample_once()
        line = next(
            line for line in render_top(profiler.snapshot()).splitlines()
            if UNTAGGED in line
        )
        assert "%" not in line


def skewed_workload(heavy_tuples=30000, light_tuples=300):
    """Frames for two streams: ~100x more work for the heavy query."""
    heavy = [
        {"ts": index * 0.001, "player": 1 + index % 4, "rhand_y": 500.0}
        for index in range(heavy_tuples)
    ]
    light = [
        {"ts": index * 0.001, "player": 1 + index % 4, "rhand_y": 500.0}
        for index in range(light_tuples)
    ]
    return heavy, light


def run_skewed(config):
    heavy, light = skewed_workload()
    with GestureSession(config) as session:
        session.deploy(HEAVY)
        session.deploy(LIGHT)
        session.feed(light, stream="quiet_t")
        session.feed(heavy, stream="busy_t")
        session.drain()
        profile = session.profile()
    return profile


class TestSessionAttribution:
    def assert_heavy_dominates(self, profile):
        assert profile["enabled"]
        assert profile["samples"] > 0
        queries = profile["queries"]
        assert "heavy" in queries, profile
        share = queries["heavy"]["cpu_share"]
        assert share >= 0.8, profile
        # The join carries the engine's per-query stats alongside.
        assert queries["heavy"]["stats"]["runs_started"] > 0

    def test_inline_attribution_hits_the_heavy_query(self):
        profile = run_skewed(
            SessionConfig(profile_hz=300.0, batch_size=512)
        )
        self.assert_heavy_dominates(profile)

    def test_process_shard_attribution_merges_to_parent(self):
        profile = run_skewed(
            SessionConfig(
                shards=4,
                shard_executor="process",
                profile_hz=300.0,
                batch_size=512,
            )
        )
        self.assert_heavy_dominates(profile)

    def test_profile_disabled_reports_shape(self):
        with GestureSession(SessionConfig()) as session:
            profile = session.profile()
        assert profile == {"enabled": False, "samples": 0, "queries": {}}
