"""Unit tests of the gateway's building blocks.

Covers the RFC 6455 codec (masking, length encodings, fragmentation,
protocol violations), the small HTTP reader, the JSON application
protocol, the Prometheus exposition helpers (including label escaping),
the token bucket and the per-tenant async ingest queue's policy matrix.
The end-to-end server behaviour lives in ``test_gateway_server.py``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api.session import SessionConfig
from repro.errors import (
    BackpressureError,
    ConnectionClosedError,
    GatewayError,
    GatewayProtocolError,
    MessageTooBigError,
    WebSocketError,
)
from repro.gateway import http, protocol, websocket
from repro.gateway.tenants import AsyncIngestQueue, TenantConfig, TokenBucket
from repro.runtime.metrics import (
    MetricsRegistry,
    escape_label_value,
    prometheus_sample,
)


def run(coroutine):
    """Run one coroutine on a fresh loop (the suite has no asyncio plugin)."""
    return asyncio.run(coroutine)


def make_stream(payload: bytes) -> asyncio.StreamReader:
    """A pre-fed StreamReader (call inside a running loop only)."""
    reader = asyncio.StreamReader()
    reader.feed_data(payload)
    reader.feed_eof()
    return reader


class _SinkWriter:
    """A minimal StreamWriter stand-in capturing written bytes."""

    def __init__(self):
        self.data = bytearray()
        self.closed = False

    def write(self, data):
        self.data.extend(data)

    async def drain(self):
        return None

    def close(self):
        self.closed = True


def run_ws(wire: bytes, action, **kwargs):
    """Build a server-role connection over ``wire`` and run ``action`` on it.

    Returns ``(outcome, connection)`` where ``outcome`` is the action's
    result or the exception it raised — so tests can assert on both the
    error and the connection's post-mortem state.
    """

    async def scenario():
        connection = websocket.WebSocketConnection(
            make_stream(wire), _SinkWriter(), role="server", **kwargs
        )
        try:
            outcome = await action(connection)
        except Exception as error:  # noqa: BLE001 — handed back for asserting
            outcome = error
        return outcome, connection

    return asyncio.run(scenario())


def client_frame(opcode: int, payload: bytes, fin: bool = True) -> bytes:
    return websocket.encode_frame(opcode, payload, masked=True, fin=fin)


class TestWebSocketCodec:
    def test_accept_key_matches_the_rfc_example(self):
        # RFC 6455 §1.3's worked example.
        assert (
            websocket.accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    @pytest.mark.parametrize("size", [0, 1, 125, 126, 65535, 65536, 70000])
    def test_mask_roundtrip_across_length_encodings(self, size):
        payload = bytes(i % 251 for i in range(size))
        wire = client_frame(websocket.OP_BINARY, payload)
        (opcode, received), _ = run_ws(wire, lambda c: c.receive_message())
        assert opcode == websocket.OP_BINARY
        assert received == payload

    def test_fragmented_message_is_reassembled(self):
        wire = (
            client_frame(websocket.OP_TEXT, b"hel", fin=False)
            + client_frame(websocket.OP_CONTINUATION, b"lo ", fin=False)
            + client_frame(websocket.OP_CONTINUATION, b"world", fin=True)
        )
        text, _ = run_ws(wire, lambda c: c.receive_text())
        assert text == "hello world"

    def test_ping_is_answered_between_fragments(self):
        wire = (
            client_frame(websocket.OP_TEXT, b"a", fin=False)
            + client_frame(websocket.OP_PING, b"k")
            + client_frame(websocket.OP_CONTINUATION, b"b", fin=True)
        )
        text, connection = run_ws(wire, lambda c: c.receive_text())
        assert text == "ab"
        # The pong went out on the writer, unmasked (server role).
        data = bytes(connection._writer.data)
        assert data[0] == 0x80 | websocket.OP_PONG
        assert data[1] == 1 and data[2:3] == b"k"

    def test_unmasked_client_frame_fails_with_1002(self):
        wire = websocket.encode_frame(websocket.OP_TEXT, b"x", masked=False)
        outcome, connection = run_ws(wire, lambda c: c.receive_message())
        assert isinstance(outcome, WebSocketError)
        assert connection.closed

    def test_reserved_bits_fail_the_connection(self):
        frame = bytearray(client_frame(websocket.OP_TEXT, b"x"))
        frame[0] |= 0x40  # RSV1 without a negotiated extension
        outcome, _ = run_ws(bytes(frame), lambda c: c.receive_message())
        assert isinstance(outcome, WebSocketError)

    def test_fragmented_control_frame_is_rejected(self):
        wire = client_frame(websocket.OP_PING, b"x", fin=False)
        outcome, _ = run_ws(wire, lambda c: c.receive_message())
        assert isinstance(outcome, WebSocketError)

    def test_continuation_without_a_message_is_rejected(self):
        wire = client_frame(websocket.OP_CONTINUATION, b"x")
        outcome, _ = run_ws(wire, lambda c: c.receive_message())
        assert isinstance(outcome, WebSocketError)

    def test_interleaved_data_frame_is_rejected(self):
        wire = client_frame(websocket.OP_TEXT, b"a", fin=False) + client_frame(
            websocket.OP_TEXT, b"b"
        )
        outcome, _ = run_ws(wire, lambda c: c.receive_message())
        assert isinstance(outcome, WebSocketError)

    def test_oversized_frame_raises_message_too_big(self):
        wire = client_frame(websocket.OP_BINARY, b"x" * 256)
        outcome, _ = run_ws(wire, lambda c: c.receive_message(), max_message_bytes=128)
        assert isinstance(outcome, MessageTooBigError)

    def test_oversized_reassembled_message_raises_too(self):
        wire = client_frame(websocket.OP_TEXT, b"x" * 100, fin=False) + client_frame(
            websocket.OP_CONTINUATION, b"y" * 100
        )
        outcome, _ = run_ws(wire, lambda c: c.receive_message(), max_message_bytes=128)
        assert isinstance(outcome, MessageTooBigError)

    def test_close_frame_raises_connection_closed_with_code(self):
        import struct

        payload = struct.pack(">H", 1001) + b"going away"
        wire = client_frame(websocket.OP_CLOSE, payload)
        outcome, connection = run_ws(wire, lambda c: c.receive_message())
        assert isinstance(outcome, ConnectionClosedError)
        assert outcome.code == 1001
        assert connection.close_reason == "going away"

    def test_abrupt_eof_raises_connection_closed(self):
        # The peer vanished before sending any frame.
        outcome, _ = run_ws(b"", lambda c: c.receive_message())
        assert isinstance(outcome, ConnectionClosedError)

    def test_invalid_utf8_text_fails_with_websocket_error(self):
        wire = client_frame(websocket.OP_TEXT, b"\xff\xfe")
        outcome, _ = run_ws(wire, lambda c: c.receive_text())
        assert isinstance(outcome, WebSocketError)


class TestHttp:
    def test_read_request_parses_line_headers_and_query(self):
        async def scenario():
            reader = make_stream(
                b"GET /metrics?format=json HTTP/1.1\r\n"
                b"Host: example\r\n"
                b"Accept: text/plain\r\n\r\n"
            )
            return await http.read_request(reader)

        request = run(scenario())
        assert request.method == "GET"
        assert request.path == "/metrics"
        assert request.query == {"format": "json"}
        assert request.header("host") == "example"
        assert not request.wants_upgrade()

    def test_read_request_detects_upgrade(self):
        async def scenario():
            reader = make_stream(
                b"GET /ws HTTP/1.1\r\n"
                b"Connection: keep-alive, Upgrade\r\n"
                b"Upgrade: websocket\r\n\r\n"
            )
            return await http.read_request(reader)

        assert run(scenario()).wants_upgrade()

    def test_read_request_returns_none_on_clean_eof(self):
        async def scenario():
            return await http.read_request(make_stream(b""))

        assert run(scenario()) is None

    @pytest.mark.parametrize(
        "wire",
        [
            b"GARBAGE\r\n\r\n",
            b"GET /\r\n\r\n",  # missing version
            b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n",
        ],
    )
    def test_malformed_requests_raise(self, wire):
        async def scenario():
            return await http.read_request(make_stream(wire))

        with pytest.raises(GatewayError):
            run(scenario())

    def test_oversized_body_is_refused(self):
        async def scenario():
            wire = b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
            return await http.read_request(make_stream(wire), max_body_bytes=1024)

        with pytest.raises(GatewayError):
            run(scenario())

    def test_render_response_has_length_and_close(self):
        raw = http.render_response(200, b"ok\n")
        text = raw.decode()
        assert text.startswith("HTTP/1.1 200 OK\r\n")
        assert "Content-Length: 3" in text
        assert "Connection: close" in text
        assert text.endswith("\r\n\r\nok\n")


class TestApplicationProtocol:
    def test_decode_rejects_bad_json_and_shapes(self):
        for text in ["not json", "[1,2]", '{"no": "type"}', '{"type": 7}']:
            with pytest.raises(GatewayProtocolError) as info:
                protocol.decode_message(text)
            assert info.value.code == protocol.ErrorCode.BAD_MESSAGE
            assert not info.value.fatal

    def test_decode_rejects_unknown_type(self):
        with pytest.raises(GatewayProtocolError) as info:
            protocol.decode_message('{"type": "launch_missiles"}')
        assert info.value.code == protocol.ErrorCode.UNSUPPORTED_TYPE

    def test_require_records_validates_shape(self):
        with pytest.raises(GatewayProtocolError):
            protocol.require_records({"records": []})
        with pytest.raises(GatewayProtocolError):
            protocol.require_records({"records": [1, 2]})
        with pytest.raises(GatewayProtocolError):
            protocol.require_records({"records": [{}], "batch": 0})
        assert protocol.require_records({"records": [{"ts": 1}]}) == [{"ts": 1}]

    def test_validate_hello_rejects_future_protocol(self):
        with pytest.raises(GatewayProtocolError) as info:
            protocol.validate_hello({"tenant": "a", "protocol": 99})
        assert info.value.code == protocol.ErrorCode.UNSUPPORTED_PROTOCOL
        assert info.value.fatal

    def test_encode_is_compact_and_stable(self):
        assert protocol.encode_message({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestPrometheusExposition:
    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_sample_with_labels_is_sorted_and_escaped(self):
        line = prometheus_sample(
            "repro_test_total", 3, {"tenant": 'say "hi"\n', "shard": "0"}
        )
        assert line == (
            'repro_test_total{shard="0",tenant="say \\"hi\\"\\n"} 3'
        )

    def test_registry_exposition_has_families_and_tenant_label(self):
        registry = MetricsRegistry()
        registry.shard(0).add_enqueued(5)
        registry.shard(1).add_processed(3, 0.5)
        text = registry.to_prometheus({"tenant": "arcade"})
        assert text.endswith("\n")
        assert "# TYPE repro_shard_tuples_enqueued_total counter" in text
        assert (
            'repro_shard_tuples_enqueued_total{shard="0",tenant="arcade"} 5'
            in text
        )
        assert (
            'repro_shard_tuples_processed_total{shard="1",tenant="arcade"} 3'
            in text
        )
        # Every sample line carries the extra label.
        for line in text.splitlines():
            if line and not line.startswith("#"):
                assert 'tenant="arcade"' in line

    def test_exposition_parses_as_utf8_and_has_help_per_family(self):
        registry = MetricsRegistry()
        registry.shard(0)
        text = registry.to_prometheus()
        families = [l.split()[2] for l in text.splitlines() if l.startswith("# TYPE")]
        helps = [l.split()[2] for l in text.splitlines() if l.startswith("# HELP")]
        assert families and set(families) == set(helps)


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=10, burst=5, clock=lambda: now[0])
        assert bucket.consume(5) == 0.0
        wait = bucket.consume(1)
        assert wait == pytest.approx(0.1)
        now[0] += 0.1
        assert bucket.consume(1) == 0.0

    def test_failed_consume_keeps_tokens(self):
        now = [0.0]
        bucket = TokenBucket(rate=1, burst=2, clock=lambda: now[0])
        assert bucket.consume(2) == 0.0
        assert bucket.consume(2) > 0
        now[0] += 1.0
        assert bucket.consume(1) == 0.0  # the failed attempt burned nothing


class TestAsyncIngestQueuePolicyMatrix:
    def records(self, count):
        return [{"ts": float(i)} for i in range(count)]

    def test_error_policy_raises_when_full(self):
        async def scenario():
            queue = AsyncIngestQueue(capacity=4, policy="error")
            await queue.put_tuples(None, self.records(4), None)
            with pytest.raises(BackpressureError):
                await queue.put_tuples(None, self.records(1), None)

        run(scenario())

    def test_drop_newest_rejects_the_offered_chunk_whole(self):
        async def scenario():
            queue = AsyncIngestQueue(capacity=4, policy="drop_newest")
            assert await queue.put_tuples(None, self.records(3), None) == 0
            assert await queue.put_tuples(None, self.records(2), None) == 2
            assert queue.depth == 3  # the backlog kept its guarantee
            item = await queue.get()
            assert [r["ts"] for r in item.records] == [0.0, 1.0, 2.0]

        run(scenario())

    def test_drop_newest_admits_oversized_chunk_against_empty_queue(self):
        async def scenario():
            queue = AsyncIngestQueue(capacity=4, policy="drop_newest")
            assert await queue.put_tuples(None, self.records(9), None) == 0
            assert queue.depth == 9

        run(scenario())

    def test_drop_oldest_evicts_older_tuples_but_never_controls(self):
        async def scenario():
            queue = AsyncIngestQueue(capacity=4, policy="drop_oldest")
            await queue.put_tuples(None, self.records(2), None)
            future = queue.put_control("drain")
            await queue.put_tuples("s2", self.records(2), None)
            dropped = await queue.put_tuples("s3", self.records(2), None)
            assert dropped == 2
            assert queue.depth == 4
            first = await queue.get()
            assert first.kind == "control" and first.future is future
            streams = [(await queue.get()).stream for _ in range(2)]
            assert streams == ["s2", "s3"]

        run(scenario())

    def test_block_policy_waits_for_the_consumer(self):
        async def scenario():
            queue = AsyncIngestQueue(capacity=2, policy="block")
            await queue.put_tuples(None, self.records(2), None)
            produced = asyncio.ensure_future(
                queue.put_tuples(None, self.records(2), None)
            )
            await asyncio.sleep(0.01)
            assert not produced.done()  # blocked: queue is full
            await queue.get()
            assert await asyncio.wait_for(produced, 1.0) == 0

        run(scenario())

    def test_close_wakes_blocked_producers_with_an_error(self):
        async def scenario():
            queue = AsyncIngestQueue(capacity=1, policy="block")
            await queue.put_tuples(None, self.records(1), None)
            produced = asyncio.ensure_future(
                queue.put_tuples(None, self.records(1), None)
            )
            await asyncio.sleep(0.01)
            queue.close()
            with pytest.raises(GatewayError):
                await asyncio.wait_for(produced, 1.0)

        run(scenario())

    def test_get_returns_none_once_closed_and_empty(self):
        async def scenario():
            queue = AsyncIngestQueue(capacity=2, policy="block")
            await queue.put_tuples(None, self.records(1), None)
            queue.close()
            assert (await queue.get()) is not None  # drain-on-close
            assert (await queue.get()) is None

        run(scenario())


class TestTenantConfigValidation:
    def test_rejects_unknown_policy_and_bad_bounds(self):
        with pytest.raises(ValueError):
            TenantConfig(policy="yolo")
        with pytest.raises(ValueError):
            TenantConfig(pending_capacity=0)
        with pytest.raises(ValueError):
            TenantConfig(max_connections=0)
        with pytest.raises(ValueError):
            TenantConfig(rate_limit_tuples_per_second=-1)

    def test_session_config_accepts_drop_newest(self):
        config = TenantConfig(
            policy="drop_newest",
            session=SessionConfig(shards=2, backpressure="drop_newest"),
        )
        assert config.session.backpressure == "drop_newest"
