"""SLO burn-rate alerting: rule math, the alert state machine, wiring.

The evaluator runs against a hand-fed sampler with explicit timestamps,
so every firing (and every non-firing) is deterministic.  The session
tests cover the acceptance criterion: a synthetic latency regression
fires exactly the expected alert, and a clean run fires none.
"""

from __future__ import annotations

import logging

import pytest

from repro.api.session import GestureSession, SessionConfig
from repro.observability.slo import (
    ALERTS_LOGGER,
    DEFAULT_RULES,
    Alert,
    BurnRateRule,
    SLO,
    SLOEvaluator,
)
from repro.observability.timeseries import MetricsSampler

HIGH = 'SELECT "high" MATCHING kinect_t(rhand_y > 450);'

#: Short windows so unit tests stay in the few-points regime.
FAST_RULE = BurnRateRule(
    long_window_seconds=10.0, short_window_seconds=2.0, burn_threshold=10.0
)


def feed_gauge(sampler, name, values, start=0.0, step=1.0):
    for index, value in enumerate(values):
        sampler.series(name).append(value, timestamp=start + index * step)


class TestBurnRateRule:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"long_window_seconds": 0.0, "short_window_seconds": 1.0, "burn_threshold": 1.0},
            {"long_window_seconds": 1.0, "short_window_seconds": 2.0, "burn_threshold": 1.0},
            {"long_window_seconds": 2.0, "short_window_seconds": 1.0, "burn_threshold": 0.0},
            {
                "long_window_seconds": 2.0,
                "short_window_seconds": 1.0,
                "burn_threshold": 1.0,
                "severity": "sev1",
            },
        ],
    )
    def test_invalid_rules_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BurnRateRule(**kwargs)

    def test_default_rules_page_before_warn(self):
        assert [rule.severity for rule in DEFAULT_RULES] == ["page", "warn"]
        assert DEFAULT_RULES[0].burn_threshold > DEFAULT_RULES[1].burn_threshold


class TestSLOValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": "", "series": "s"},
            {"name": "x", "series": "s", "objective": 1.0},
            {"name": "x", "series": "s", "objective": 0.0},
            {"name": "x", "series": "s", "kind": "budget"},
            {"name": "x", "series": "s", "kind": "ratio"},  # no denominator
            {"name": "x", "series": "s", "rules": ()},
        ],
    )
    def test_invalid_slos_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SLO(**kwargs)

    def test_budget_is_one_minus_objective(self):
        assert SLO(name="x", series="s", objective=0.99).budget == pytest.approx(0.01)

    def test_duplicate_names_rejected_by_evaluator(self):
        slo = SLO.latency("p99", "s", 0.1)
        with pytest.raises(ValueError):
            SLOEvaluator((slo, SLO.latency("p99", "other", 0.2)))


class TestErrorRate:
    def test_threshold_kind_counts_bad_fraction(self):
        sampler = MetricsSampler()
        slo = SLO.latency("p99", "lat", threshold_seconds=0.05)
        feed_gauge(sampler, "lat", [0.01, 0.09, 0.01, 0.09], start=0.0)
        assert slo.error_rate(sampler, 10.0, now=3.0) == pytest.approx(0.5)
        assert slo.burn_rate(sampler, 10.0, now=3.0) == pytest.approx(50.0)

    def test_threshold_kind_no_data_is_clean(self):
        sampler = MetricsSampler()
        slo = SLO.latency("p99", "lat", threshold_seconds=0.05)
        assert slo.error_rate(sampler, 10.0, now=3.0) == 0.0

    def test_ratio_kind_uses_counter_deltas(self):
        sampler = MetricsSampler()
        slo = SLO.ratio("drops", "bad_total", "all_total", objective=0.999)
        feed_gauge(sampler, "bad_total", [0.0, 1.0, 2.0])
        feed_gauge(sampler, "all_total", [0.0, 100.0, 200.0])
        assert slo.error_rate(sampler, 10.0, now=2.0) == pytest.approx(0.01)
        assert slo.burn_rate(sampler, 10.0, now=2.0) == pytest.approx(10.0)

    def test_ratio_kind_zero_denominator_is_clean(self):
        sampler = MetricsSampler()
        slo = SLO.ratio("drops", "bad_total", "all_total")
        feed_gauge(sampler, "bad_total", [0.0, 5.0])
        feed_gauge(sampler, "all_total", [100.0, 100.0])
        assert slo.error_rate(sampler, 10.0, now=1.0) == 0.0


class TestEvaluatorStateMachine:
    def make(self, objective=0.99):
        slo = SLO.latency(
            "p99", "lat", threshold_seconds=0.05, objective=objective, rules=(FAST_RULE,)
        )
        return SLOEvaluator((slo,)), MetricsSampler()

    def test_clean_run_fires_nothing(self):
        evaluator, sampler = self.make()
        feed_gauge(sampler, "lat", [0.01] * 12)
        for now in range(12):
            assert evaluator.evaluate(sampler, now=float(now)) == []
        assert evaluator.alerts() == []
        assert evaluator.active() == []
        assert evaluator.evaluations == 12

    def test_sustained_regression_fires_exactly_once(self):
        evaluator, sampler = self.make()
        feed_gauge(sampler, "lat", [0.2] * 12)
        fired = []
        for now in range(12):
            fired.extend(evaluator.evaluate(sampler, now=float(now)))
        assert len(fired) == 1
        alert = fired[0]
        assert alert.slo == "p99" and alert.severity == "page"
        assert alert.burn_rate == pytest.approx(100.0)
        assert evaluator.active() == [("p99", "page")]

    def test_single_slow_sample_does_not_page(self):
        # One bad point out of eleven: the long window stays under the
        # 10x threshold even though the short window spikes.
        evaluator, sampler = self.make()
        feed_gauge(sampler, "lat", [0.01] * 10 + [0.2])
        assert evaluator.evaluate(sampler, now=10.0) == []

    def test_alert_rearms_after_recovery(self):
        evaluator, sampler = self.make()
        feed_gauge(sampler, "lat", [0.2] * 4, start=0.0)
        assert len(evaluator.evaluate(sampler, now=3.0)) == 1
        # Recovery: short window all-clean drops the burn below threshold.
        feed_gauge(sampler, "lat", [0.01] * 4, start=20.0)
        assert evaluator.evaluate(sampler, now=23.0) == []
        assert evaluator.active() == []
        # Regression again: a second alert fires.
        feed_gauge(sampler, "lat", [0.2] * 4, start=40.0)
        assert len(evaluator.evaluate(sampler, now=43.0)) == 1
        assert len(evaluator.alerts()) == 2

    def test_alert_log_is_bounded(self):
        slo = SLO.latency("p99", "lat", 0.05, rules=(FAST_RULE,))
        evaluator = SLOEvaluator((slo,), alert_capacity=3)
        sampler = MetricsSampler()
        for cycle in range(5):
            base = cycle * 100.0
            feed_gauge(sampler, "lat", [0.2] * 4, start=base)
            evaluator.evaluate(sampler, now=base + 3.0)
            feed_gauge(sampler, "lat", [0.01] * 4, start=base + 20.0)
            evaluator.evaluate(sampler, now=base + 23.0)
        assert len(evaluator.alerts()) == 3

    def test_alert_to_dict_is_json_shaped(self):
        evaluator, sampler = self.make()
        feed_gauge(sampler, "lat", [0.2] * 4)
        (alert,) = evaluator.evaluate(sampler, now=3.0)
        body = alert.to_dict()
        assert body["slo"] == "p99" and body["severity"] == "page"
        assert body["budget"] == pytest.approx(0.01)
        assert body["long_window_seconds"] == 10.0
        assert isinstance(body["wall_time"], str)

    def test_alert_goes_to_structured_logger(self, caplog):
        evaluator, sampler = self.make()
        feed_gauge(sampler, "lat", [0.2] * 4)
        with caplog.at_level(logging.WARNING, logger=ALERTS_LOGGER):
            evaluator.evaluate(sampler, now=3.0)
        (record,) = caplog.records
        assert record.name == ALERTS_LOGGER
        assert record.data["slo"] == "p99"

    def test_clear_resets_log_and_state(self):
        evaluator, sampler = self.make()
        feed_gauge(sampler, "lat", [0.2] * 4)
        evaluator.evaluate(sampler, now=3.0)
        evaluator.clear()
        assert evaluator.alerts() == [] and evaluator.active() == []


class TestSessionIntegration:
    def run_session(self, threshold_seconds):
        slo = SLO.latency(
            "ingest_p99",
            "hist.ingest_to_detection.p99_seconds",
            threshold_seconds=threshold_seconds,
            rules=(BurnRateRule(5.0, 0.5, 2.0),),
        )
        config = SessionConfig(sample_interval_seconds=0.02, slos=(slo,))
        with GestureSession(config) as session:
            session.deploy(HIGH)
            frames = []
            ts = 0.0
            for round_index in range(40):
                for player in (1, 2, 3):
                    ts += 0.01
                    value = 500.0 if (round_index + player) % 4 < 2 else 50.0
                    frames.append({"ts": ts, "player": player, "rhand_y": value})
            session.feed(frames, stream="kinect_t")
            session.sampler.sample_once()
            session.sampler.sample_once()
            session.slo_evaluator.evaluate(session.sampler)
            alerts = session.alerts
        return alerts

    def test_synthetic_latency_regression_fires_expected_alert(self):
        # An impossible threshold makes every sampled p99 a violation:
        # the synthetic regression must page on exactly this SLO.
        alerts = self.run_session(threshold_seconds=1e-12)
        assert alerts, "sustained regression must fire"
        assert {alert.slo for alert in alerts} == {"ingest_p99"}
        assert alerts[0].severity == "page"

    def test_clean_run_fires_no_alerts(self):
        assert self.run_session(threshold_seconds=30.0) == []
