"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.cep.expressions import abs_diff_predicate
from repro.cep.parser import parse_expression, parse_query
from repro.core.distance import EuclideanDistance, ManhattanDistance
from repro.core.merging import align_centers
from repro.core.sampling import DistanceBasedSampler, SamplingConfig
from repro.core.windows import Window
from repro.evaluation.metrics import LatencyStats, f1_score, precision, recall
from repro.transform.coordinate import scale_coordinates, shift_to_torso
from repro.transform.rotation import rotate_about_y

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

coordinate = st.floats(min_value=-2000.0, max_value=2000.0,
                       allow_nan=False, allow_infinity=False)
positive_width = st.floats(min_value=1.0, max_value=500.0,
                           allow_nan=False, allow_infinity=False)

point_xyz = st.fixed_dictionaries(
    {"rhand_x": coordinate, "rhand_y": coordinate, "rhand_z": coordinate}
)


@st.composite
def windows(draw):
    fields = draw(st.lists(st.sampled_from(["rhand_x", "rhand_y", "rhand_z", "lhand_x"]),
                           min_size=1, max_size=4, unique=True))
    center = {name: draw(coordinate) for name in fields}
    width = {name: draw(positive_width) for name in fields}
    return Window(center=center, width=width)


@st.composite
def paths(draw):
    """A monotone 1D movement path with timestamps at 30 Hz."""
    steps = draw(st.lists(st.floats(min_value=0.0, max_value=60.0,
                                    allow_nan=False, allow_infinity=False),
                          min_size=2, max_size=120))
    frames = []
    position = 0.0
    for index, step in enumerate(steps):
        position += step
        frames.append({"rhand_x": position, "rhand_y": 0.0, "rhand_z": 0.0,
                       "ts": index / 30.0})
    return frames


# ---------------------------------------------------------------------------
# Window invariants
# ---------------------------------------------------------------------------


@given(windows())
def test_window_center_is_always_contained(window):
    assert window.contains(window.center)


@given(windows(), st.floats(min_value=1.01, max_value=5.0))
def test_scaling_up_never_loses_points(window, factor):
    scaled = window.scaled(factor)
    # Any point inside the original window stays inside the scaled window.
    assert scaled.contains(window.center)
    for name in window.center:
        edge_point = dict(window.center)
        edge_point[name] = window.center[name] + 0.99 * window.width[name]
        assert scaled.contains(edge_point)


@given(windows(), windows())
def test_merged_window_covers_both_extents(first, second):
    merged = first.merged_with(second)
    for window in (first, second):
        for name in window.center:
            assert merged.lower(name) <= window.lower(name) + 1e-9
            assert merged.upper(name) >= window.upper(name) - 1e-9
            assert merged.lower(name) < window.center[name] < merged.upper(name)


@given(windows())
def test_intersection_with_self_is_full(window):
    assert window.intersects(window)
    assert window.intersection_volume_ratio(window) == 1.0


@given(windows(), windows())
def test_intersects_is_symmetric(first, second):
    assert first.intersects(second) == second.intersects(first)


@given(st.lists(point_xyz, min_size=1, max_size=30))
def test_mbr_from_points_contains_midpoints(points):
    window = Window.from_points(points, fields=["rhand_x", "rhand_y", "rhand_z"],
                                min_width=1.0)
    for point in points:
        # from_points uses half-extents; every source point is within the MBR
        # bounds (inclusive), so distance_from must report (near) zero excess.
        assert window.distance_from(point) <= 1e-9


@given(windows(), point_xyz)
def test_distance_from_zero_iff_contained(window, point):
    point = {name: point.get(name, 0.0) for name in window.center}
    if window.contains(point):
        assert window.distance_from(point) == 0.0
    else:
        assert window.distance_from(point) >= 0.0


# ---------------------------------------------------------------------------
# Predicate generation invariants
# ---------------------------------------------------------------------------


@given(coordinate, positive_width, coordinate)
def test_abs_diff_predicate_equivalent_to_window_check(center, width, value):
    expression = abs_diff_predicate("rhand_x", center, width)
    expected = abs(value - center) < width
    assert expression.evaluate({"rhand_x": value}) == expected


@given(coordinate, positive_width)
def test_generated_predicate_text_parses_back(center, width):
    expression = abs_diff_predicate("rhand_x", round(center, 3), round(width, 3) + 1.0)
    reparsed = parse_expression(expression.to_query())
    for value in (center - width, center, center + width / 2.0):
        assert reparsed.evaluate({"rhand_x": value}) == expression.evaluate({"rhand_x": value})


# ---------------------------------------------------------------------------
# Distance metric invariants
# ---------------------------------------------------------------------------


@given(point_xyz, point_xyz)
def test_euclidean_is_symmetric_and_nonnegative(first, second):
    metric = EuclideanDistance(["rhand_x", "rhand_y", "rhand_z"])
    assert metric(first, second) >= 0.0
    assert math.isclose(metric(first, second), metric(second, first), rel_tol=1e-9)


@given(point_xyz)
def test_distance_to_self_is_zero(point):
    metric = EuclideanDistance(["rhand_x", "rhand_y", "rhand_z"])
    assert metric(point, point) == 0.0


@given(point_xyz, point_xyz, point_xyz)
def test_euclidean_triangle_inequality(a, b, c):
    metric = EuclideanDistance(["rhand_x", "rhand_y", "rhand_z"])
    assert metric(a, c) <= metric(a, b) + metric(b, c) + 1e-6


@given(point_xyz, point_xyz)
def test_manhattan_upper_bounds_euclidean(first, second):
    fields = ["rhand_x", "rhand_y", "rhand_z"]
    assert ManhattanDistance(fields)(first, second) >= EuclideanDistance(fields)(first, second) - 1e-9


# ---------------------------------------------------------------------------
# Sampling invariants
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(paths(), st.floats(min_value=0.05, max_value=0.5))
def test_sampling_pose_count_bounds(frames, threshold):
    sampler = DistanceBasedSampler(
        SamplingConfig(fields=("rhand_x", "rhand_y", "rhand_z"),
                       relative_threshold=threshold)
    )
    sampled = sampler.sample(frames)
    assert 1 <= sampled.pose_count <= len(frames)
    # Sequence indices are consecutive and ordered.
    assert [p.sequence_index for p in sampled.points] == list(range(sampled.pose_count))
    # Pose centres never leave the observed coordinate range.
    xs = [frame["rhand_x"] for frame in frames]
    for point in sampled.points:
        assert min(xs) - 1e-6 <= point.center["rhand_x"] <= max(xs) + 1e-6


@settings(max_examples=50, deadline=None)
@given(paths())
def test_sampling_threshold_monotonicity(frames):
    """A larger threshold never yields more characteristic points."""
    fields = ("rhand_x", "rhand_y", "rhand_z")
    fine = DistanceBasedSampler(SamplingConfig(fields=fields, relative_threshold=0.05))
    coarse = DistanceBasedSampler(SamplingConfig(fields=fields, relative_threshold=0.4))
    assert coarse.sample(frames).pose_count <= fine.sample(frames).pose_count


@given(st.lists(st.fixed_dictionaries({"x": coordinate}), min_size=1, max_size=20),
       st.integers(min_value=1, max_value=25))
def test_align_centers_length_and_endpoints(centers, target):
    aligned = align_centers(centers, target)
    assert len(aligned) == target
    assert aligned[0]["x"] == centers[0]["x"]
    if target >= 2:
        # With at least two target positions the last aligned point must land
        # on the last source centroid (target == 1 keeps only the first).
        assert math.isclose(aligned[-1]["x"], centers[-1]["x"], rel_tol=1e-9, abs_tol=1e-9)
    # Aligned values never leave the source range (linear interpolation).
    xs = [c["x"] for c in centers]
    for point in aligned:
        assert min(xs) - 1e-9 <= point["x"] <= max(xs) + 1e-9


# ---------------------------------------------------------------------------
# Transformation invariants
# ---------------------------------------------------------------------------


@given(point_xyz, coordinate, coordinate, coordinate)
def test_torso_shift_is_translation_invariant(hand, dx, dy, dz):
    frame = {
        "torso_x": 0.0, "torso_y": 0.0, "torso_z": 0.0,
        "rhand_x": hand["rhand_x"], "rhand_y": hand["rhand_y"], "rhand_z": hand["rhand_z"],
    }
    moved = {key: value + {"_x": dx, "_y": dy, "_z": dz}[key[-2:]] for key, value in frame.items()}
    original = shift_to_torso(frame)
    shifted = shift_to_torso(moved)
    for axis in ("x", "y", "z"):
        assert math.isclose(
            original[f"rhand_{axis}"], shifted[f"rhand_{axis}"], rel_tol=1e-9, abs_tol=1e-6
        )


@given(point_xyz, st.floats(min_value=-180.0, max_value=180.0,
                            allow_nan=False, allow_infinity=False))
def test_rotation_preserves_distance_from_origin(point, angle):
    rotated = rotate_about_y(point, angle)
    original_norm = math.sqrt(sum(value * value for value in point.values()))
    rotated_norm = math.sqrt(sum(rotated[k] ** 2 for k in point))
    assert math.isclose(original_norm, rotated_norm, rel_tol=1e-9, abs_tol=1e-6)


@given(point_xyz, st.floats(min_value=50.0, max_value=500.0))
def test_scaling_preserves_ratios(point, scale):
    scaled = scale_coordinates(point, scale, reference=100.0)
    for key, value in point.items():
        assert math.isclose(scaled[key], value * 100.0 / scale, rel_tol=1e-9)


# ---------------------------------------------------------------------------
# Metric invariants
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=1000), st.integers(min_value=0, max_value=1000),
       st.integers(min_value=0, max_value=1000))
def test_precision_recall_f1_ranges(tp, fp, fn):
    p = precision(tp, fp)
    r = recall(tp, fn)
    f = f1_score(p, r)
    assert 0.0 <= p <= 1.0
    assert 0.0 <= r <= 1.0
    assert 0.0 <= f <= 1.0
    assert f <= max(p, r) + 1e-9


@given(st.lists(st.floats(min_value=0.0, max_value=10.0,
                          allow_nan=False, allow_infinity=False), min_size=1, max_size=200))
def test_latency_percentiles_are_ordered(samples):
    stats = LatencyStats(samples=list(samples))
    tolerance = 1e-9
    assert stats.minimum <= stats.p50 + tolerance
    assert stats.p50 <= stats.p95 + tolerance
    assert stats.p95 <= stats.p99 + tolerance
    assert stats.p99 <= stats.maximum + tolerance
    assert stats.minimum <= stats.mean + tolerance
    assert stats.mean <= stats.maximum + tolerance


# ---------------------------------------------------------------------------
# Parser round-trip on generated queries
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(coordinate, positive_width), min_size=1, max_size=5),
       st.floats(min_value=0.5, max_value=5.0))
def test_query_round_trip_preserves_structure(poses, within):
    from repro.cep.expressions import BooleanOp
    from repro.cep.query import EventPattern, Query, SequencePattern

    events = [
        EventPattern(
            stream="kinect_t",
            predicate=BooleanOp.conjunction([
                abs_diff_predicate("rhand_x", round(center, 1), round(width, 1) + 1.0),
                abs_diff_predicate("rhand_y", round(center / 2, 1), round(width, 1) + 1.0),
            ]),
        )
        for center, width in poses
    ]
    query = Query(output="gesture", pattern=SequencePattern(
        elements=tuple(events), within_seconds=round(within, 2)))
    reparsed = parse_query(query.to_query())
    assert reparsed.event_count() == len(poses)
    assert reparsed.predicate_count() == 2 * len(poses)
    assert math.isclose(reparsed.pattern.within_seconds, round(within, 2), rel_tol=1e-9)
