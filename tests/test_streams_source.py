"""Unit tests for repro.streams.source."""

import pytest

from repro.streams.clock import SimulatedClock
from repro.streams.source import (
    CallableSource,
    GeneratorSource,
    RateLimiter,
    ReplaySource,
)
from repro.streams.stream import Stream


class TestReplaySource:
    def test_replays_all_records(self):
        stream = Stream("s")
        received = []
        stream.subscribe(received.append)
        source = ReplaySource(stream, [{"ts": 0.0}, {"ts": 0.1}])
        assert source.run() == 2
        assert len(received) == 2

    def test_limit_stops_early(self):
        stream = Stream("s")
        source = ReplaySource(stream, [{"ts": i / 10} for i in range(10)])
        assert source.run(limit=3) == 3

    def test_advances_simulated_clock_to_timestamps(self):
        clock = SimulatedClock()
        stream = Stream("s")
        source = ReplaySource(stream, [{"ts": 0.5}, {"ts": 1.25}], clock=clock)
        source.run()
        assert clock.now() == pytest.approx(1.25)

    def test_does_not_advance_clock_when_disabled(self):
        clock = SimulatedClock()
        stream = Stream("s")
        ReplaySource(stream, [{"ts": 5.0}], clock=clock, advance_clock=False).run()
        assert clock.now() == 0.0

    def test_can_be_replayed_twice(self):
        stream = Stream("s")
        source = ReplaySource(stream, [{"ts": 0.0}], advance_clock=False)
        assert source.run() == 1
        assert source.run() == 1
        assert source.emitted == 2

    def test_len_reports_record_count(self):
        source = ReplaySource(Stream("s"), [{"ts": 0.0}] * 4)
        assert len(source) == 4


class TestGeneratorSource:
    def test_consumes_iterable(self):
        stream = Stream("s")
        received = []
        stream.subscribe(received.append)
        source = GeneratorSource(stream, ({"i": i} for i in range(5)))
        assert source.run() == 5
        assert received[-1] == {"i": 4}


class TestCallableSource:
    def test_stops_when_producer_returns_none(self):
        stream = Stream("s")
        values = iter([{"a": 1}, {"a": 2}, None])
        source = CallableSource(stream, lambda now: next(values))
        assert source.run() == 2

    def test_respects_max_items(self):
        stream = Stream("s")
        source = CallableSource(stream, lambda now: {"a": 1}, max_items=7)
        assert source.run() == 7


class TestRateLimiter:
    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            RateLimiter(SimulatedClock(), frequency_hz=0)

    def test_advances_simulated_clock_at_frame_period(self):
        clock = SimulatedClock()
        limiter = RateLimiter(clock, frequency_hz=30.0)
        limiter.wait()  # first call anchors the limiter
        for _ in range(30):
            limiter.wait()
        assert clock.now() == pytest.approx(1.0, abs=1e-6)

    def test_reset_reanchors(self):
        clock = SimulatedClock()
        limiter = RateLimiter(clock, frequency_hz=10.0)
        limiter.wait()
        limiter.wait()
        limiter.reset()
        before = clock.now()
        limiter.wait()
        assert clock.now() == before
