"""Unit tests for repro.cep.expressions and repro.cep.udf."""


import pytest

from repro.cep.expressions import (
    BinaryOp,
    BooleanOp,
    Comparison,
    FieldRef,
    FunctionCall,
    Literal,
    NotOp,
    UnaryMinus,
    abs_diff_predicate,
)
from repro.cep.udf import FunctionRegistry, default_functions
from repro.errors import ExpressionError, UnknownFunctionError


class TestLeaves:
    def test_literal_evaluates_to_itself(self):
        assert Literal(5).evaluate({}) == 5
        assert Literal("hi").evaluate({}) == "hi"
        assert Literal(True).evaluate({}) is True

    def test_literal_rendering(self):
        assert Literal(5).to_query() == "5"
        assert Literal(5.0).to_query() == "5"
        assert Literal(2.5).to_query() == "2.5"
        assert Literal("swipe").to_query() == '"swipe"'
        assert Literal(True).to_query() == "true"

    def test_field_ref_reads_record(self):
        assert FieldRef("rhand_x").evaluate({"rhand_x": 7.5}) == 7.5

    def test_field_ref_missing_field_raises(self):
        with pytest.raises(ExpressionError, match="rhand_x"):
            FieldRef("rhand_x").evaluate({"other": 1})

    def test_field_ref_requires_name(self):
        with pytest.raises(ExpressionError):
            FieldRef("")

    def test_fields_of_leaves(self):
        assert Literal(1).fields() == frozenset()
        assert FieldRef("a").fields() == frozenset({"a"})


class TestArithmetic:
    def test_basic_operations(self):
        record = {"a": 10.0, "b": 4.0}
        assert BinaryOp("+", FieldRef("a"), FieldRef("b")).evaluate(record) == 14.0
        assert BinaryOp("-", FieldRef("a"), FieldRef("b")).evaluate(record) == 6.0
        assert BinaryOp("*", FieldRef("a"), FieldRef("b")).evaluate(record) == 40.0
        assert BinaryOp("/", FieldRef("a"), FieldRef("b")).evaluate(record) == 2.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExpressionError):
            BinaryOp("/", Literal(1), Literal(0)).evaluate({})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            BinaryOp("%", Literal(1), Literal(2))

    def test_unary_minus(self):
        assert UnaryMinus(FieldRef("a")).evaluate({"a": 3.0}) == -3.0
        assert UnaryMinus(Literal(2)).to_query() == "-2"

    def test_rendering_of_nested_arithmetic(self):
        expr = BinaryOp("*", BinaryOp("+", FieldRef("a"), Literal(1)), Literal(2))
        assert expr.to_query() == "(a + 1) * 2"

    def test_fields_are_unioned(self):
        expr = BinaryOp("+", FieldRef("a"), BinaryOp("-", FieldRef("b"), FieldRef("c")))
        assert expr.fields() == frozenset({"a", "b", "c"})


class TestComparisonsAndBoolean:
    def test_all_comparison_operators(self):
        record = {"x": 5.0}
        assert Comparison("<", FieldRef("x"), Literal(10)).evaluate(record)
        assert Comparison("<=", FieldRef("x"), Literal(5)).evaluate(record)
        assert Comparison(">", FieldRef("x"), Literal(1)).evaluate(record)
        assert Comparison(">=", FieldRef("x"), Literal(5)).evaluate(record)
        assert Comparison("==", FieldRef("x"), Literal(5)).evaluate(record)
        assert Comparison("!=", FieldRef("x"), Literal(4)).evaluate(record)

    def test_sql_style_aliases(self):
        assert Comparison("=", Literal(1), Literal(1)).operator == "=="
        assert Comparison("<>", Literal(1), Literal(2)).operator == "!="

    def test_predicate_count_counts_comparisons(self):
        single = Comparison("<", FieldRef("x"), Literal(1))
        conj = BooleanOp("and", [single, single, single])
        assert single.predicate_count() == 1
        assert conj.predicate_count() == 3

    def test_and_or_not(self):
        record = {"x": 5.0}
        true_cmp = Comparison("<", FieldRef("x"), Literal(10))
        false_cmp = Comparison(">", FieldRef("x"), Literal(10))
        assert BooleanOp("and", [true_cmp, true_cmp]).evaluate(record)
        assert not BooleanOp("and", [true_cmp, false_cmp]).evaluate(record)
        assert BooleanOp("or", [false_cmp, true_cmp]).evaluate(record)
        assert NotOp(false_cmp).evaluate(record)

    def test_boolean_requires_operands(self):
        with pytest.raises(ExpressionError):
            BooleanOp("and", [])

    def test_conjunction_helper_flattens(self):
        assert BooleanOp.conjunction([]).evaluate({}) is True
        single = Comparison("<", Literal(1), Literal(2))
        assert BooleanOp.conjunction([single]) is single
        assert isinstance(BooleanOp.conjunction([single, single]), BooleanOp)

    def test_mixed_boolean_rendering_parenthesises(self):
        a = Comparison("<", FieldRef("a"), Literal(1))
        b = Comparison("<", FieldRef("b"), Literal(1))
        expr = BooleanOp("and", [a, BooleanOp("or", [a, b])])
        assert "(" in expr.to_query()

    def test_equality_and_hash_by_rendering(self):
        first = Comparison("<", FieldRef("a"), Literal(1))
        second = Comparison("<", FieldRef("a"), Literal(1))
        assert first == second
        assert hash(first) == hash(second)


class TestFunctions:
    def test_abs_builtin(self):
        expr = FunctionCall("abs", [BinaryOp("-", FieldRef("x"), Literal(10))])
        assert expr.evaluate({"x": 3.0}) == 7.0

    def test_dist_builtin(self):
        expr = FunctionCall(
            "dist", [Literal(0), Literal(0), Literal(0), Literal(3), Literal(4), Literal(0)]
        )
        assert expr.evaluate({}) == pytest.approx(5.0)

    def test_unknown_function_raises(self):
        with pytest.raises(UnknownFunctionError):
            FunctionCall("frobnicate", []).evaluate({})

    def test_custom_registry_takes_precedence(self):
        registry = default_functions()
        registry.register("double", lambda value: value * 2, arity=1)
        expr = FunctionCall("double", [Literal(21)])
        assert expr.evaluate({}, registry) == 42

    def test_arity_checking(self):
        registry = FunctionRegistry()
        registry.register("f", lambda a, b: a + b, arity=2)
        with pytest.raises(ExpressionError):
            registry.call("f", [1])

    def test_registry_copy_is_independent(self):
        registry = default_functions()
        clone = registry.copy()
        clone.register("extra", lambda: 1, arity=0)
        assert clone.has("extra")
        assert not registry.has("extra")

    def test_rpy_functions_registered(self):
        registry = default_functions()
        assert registry.call("pitch", [0, 0, 0, 0, 1, 0]) == pytest.approx(90.0)
        assert registry.call("yaw", [0, 0, 0, 0, 0, -1]) == pytest.approx(90.0)
        assert registry.call("roll", [0, 0, 0, 1, 0, 0]) == 0.0

    def test_function_rendering(self):
        expr = FunctionCall("abs", [FieldRef("x")])
        assert expr.to_query() == "abs(x)"


class TestAbsDiffPredicate:
    def test_matches_paper_rendering_for_positive_center(self):
        expr = abs_diff_predicate("rhand_x", 400.0, 50.0)
        assert expr.to_query() == "abs(rhand_x - 400) < 50"

    def test_matches_paper_rendering_for_negative_center(self):
        expr = abs_diff_predicate("rhand_z", -120.0, 50.0)
        assert expr.to_query() == "abs(rhand_z + 120) < 50"

    def test_zero_center_renders_minus_zero(self):
        assert abs_diff_predicate("rhand_x", 0.0, 50.0).to_query() == "abs(rhand_x - 0) < 50"

    def test_evaluation_semantics(self):
        expr = abs_diff_predicate("rhand_x", 400.0, 50.0)
        assert expr.evaluate({"rhand_x": 430.0})
        assert not expr.evaluate({"rhand_x": 460.0})

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ExpressionError):
            abs_diff_predicate("x", 0.0, 0.0)
