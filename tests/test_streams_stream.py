"""Unit tests for repro.streams.stream."""

import pytest

from repro.errors import QueryRegistrationError, SchemaError, UnknownStreamError
from repro.streams.stream import Stream, StreamRegistry


class TestStream:
    def test_requires_a_name(self):
        with pytest.raises(ValueError):
            Stream("")

    def test_push_delivers_to_subscriber(self):
        stream = Stream("s")
        received = []
        stream.subscribe(received.append)
        stream.push({"a": 1})
        assert received == [{"a": 1}]

    def test_push_delivers_to_all_subscribers_in_order(self):
        stream = Stream("s")
        order = []
        stream.subscribe(lambda item: order.append("first"))
        stream.subscribe(lambda item: order.append("second"))
        stream.push({})
        assert order == ["first", "second"]

    def test_unsubscribe_stops_delivery(self):
        stream = Stream("s")
        received = []
        subscription = stream.subscribe(received.append)
        subscription.cancel()
        stream.push({"a": 1})
        assert received == []

    def test_subscriber_can_unsubscribe_during_delivery(self):
        stream = Stream("s")
        received = []
        subscription = stream.subscribe(lambda item: subscription.cancel())
        stream.subscribe(received.append)
        stream.push({"a": 1})
        stream.push({"a": 2})
        assert len(received) == 2

    def test_required_fields_are_enforced(self):
        stream = Stream("s", fields=["ts", "x"])
        with pytest.raises(SchemaError):
            stream.push({"ts": 0.0})

    def test_extra_fields_are_allowed(self):
        stream = Stream("s", fields=["ts"])
        stream.push({"ts": 0.0, "extra": 1})
        assert stream.stats.pushed == 1

    def test_pause_drops_tuples(self):
        stream = Stream("s")
        received = []
        stream.subscribe(received.append)
        stream.pause()
        stream.push({"a": 1})
        stream.resume()
        stream.push({"a": 2})
        assert received == [{"a": 2}]
        assert stream.stats.dropped == 1

    def test_stats_count_pushes_and_deliveries(self):
        stream = Stream("s")
        stream.subscribe(lambda item: None)
        stream.subscribe(lambda item: None)
        stream.push({})
        stream.push({})
        assert stream.stats.pushed == 2
        assert stream.stats.delivered == 4

    def test_stats_reset(self):
        stream = Stream("s")
        stream.push({})
        stream.stats.reset()
        assert stream.stats.pushed == 0

    def test_push_many_returns_count(self):
        stream = Stream("s")
        assert stream.push_many([{}, {}, {}]) == 3

    def test_subscriber_count(self):
        stream = Stream("s")
        assert stream.subscriber_count == 0
        stream.subscribe(lambda item: None)
        assert stream.subscriber_count == 1


class TestStreamRegistry:
    def test_create_and_get(self):
        registry = StreamRegistry()
        stream = registry.create("kinect")
        assert registry.get("kinect") is stream

    def test_duplicate_registration_fails(self):
        registry = StreamRegistry()
        registry.create("kinect")
        with pytest.raises(QueryRegistrationError):
            registry.create("kinect")

    def test_unknown_stream_raises_with_available_names(self):
        registry = StreamRegistry()
        registry.create("kinect")
        with pytest.raises(UnknownStreamError, match="kinect"):
            registry.get("missing")

    def test_contains_and_names(self):
        registry = StreamRegistry()
        registry.create("b")
        registry.create("a")
        assert "a" in registry
        assert registry.names() == ["a", "b"]
        assert len(registry) == 2

    def test_remove_is_idempotent(self):
        registry = StreamRegistry()
        registry.create("a")
        registry.remove("a")
        registry.remove("a")
        assert "a" not in registry
