"""Unit tests for repro.streams.stream."""

import pytest

from repro.errors import QueryRegistrationError, SchemaError, UnknownStreamError
from repro.streams.stream import Stream, StreamRegistry


class TestStream:
    def test_requires_a_name(self):
        with pytest.raises(ValueError):
            Stream("")

    def test_push_delivers_to_subscriber(self):
        stream = Stream("s")
        received = []
        stream.subscribe(received.append)
        stream.push({"a": 1})
        assert received == [{"a": 1}]

    def test_push_delivers_to_all_subscribers_in_order(self):
        stream = Stream("s")
        order = []
        stream.subscribe(lambda item: order.append("first"))
        stream.subscribe(lambda item: order.append("second"))
        stream.push({})
        assert order == ["first", "second"]

    def test_unsubscribe_stops_delivery(self):
        stream = Stream("s")
        received = []
        subscription = stream.subscribe(received.append)
        subscription.cancel()
        stream.push({"a": 1})
        assert received == []

    def test_subscriber_can_unsubscribe_during_delivery(self):
        stream = Stream("s")
        received = []
        subscription = stream.subscribe(lambda item: subscription.cancel())
        stream.subscribe(received.append)
        stream.push({"a": 1})
        stream.push({"a": 2})
        assert len(received) == 2

    def test_required_fields_are_enforced(self):
        stream = Stream("s", fields=["ts", "x"])
        with pytest.raises(SchemaError):
            stream.push({"ts": 0.0})

    def test_extra_fields_are_allowed(self):
        stream = Stream("s", fields=["ts"])
        stream.push({"ts": 0.0, "extra": 1})
        assert stream.stats.pushed == 1

    def test_pause_drops_tuples(self):
        stream = Stream("s")
        received = []
        stream.subscribe(received.append)
        stream.pause()
        stream.push({"a": 1})
        stream.resume()
        stream.push({"a": 2})
        assert received == [{"a": 2}]
        assert stream.stats.dropped == 1

    def test_stats_count_pushes_and_deliveries(self):
        stream = Stream("s")
        stream.subscribe(lambda item: None)
        stream.subscribe(lambda item: None)
        stream.push({})
        stream.push({})
        assert stream.stats.pushed == 2
        assert stream.stats.delivered == 4

    def test_stats_reset(self):
        stream = Stream("s")
        stream.push({})
        stream.stats.reset()
        assert stream.stats.pushed == 0

    def test_push_many_returns_count(self):
        stream = Stream("s")
        assert stream.push_many([{}, {}, {}]) == 3

    def test_subscriber_count(self):
        stream = Stream("s")
        assert stream.subscriber_count == 0
        stream.subscribe(lambda item: None)
        assert stream.subscriber_count == 1


class TestPushBatch:
    def test_batch_subscriber_receives_the_whole_chunk_once(self):
        stream = Stream("s")
        chunks = []
        stream.subscribe(lambda item: None, batch_callback=chunks.append)
        assert stream.push_batch([{"a": 1}, {"a": 2}]) == 2
        assert chunks == [[{"a": 1}, {"a": 2}]]

    def test_per_tuple_subscribers_still_get_each_item(self):
        stream = Stream("s")
        received = []
        stream.subscribe(received.append)
        stream.push_batch([{"a": 1}, {"a": 2}])
        assert received == [{"a": 1}, {"a": 2}]

    def test_mixed_subscribers_see_the_same_tuples(self):
        stream = Stream("s")
        chunks, singles = [], []
        stream.subscribe(lambda item: None, batch_callback=chunks.append)
        stream.subscribe(singles.append)
        stream.push_batch([{"a": 1}, {"a": 2}, {"a": 3}])
        assert chunks[0] == singles

    def test_batch_stats_and_pause(self):
        stream = Stream("s")
        stream.subscribe(lambda item: None, batch_callback=lambda chunk: None)
        stream.subscribe(lambda item: None)
        stream.push_batch([{}, {}])
        assert stream.stats.pushed == 2
        assert stream.stats.delivered == 4
        stream.pause()
        assert stream.push_batch([{}, {}, {}]) == 0
        assert stream.stats.dropped == 3

    def test_batch_schema_validation_rejects_bad_tuples(self):
        stream = Stream("s", fields=["ts"])
        received = []
        stream.subscribe(received.append)
        with pytest.raises(SchemaError):
            stream.push_batch([{"ts": 0.0}, {"other": 1}])
        # The whole chunk is validated before any delivery happens.
        assert received == []

    def test_empty_batch_is_a_no_op(self):
        stream = Stream("s")
        stream.subscribe(lambda item: None)
        assert stream.push_batch([]) == 0
        assert stream.stats.pushed == 0


class TestStreamRegistry:
    def test_create_and_get(self):
        registry = StreamRegistry()
        stream = registry.create("kinect")
        assert registry.get("kinect") is stream

    def test_duplicate_registration_fails(self):
        registry = StreamRegistry()
        registry.create("kinect")
        with pytest.raises(QueryRegistrationError):
            registry.create("kinect")

    def test_unknown_stream_raises_with_available_names(self):
        registry = StreamRegistry()
        registry.create("kinect")
        with pytest.raises(UnknownStreamError, match="kinect"):
            registry.get("missing")

    def test_contains_and_names(self):
        registry = StreamRegistry()
        registry.create("b")
        registry.create("a")
        assert "a" in registry
        assert registry.names() == ["a", "b"]
        assert len(registry) == 2

    def test_remove_is_idempotent(self):
        registry = StreamRegistry()
        registry.create("a")
        registry.remove("a")
        registry.remove("a")
        assert "a" not in registry
