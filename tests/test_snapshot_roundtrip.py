"""Snapshot round-trips: capture → JSON → restore → identical behaviour.

The matrix covers the matcher execution paths (interpreted vs compiled
predicates, per-tuple vs batched delivery) and both partitioning modes
(per-player and global run tables).  "Identical" is asserted the strong
way: after restoring into a fresh engine, feeding the *same subsequent
tuples* to the original and the restored stack must produce byte-identical
detection state — partial matches survive the round-trip, not just
finished results.
"""

from __future__ import annotations

import json

import pytest

from repro.api import DurabilityConfig, F, GestureSession, Q, SessionConfig
from repro.cep import CEPEngine
from repro.cep.matcher import MatcherConfig
from repro.errors import RecoveryError, SessionClosedError, SessionStateError
from repro.streams import SimulatedClock

UP_DOWN = (
    Q.stream("kinect_t")
    .where(F("rhand_y") > 400)
    .then(F("rhand_y") < 150)
    .within(5.0)
    .named("up_down")
)


def frames(count, start=0):
    """Interleaved multi-player frames; odd frames complete the sequence."""
    return [
        {
            "ts": float(i),
            "player": i % 3,
            "rhand_y": 500.0 if i % 2 == 0 else 100.0,
        }
        for i in range(start, start + count)
    ]


def feed(engine, records, batch_size):
    engine.push_many("kinect_t", records, batch_size=batch_size)


def detection_states(engine, name=None):
    return [d.to_state() for d in engine.detections(name)]


class TestEngineRoundTrip:
    @pytest.mark.parametrize("compile_predicates", [True, False])
    @pytest.mark.parametrize("partition_field", ["player", None])
    @pytest.mark.parametrize("batch_size", [None, 4])
    def test_round_trip_preserves_subsequent_detections(
        self, compile_predicates, partition_field, batch_size
    ):
        config = MatcherConfig(
            compile_predicates=compile_predicates, partition_field=partition_field
        )
        original = CEPEngine(clock=SimulatedClock(), matcher_config=config)
        original.register_query(UP_DOWN, name="up_down", create_missing_streams=True)
        # Stop on an even frame: partial matches are in flight per player.
        feed(original, frames(7), batch_size)

        # The snapshot must survive an actual JSON round-trip.
        state = json.loads(json.dumps(original.capture_state()))
        restored = CEPEngine(clock=SimulatedClock(), matcher_config=config)
        restored.restore_state(state)

        assert detection_states(restored) == detection_states(original)
        feed(original, frames(8, start=7), batch_size)
        feed(restored, frames(8, start=7), batch_size)
        assert detection_states(restored) == detection_states(original)
        # The full captured state converges too (run tables, counters).
        after_a = original.capture_state()
        after_b = restored.capture_state()
        assert after_a["queries"] == after_b["queries"]
        assert after_a["tuples_processed"] == after_b["tuples_processed"]

    def test_restore_rejects_wrong_kind(self):
        engine = CEPEngine(clock=SimulatedClock())
        with pytest.raises(Exception):
            engine.restore_state({"kind": "something-else"})


class TestSessionRoundTrip:
    def test_inline_recover_equivalence_with_batched_feed(self, tmp_path):
        live = GestureSession(
            config=SessionConfig(batch_size=4),
            durability=DurabilityConfig(tmp_path),
        )
        live.start()
        live.deploy(UP_DOWN)
        live.feed(frames(7), stream="kinect_t")
        live.snapshot()
        live.feed(frames(8, start=7), stream="kinect_t")
        expected = [d.to_state() for d in live.detections()]
        expected_events = [event.gesture for event in live.events]
        # Crash: the session is dropped without close().

        recovered = GestureSession.recover(
            DurabilityConfig(tmp_path), config=SessionConfig(batch_size=4)
        )
        assert [d.to_state() for d in recovered.detections()] == expected
        assert [event.gesture for event in recovered.events] == expected_events

        # Subsequent detections stay identical on both stacks.
        live.feed(frames(6, start=15), stream="kinect_t")
        recovered.feed(frames(6, start=15), stream="kinect_t")
        assert [d.to_state() for d in recovered.detections()] == [
            d.to_state() for d in live.detections()
        ]
        live.close()
        recovered.close()

    def test_transformer_state_survives_the_snapshot(self, tmp_path, simulator, swipe):
        performance = simulator.perform_variation(swipe)
        live = GestureSession(durability=DurabilityConfig(tmp_path))
        live.start()
        live.feed(performance)  # raw kinect frames drive the kinect_t view
        live.snapshot()
        captured = live.transformer.capture_state()
        assert captured is not None

        recovered = GestureSession.recover(DurabilityConfig(tmp_path))
        assert recovered.transformer.capture_state() == captured
        live.close()
        recovered.close()

    def test_snapshot_requires_durability(self):
        with GestureSession() as session:
            with pytest.raises(SessionStateError):
                session.snapshot()

    def test_feed_after_close_raises_and_close_seals_the_log(self, tmp_path):
        session = GestureSession(durability=DurabilityConfig(tmp_path))
        session.start()
        session.deploy(UP_DOWN)
        session.feed(frames(4), stream="kinect_t")
        manager = session.durability
        session.close()
        session.close()  # idempotent
        assert manager.closed and manager.log.closed
        assert (tmp_path / "manifest.json").exists()
        with pytest.raises(SessionClosedError):
            session.feed(frames(1), stream="kinect_t")

    def test_inline_metrics_cover_durability(self, tmp_path):
        with GestureSession(durability=DurabilityConfig(tmp_path)) as session:
            session.deploy(UP_DOWN)
            session.feed(frames(4), stream="kinect_t")
            session.snapshot()
            snapshot = session.metrics.snapshot()
            assert snapshot["durability"]["entries_appended"] >= 2
            assert snapshot["durability"]["snapshots_taken"] == 1
            json.loads(session.metrics.to_json())  # satellite: serialisable


class TestShardedRoundTrip:
    CONFIG = SessionConfig(shards=4)

    def test_sharded_recover_matches_inline_per_partition(self, tmp_path):
        sharded = GestureSession(
            config=self.CONFIG, durability=DurabilityConfig(tmp_path)
        )
        sharded.start()
        sharded.deploy(UP_DOWN)
        sharded.feed(frames(7), stream="kinect_t")
        sharded.snapshot()
        sharded.feed(frames(8, start=7), stream="kinect_t")
        sharded.drain()
        # Crash: stop the workers without close() (no log seal).
        sharded.runtime.stop(drain=False)
        sharded.runtime.join()

        recovered = GestureSession.recover(DurabilityConfig(tmp_path), config=self.CONFIG)
        recovered.feed(frames(6, start=15), stream="kinect_t")

        with GestureSession() as inline:
            inline.deploy(UP_DOWN)
            inline.feed(frames(21), stream="kinect_t")
            for partition in (0, 1, 2):
                assert [
                    d.to_state() for d in recovered.detections(partition=partition)
                ] == [d.to_state() for d in inline.detections(partition=partition)]
        assert recovered.metrics.snapshot()["durability"]["recoveries"] == 1
        recovered.close()

    def test_topology_mismatch_is_refused(self, tmp_path):
        sharded = GestureSession(
            config=self.CONFIG, durability=DurabilityConfig(tmp_path)
        )
        sharded.start()
        sharded.deploy(UP_DOWN)
        sharded.feed(frames(4), stream="kinect_t")
        sharded.snapshot()
        sharded.close()
        with pytest.raises(RecoveryError, match="topology"):
            GestureSession.recover(
                DurabilityConfig(tmp_path), config=SessionConfig(shards=2)
            )

    def test_sharded_snapshot_survives_json(self, tmp_path):
        session = GestureSession(
            config=self.CONFIG, durability=DurabilityConfig(tmp_path)
        )
        session.start()
        session.deploy(UP_DOWN)
        session.feed(frames(9), stream="kinect_t")
        state = session._capture_session_state()
        round_tripped = json.loads(json.dumps(state))
        assert round_tripped["engine"]["kind"] == "sharded-runtime"
        assert round_tripped["engine"]["router"]["shard_count"] == 4
        session.close()
