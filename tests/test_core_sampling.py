"""Unit tests for distance-based sampling (paper Sec. 3.3.1) and DBSCAN."""

import math

import pytest

from repro.core.clustering import DBSCAN, DBSCANConfig, NOISE
from repro.core.distance import EveryKTuples
from repro.core.sampling import DistanceBasedSampler, SamplingConfig
from repro.errors import EmptySampleError


def _line_path(count=60, step=10.0):
    """A straight-line path along x with one frame per 1/30 s."""
    return [
        {"rhand_x": index * step, "rhand_y": 150.0, "rhand_z": -120.0, "ts": index / 30.0}
        for index in range(count)
    ]


def _sampler(fields=("rhand_x", "rhand_y", "rhand_z"), **kwargs):
    return DistanceBasedSampler(SamplingConfig(fields=tuple(fields), **kwargs))


class TestSamplingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingConfig(fields=("x",), max_dist=0.0)
        with pytest.raises(ValueError):
            SamplingConfig(fields=("x",), relative_threshold=0.0)
        with pytest.raises(ValueError):
            SamplingConfig(fields=("x",), min_cluster_size=0)

    def test_resolve_metric_requires_fields_or_metric(self):
        with pytest.raises(ValueError):
            SamplingConfig().resolve_metric()
        assert SamplingConfig(metric=EveryKTuples()).resolve_metric() is not None


class TestDistanceBasedSampling:
    def test_empty_sample_raises(self):
        with pytest.raises(EmptySampleError):
            _sampler().sample([])

    def test_first_tuple_anchors_the_first_cluster(self):
        path = _line_path()
        sampled = _sampler(max_dist=100.0).sample(path)
        assert sampled.points[0].sequence_index == 0
        assert sampled.points[0].center["rhand_x"] < 100.0

    def test_absolute_threshold_controls_cluster_count(self):
        path = _line_path(count=61, step=10.0)  # 600 mm total
        coarse = _sampler(max_dist=300.0).sample(path)
        fine = _sampler(max_dist=60.0).sample(path)
        assert fine.pose_count > coarse.pose_count
        assert coarse.pose_count >= 2

    def test_relative_threshold_uses_total_deviation(self):
        path = _line_path(count=61, step=10.0)  # total deviation 600 mm
        sampler = _sampler(relative_threshold=0.25)
        assert sampler.resolve_threshold(path) == pytest.approx(150.0)
        sampled = sampler.sample(path)
        assert sampled.threshold_used == pytest.approx(150.0)
        # 600 / 150 -> roughly 4-5 characteristic points.
        assert 3 <= sampled.pose_count <= 6

    def test_more_measures_do_not_change_pose_count_much(self):
        # The same movement recorded at double rate should produce a similar
        # number of characteristic points (the point of distance sampling).
        slow = _line_path(count=31, step=20.0)
        fast = _line_path(count=61, step=10.0)
        sampler = _sampler(relative_threshold=0.2)
        assert abs(sampler.sample(slow).pose_count - sampler.sample(fast).pose_count) <= 1

    def test_stationary_path_collapses_to_one_point(self):
        path = [{"rhand_x": 0.0, "rhand_y": 0.0, "rhand_z": 0.0, "ts": i / 30.0} for i in range(30)]
        sampled = _sampler().sample(path)
        assert sampled.pose_count == 1
        assert sampled.total_deviation == pytest.approx(0.0)

    def test_centers_are_cluster_means(self):
        path = _line_path(count=10, step=10.0)
        sampled = _sampler(max_dist=1000.0).sample(path)
        assert sampled.pose_count == 1
        assert sampled.points[0].center["rhand_x"] == pytest.approx(45.0)

    def test_spread_reflects_cluster_extent(self):
        path = _line_path(count=10, step=10.0)
        sampled = _sampler(max_dist=1000.0).sample(path)
        assert sampled.points[0].spread["rhand_x"] == pytest.approx(45.0)

    def test_cluster_timestamps(self):
        path = _line_path(count=30)
        sampled = _sampler(max_dist=100.0).sample(path)
        first = sampled.points[0]
        assert first.first_ts == pytest.approx(0.0)
        assert first.last_ts > first.first_ts
        assert sampled.duration_s == pytest.approx(29 / 30.0)

    def test_every_k_tuples_metric_gives_time_based_clusters(self):
        path = _line_path(count=30)
        config = SamplingConfig(fields=("ts",), metric=EveryKTuples(), max_dist=9.5)
        sampled = DistanceBasedSampler(config).sample(path)
        # A new cluster every ~10 tuples -> 3 clusters for 30 tuples.
        assert sampled.pose_count == 3

    def test_min_cluster_size_drops_outlier_clusters(self):
        # A single outlier frame in the middle of a stationary recording.
        path = [{"rhand_x": 0.0, "rhand_y": 0.0, "rhand_z": 0.0, "ts": i / 30.0} for i in range(20)]
        path[10] = {"rhand_x": 500.0, "rhand_y": 0.0, "rhand_z": 0.0, "ts": 10 / 30.0}
        loose = _sampler(max_dist=100.0, min_cluster_size=1).sample(path)
        strict = _sampler(max_dist=100.0, min_cluster_size=3).sample(path)
        assert strict.pose_count < loose.pose_count

    def test_sequence_indices_are_consecutive(self):
        sampled = _sampler(relative_threshold=0.1).sample(_line_path())
        assert [p.sequence_index for p in sampled.points] == list(range(sampled.pose_count))

    def test_centers_helper_returns_copies(self):
        sampled = _sampler(max_dist=100.0).sample(_line_path())
        centers = sampled.centers()
        centers[0]["rhand_x"] = 1e9
        assert sampled.points[0].center["rhand_x"] != 1e9


class TestDBSCANBaseline:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DBSCANConfig(eps=0.0)
        with pytest.raises(ValueError):
            DBSCANConfig(eps=1.0, min_samples=0)
        with pytest.raises(ValueError):
            DBSCAN(DBSCANConfig(eps=1.0), fields=[])

    def test_two_well_separated_blobs(self):
        points = [{"x": float(i), "y": 0.0} for i in range(5)]
        points += [{"x": 100.0 + i, "y": 0.0} for i in range(5)]
        dbscan = DBSCAN(DBSCANConfig(eps=3.0, min_samples=3), fields=["x", "y"])
        labels = dbscan.fit(points)
        assert dbscan.cluster_count(labels) == 2
        assert dbscan.noise_count(labels) == 0

    def test_isolated_point_is_noise(self):
        points = [{"x": float(i)} for i in range(5)] + [{"x": 1000.0}]
        dbscan = DBSCAN(DBSCANConfig(eps=2.0, min_samples=3), fields=["x"])
        labels = dbscan.fit(points)
        assert labels[-1] == NOISE

    def test_summaries_report_centroids(self):
        points = [{"x": 0.0}, {"x": 2.0}, {"x": 4.0}]
        dbscan = DBSCAN(DBSCANConfig(eps=3.0, min_samples=2), fields=["x"])
        labels = dbscan.fit(points)
        summaries = dbscan.summarise(points, labels)
        assert len(summaries) == 1
        assert summaries[0].center["x"] == pytest.approx(2.0)
        assert summaries[0].size == 3

    def test_dbscan_loses_pose_ordering_on_closed_paths(self):
        """The motivation for the paper's sequential variant: a circle's start
        and end are spatially identical, so DBSCAN merges them into one
        cluster and the pose *sequence* cannot be recovered."""
        circle = [
            {
                "x": 300.0 * math.cos(2 * math.pi * i / 40),
                "y": 300.0 * math.sin(2 * math.pi * i / 40),
            }
            for i in range(41)  # last point == first point
        ]
        dbscan = DBSCAN(DBSCANConfig(eps=80.0, min_samples=2), fields=["x", "y"])
        labels = dbscan.fit(circle)
        assert labels[0] == labels[-1]
        # The paper's sampler keeps them as distinct first/last poses.
        sampler = DistanceBasedSampler(
            SamplingConfig(fields=("x", "y"), relative_threshold=0.15)
        )
        frames = [dict(point, ts=i / 30.0) for i, point in enumerate(circle)]
        sampled = sampler.sample(frames)
        assert sampled.pose_count >= 4
