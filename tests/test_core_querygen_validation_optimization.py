"""Unit tests for query generation (Sec. 3.3.4), validation and optimisation
(Sec. 3.3.3) and the gesture description model."""

import pytest

from repro.cep.parser import parse_query
from repro.cep.query import ConsumePolicy, SelectPolicy, SequencePattern
from repro.core.description import GestureDescription
from repro.core.optimization import OptimizerConfig, PatternOptimizer
from repro.core.querygen import QueryGenConfig, QueryGenerator
from repro.core.validation import PatternValidator, ValidationConfig
from repro.core.windows import PoseWindow, Window
from repro.errors import QueryGenerationError, ValidationError


def _description(name="swipe_right", centers=(0.0, 400.0, 800.0), width=50.0,
                 extra_fields=None, duration=1.2):
    poses = []
    for index, center in enumerate(centers):
        center_map = {"rhand_x": center, "rhand_y": 150.0, "rhand_z": -120.0}
        width_map = {"rhand_x": width, "rhand_y": width, "rhand_z": width}
        if extra_fields:
            center_map.update(extra_fields)
            width_map.update({key: width for key in extra_fields})
        poses.append(PoseWindow(index, Window(center=center_map, width=width_map)))
    return GestureDescription(
        name=name, poses=poses, joints=["rhand"],
        sample_count=3, mean_duration_s=duration, max_duration_s=duration,
    )


class TestGestureDescription:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            GestureDescription(name="")

    def test_fields_and_predicate_count(self):
        description = _description()
        assert set(description.fields()) == {"rhand_x", "rhand_y", "rhand_z"}
        assert description.predicate_count() == 9

    def test_matches_path_in_order(self):
        description = _description()
        good_path = [{"rhand_x": x, "rhand_y": 150.0, "rhand_z": -120.0} for x in (0, 400, 800)]
        wrong_order = list(reversed(good_path))
        assert description.matches_path(good_path)
        assert not description.matches_path(wrong_order)
        assert not description.matches_path(good_path[:2])

    def test_scaled_copy(self):
        description = _description()
        scaled = description.scaled(2.0)
        assert scaled.poses[0].window.width["rhand_x"] == 100.0
        assert description.poses[0].window.width["rhand_x"] == 50.0

    def test_dict_round_trip(self):
        description = _description()
        restored = GestureDescription.from_dict(description.to_dict())
        assert restored.name == description.name
        assert restored.pose_count == description.pose_count
        assert restored.poses[1].window.center == description.poses[1].window.center


class TestQueryGenerator:
    def test_empty_description_rejected(self):
        empty = GestureDescription(name="empty")
        with pytest.raises(QueryGenerationError):
            QueryGenerator().generate(empty)

    def test_generates_range_predicates_in_paper_form(self):
        text = QueryGenerator().generate_text(_description())
        assert 'SELECT "swipe_right"' in text
        assert "abs(rhand_x - 400) < 50" in text
        assert "abs(rhand_z + 120) < 50" in text
        assert "select first consume all" in text

    def test_generated_text_parses_back_to_same_structure(self):
        query = QueryGenerator().generate(_description())
        reparsed = parse_query(query.to_query())
        assert reparsed.event_count() == 3
        assert reparsed.predicate_count() == 9
        assert reparsed.output == "swipe_right"

    def test_nested_structure_matches_paper(self):
        query = QueryGenerator(QueryGenConfig(nested=True)).generate(_description())
        outer = query.pattern
        assert isinstance(outer, SequencePattern)
        assert len(outer.elements) == 2
        assert isinstance(outer.elements[0], SequencePattern)

    def test_flat_structure_option(self):
        query = QueryGenerator(QueryGenConfig(nested=False)).generate(_description())
        assert len(query.pattern.elements) == 3

    def test_within_derived_from_duration_and_slack(self):
        config = QueryGenConfig(within_slack=2.0, round_within_to=0.5, nested=False)
        query = QueryGenerator(config).generate(_description(duration=1.2))
        assert query.pattern.within_seconds == pytest.approx(2.5)

    def test_within_clamped_to_bounds(self):
        config = QueryGenConfig(min_within_seconds=1.0, max_within_seconds=3.0, nested=False)
        short = QueryGenerator(config).generate(_description(duration=0.1))
        long = QueryGenerator(config).generate(_description(duration=60.0))
        assert short.pattern.within_seconds == 1.0
        assert long.pattern.within_seconds == 3.0

    def test_policies_from_config(self):
        config = QueryGenConfig(select=SelectPolicy.ALL, consume=ConsumePolicy.NONE, nested=False)
        query = QueryGenerator(config).generate(_description())
        assert query.pattern.select is SelectPolicy.ALL
        assert query.pattern.consume is ConsumePolicy.NONE

    def test_two_pose_description_is_single_sequence(self):
        query = QueryGenerator().generate(_description(centers=(0.0, 800.0)))
        assert len(query.pattern.elements) == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            QueryGenConfig(within_slack=0.0)
        with pytest.raises(ValueError):
            QueryGenConfig(max_within_seconds=0.5, min_within_seconds=1.0)
        with pytest.raises(ValueError):
            QueryGenConfig(round_within_to=0.0)
        with pytest.raises(ValueError):
            QueryGenConfig(coordinate_precision=-1)

    def test_learned_description_generates_deployable_query(self, swipe_description):
        text = QueryGenerator().generate_text(swipe_description)
        reparsed = parse_query(text)
        assert reparsed.output == "swipe_right"
        assert reparsed.event_count() == swipe_description.pose_count


class TestValidator:
    def test_no_conflicts_for_disjoint_gestures(self):
        swipe = _description("swipe", centers=(0.0, 400.0, 800.0))
        push = _description("push", centers=(-800.0, -400.0, -100.0))
        report = PatternValidator().validate([swipe, push])
        assert not report.has_conflicts
        assert report.overlaps_between("swipe", "push") == []

    def test_overlaps_reported_for_widened_windows(self):
        swipe = _description("swipe", width=50.0)
        widened = _description("other", width=500.0)
        report = PatternValidator().validate([swipe, widened])
        assert report.overlaps
        assert any({"swipe", "other"} == {o.gesture_a, o.gesture_b} for o in report.overlaps)

    def test_subsumption_detected_when_one_pattern_covers_another(self):
        narrow = _description("narrow", width=50.0)
        broad = _description("broad", width=600.0)
        report = PatternValidator().validate([narrow, broad])
        assert ("broad", "narrow") in report.subsumptions

    def test_single_pose_warning(self):
        single = _description("single", centers=(0.0,))
        report = PatternValidator().validate([single])
        assert any("single" in warning for warning in report.warnings)

    def test_nearly_identical_adjacent_poses_warn(self):
        description = _description("dup", centers=(0.0, 1.0, 800.0), width=100.0)
        report = PatternValidator().validate([description])
        assert any("coincide" in warning for warning in report.warnings)

    def test_strict_mode_raises_on_conflicts(self):
        narrow = _description("narrow", width=50.0)
        broad = _description("broad", width=600.0)
        with pytest.raises(ValidationError):
            PatternValidator(ValidationConfig(strict=True)).validate([narrow, broad])

    def test_min_overlap_ratio_filters_tiny_intersections(self):
        first = _description("a", centers=(0.0, 400.0, 800.0), width=50.0)
        second = _description("b", centers=(99.0, 499.0, 899.0), width=50.0)
        strict = PatternValidator(ValidationConfig(min_overlap_ratio=0.5)).validate([first, second])
        loose = PatternValidator(ValidationConfig(min_overlap_ratio=0.0)).validate([first, second])
        assert len(strict.overlaps) <= len(loose.overlaps)

    def test_summary_mentions_conflicts(self):
        narrow = _description("narrow", width=50.0)
        broad = _description("broad", width=600.0)
        summary = PatternValidator().validate([narrow, broad]).summary()
        assert "conflict" in summary

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ValidationConfig(min_overlap_ratio=1.5)


class TestOptimizer:
    def test_merges_nearly_identical_consecutive_poses(self):
        description = _description("g", centers=(0.0, 10.0, 800.0), width=100.0)
        optimised, report = PatternOptimizer(
            OptimizerConfig(eliminate_coordinates=False)
        ).optimize(description)
        assert optimised.pose_count == 2
        assert report.merged_pose_pairs == [(0, 1)]
        assert report.poses_saved == 1

    def test_does_not_merge_distinct_poses(self):
        description = _description("g")
        optimised, report = PatternOptimizer(
            OptimizerConfig(eliminate_coordinates=False)
        ).optimize(description)
        assert optimised.pose_count == 3
        assert not report.merged_pose_pairs

    def test_eliminates_constant_coordinates_keeping_first_pose_anchor(self):
        description = _description("g")
        optimised, report = PatternOptimizer(
            OptimizerConfig(merge_windows=False, elimination_mode="keep_first",
                            min_center_range_mm=120.0)
        ).optimize(description)
        # y and z are constant across the gesture -> dropped from poses 1, 2.
        assert set(optimised.poses[0].window.fields) == {"rhand_x", "rhand_y", "rhand_z"}
        assert set(optimised.poses[1].window.fields) == {"rhand_x"}
        assert "rhand_y" in report.eliminated_fields
        assert report.predicates_saved == 4

    def test_drop_mode_removes_coordinate_everywhere(self):
        description = _description("g")
        optimised, _ = PatternOptimizer(
            OptimizerConfig(merge_windows=False, elimination_mode="drop")
        ).optimize(description)
        assert all("rhand_y" not in pose.window.fields for pose in optimised.poses)

    def test_never_removes_below_min_remaining_fields(self):
        description = _description("g", centers=(0.0, 1.0, 2.0))  # nothing really moves
        optimised, _ = PatternOptimizer(
            OptimizerConfig(merge_windows=False, elimination_mode="drop",
                            min_remaining_fields=1, min_center_range_mm=1000.0)
        ).optimize(description)
        assert all(len(pose.window.fields) >= 1 for pose in optimised.poses)

    def test_recall_is_preserved_on_canonical_path(self):
        description = _description("g")
        path = [dict(pose.window.center) for pose in description.poses]
        optimised, _ = PatternOptimizer().optimize(description)
        assert optimised.matches_path(path)

    def test_report_summary_and_counters(self):
        description = _description("g", centers=(0.0, 10.0, 800.0))
        optimised, report = PatternOptimizer().optimize(description)
        assert report.poses_before == 3
        assert report.poses_after == optimised.pose_count
        assert "predicates" in report.summary()

    def test_sequence_indices_are_renumbered(self):
        description = _description("g", centers=(0.0, 10.0, 800.0))
        optimised, _ = PatternOptimizer().optimize(description)
        assert [pose.sequence_index for pose in optimised.poses] == list(range(optimised.pose_count))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OptimizerConfig(merge_overlap_ratio=0.0)
        with pytest.raises(ValueError):
            OptimizerConfig(elimination_mode="sometimes")
        with pytest.raises(ValueError):
            OptimizerConfig(min_center_range_mm=-1.0)
        with pytest.raises(ValueError):
            OptimizerConfig(min_remaining_fields=0)

    def test_optimized_metadata_flag(self):
        optimised, _ = PatternOptimizer().optimize(_description("g"))
        assert optimised.metadata.get("optimized") is True
