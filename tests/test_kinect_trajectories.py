"""Unit tests for repro.kinect.trajectories."""

import numpy as np
import pytest

from repro.kinect.trajectories import (
    CircleTrajectory,
    CompositeTrajectory,
    IdleTrajectory,
    PushTrajectory,
    RaiseHandTrajectory,
    SwipeTrajectory,
    TwoHandSwipeTrajectory,
    WaveTrajectory,
    WaypointTrajectory,
    standard_gesture_catalog,
)


class TestWaypointTrajectory:
    def test_requires_waypoints(self):
        with pytest.raises(ValueError):
            WaypointTrajectory("x", 1.0, {})

    def test_requires_two_waypoints(self):
        with pytest.raises(ValueError):
            WaypointTrajectory("x", 1.0, {"rhand": [(0, 0, 0)]})

    def test_requires_consistent_counts(self):
        with pytest.raises(ValueError):
            WaypointTrajectory(
                "x", 1.0, {"rhand": [(0, 0, 0), (1, 1, 1)], "lhand": [(0, 0, 0)]}
            )

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            WaypointTrajectory("x", 0.0, {"rhand": [(0, 0, 0), (1, 1, 1)]})

    def test_endpoints_match_waypoints(self):
        trajectory = WaypointTrajectory(
            "x", 1.0, {"rhand": [(0, 0, 0), (100, 0, 0)]}, smooth=False
        )
        assert np.allclose(trajectory.start_positions()["rhand"], [0, 0, 0])
        assert np.allclose(trajectory.end_positions()["rhand"], [100, 0, 0])

    def test_linear_interpolation_at_midpoint(self):
        trajectory = WaypointTrajectory(
            "x", 1.0, {"rhand": [(0, 0, 0), (100, 0, 0)]}, smooth=False
        )
        assert trajectory.positions(0.5)["rhand"][0] == pytest.approx(50.0)

    def test_smoothing_preserves_endpoints(self):
        trajectory = WaypointTrajectory("x", 1.0, {"rhand": [(0, 0, 0), (100, 0, 0)]})
        assert trajectory.positions(0.0)["rhand"][0] == pytest.approx(0.0)
        assert trajectory.positions(1.0)["rhand"][0] == pytest.approx(100.0)

    def test_phase_is_clamped(self):
        trajectory = WaypointTrajectory("x", 1.0, {"rhand": [(0, 0, 0), (100, 0, 0)]})
        assert trajectory.positions(-1.0)["rhand"][0] == pytest.approx(0.0)
        assert trajectory.positions(2.0)["rhand"][0] == pytest.approx(100.0)

    def test_perturbed_keeps_structure_but_moves_waypoints(self):
        trajectory = WaypointTrajectory("x", 1.0, {"rhand": [(0, 0, 0), (100, 0, 0)]})
        varied = trajectory.perturbed(np.random.default_rng(0), sigma_mm=20.0)
        assert varied.joints == trajectory.joints
        assert not np.allclose(
            varied.positions(1.0)["rhand"], trajectory.positions(1.0)["rhand"]
        )

    def test_path_length_of_straight_segment(self):
        trajectory = WaypointTrajectory(
            "x", 1.0, {"rhand": [(0, 0, 0), (300, 0, 0)]}, smooth=False
        )
        assert trajectory.path_length("rhand") == pytest.approx(300.0, rel=0.01)

    def test_path_length_of_uninvolved_joint_is_zero(self):
        trajectory = WaypointTrajectory("x", 1.0, {"rhand": [(0, 0, 0), (300, 0, 0)]})
        assert trajectory.path_length("lhand") == 0.0


class TestSwipeTrajectory:
    def test_matches_paper_fig1_poses(self):
        swipe = SwipeTrajectory(direction="right")
        start = swipe.positions(0.0)["rhand"]
        end = swipe.positions(1.0)["rhand"]
        assert np.allclose(start, [0.0, 150.0, -120.0])
        assert np.allclose(end, [800.0, 150.0, -120.0])

    def test_middle_pose_bows_toward_camera(self):
        swipe = SwipeTrajectory(direction="right")
        middle = swipe.positions(0.5)["rhand"]
        assert middle[2] < -120.0

    def test_left_swipe_mirrors_x(self):
        left = SwipeTrajectory(direction="left", hand="lhand")
        assert left.positions(1.0)["lhand"][0] == pytest.approx(-800.0)

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            SwipeTrajectory(direction="up")

    def test_default_name_includes_direction(self):
        assert SwipeTrajectory(direction="left").name == "swipe_left"


class TestCircleTrajectory:
    def test_all_points_on_circle(self):
        circle = CircleTrajectory(radius_mm=400.0, center=(300.0, 200.0, -100.0))
        for phase in np.linspace(0, 1, 17):
            point = circle.positions(float(phase))["rhand"]
            radius = np.hypot(point[0] - 300.0, point[1] - 200.0)
            assert radius == pytest.approx(400.0, abs=1e-6)
            assert point[2] == pytest.approx(-100.0)

    def test_full_revolution_ends_where_it_started(self):
        circle = CircleTrajectory()
        assert np.allclose(circle.positions(0.0)["rhand"], circle.positions(1.0)["rhand"])

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            CircleTrajectory(radius_mm=0.0)

    def test_clockwise_flag_changes_direction(self):
        clockwise = CircleTrajectory(clockwise=True).positions(0.1)["rhand"]
        counter = CircleTrajectory(clockwise=False).positions(0.1)["rhand"]
        assert clockwise[0] != pytest.approx(counter[0])


class TestOtherTrajectories:
    def test_wave_oscillates_laterally(self):
        wave = WaveTrajectory(cycles=2, amplitude_mm=200.0)
        xs = [wave.positions(p)["rhand"][0] for p in np.linspace(0, 1, 60)]
        assert max(xs) - min(xs) == pytest.approx(400.0, rel=0.05)

    def test_wave_requires_cycles(self):
        with pytest.raises(ValueError):
            WaveTrajectory(cycles=0)

    def test_push_moves_along_depth_axis(self):
        push = PushTrajectory(reach_mm=400.0)
        start = push.positions(0.0)["rhand"]
        end = push.positions(1.0)["rhand"]
        assert end[2] - start[2] == pytest.approx(-400.0)
        assert end[0] == pytest.approx(start[0])

    def test_raise_hand_ends_above_head_height(self):
        raise_hand = RaiseHandTrajectory()
        assert raise_hand.positions(1.0)["rhand"][1] > 500.0

    def test_two_hand_swipe_moves_both_hands_apart(self):
        both = TwoHandSwipeTrajectory(extent_mm=500.0)
        end = both.positions(1.0)
        assert end["rhand"][0] > 500.0
        assert end["lhand"][0] < -500.0

    def test_idle_has_no_joints(self):
        idle = IdleTrajectory(duration_s=2.0)
        assert idle.joints == ()
        assert idle.positions(0.5) == {}

    def test_composite_concatenates_durations_and_joints(self):
        composite = CompositeTrajectory(
            "combo", [SwipeTrajectory("right"), PushTrajectory()]
        )
        assert composite.duration_s == pytest.approx(
            SwipeTrajectory("right").duration_s + PushTrajectory().duration_s
        )
        assert "rhand" in composite.joints

    def test_composite_requires_parts(self):
        with pytest.raises(ValueError):
            CompositeTrajectory("combo", [])

    def test_composite_first_part_at_phase_zero(self):
        swipe = SwipeTrajectory("right")
        composite = CompositeTrajectory("combo", [swipe, PushTrajectory()])
        assert np.allclose(
            composite.positions(0.0)["rhand"], swipe.positions(0.0)["rhand"]
        )


class TestCatalog:
    def test_contains_paper_gestures(self):
        catalog = standard_gesture_catalog()
        assert "swipe_right" in catalog
        assert "circle" in catalog
        assert "wave" in catalog

    def test_names_match_keys(self):
        for name, trajectory in standard_gesture_catalog().items():
            assert trajectory.name == name

    def test_catalog_has_at_least_six_gestures(self):
        assert len(standard_gesture_catalog()) >= 6
