"""Unit tests for repro.core.distance and repro.core.windows."""

import pytest

from repro.core.distance import (
    EuclideanDistance,
    EveryKTuples,
    ManhattanDistance,
    WeightedEuclideanDistance,
    joint_fields,
)
from repro.core.windows import PoseWindow, Window


class TestDistanceMetrics:
    def test_euclidean_distance(self):
        metric = EuclideanDistance(["x", "y"])
        assert metric({"x": 0, "y": 0}, {"x": 3, "y": 4}) == pytest.approx(5.0)

    def test_euclidean_missing_fields_treated_as_zero(self):
        metric = EuclideanDistance(["x", "y"])
        assert metric({"x": 3.0}, {}) == pytest.approx(3.0)

    def test_manhattan_distance(self):
        metric = ManhattanDistance(["x", "y"])
        assert metric({"x": 0, "y": 0}, {"x": 3, "y": 4}) == pytest.approx(7.0)

    def test_weighted_distance(self):
        metric = WeightedEuclideanDistance({"x": 1.0, "y": 0.0})
        assert metric({"x": 0, "y": 0}, {"x": 3, "y": 100}) == pytest.approx(3.0)

    def test_weighted_distance_validation(self):
        with pytest.raises(ValueError):
            WeightedEuclideanDistance({})
        with pytest.raises(ValueError):
            WeightedEuclideanDistance({"x": -1.0})

    def test_every_k_tuples_counts_elapsed_frames(self):
        metric = EveryKTuples(frequency_hz=30.0)
        assert metric({"ts": 0.0}, {"ts": 1.0}) == pytest.approx(30.0)
        assert metric({}, {}) == 0.0
        with pytest.raises(ValueError):
            EveryKTuples(frequency_hz=0.0)

    def test_metric_requires_fields(self):
        with pytest.raises(ValueError):
            EuclideanDistance([])

    def test_joint_fields_expansion(self):
        assert joint_fields(["rhand"]) == ("rhand_x", "rhand_y", "rhand_z")
        assert len(joint_fields(["rhand", "lhand"])) == 6
        with pytest.raises(ValueError):
            joint_fields([])

    def test_distance_is_symmetric(self):
        metric = EuclideanDistance(["x", "y", "z"])
        a = {"x": 1.0, "y": 2.0, "z": 3.0}
        b = {"x": -4.0, "y": 0.5, "z": 9.0}
        assert metric(a, b) == pytest.approx(metric(b, a))


class TestWindow:
    def test_requires_matching_center_and_width(self):
        with pytest.raises(ValueError):
            Window(center={"x": 0.0}, width={"y": 1.0})

    def test_requires_positive_width(self):
        with pytest.raises(ValueError):
            Window(center={"x": 0.0}, width={"x": 0.0})

    def test_requires_at_least_one_dimension(self):
        with pytest.raises(ValueError):
            Window(center={}, width={})

    def test_contains_matches_generated_predicate_semantics(self):
        window = Window(center={"x": 400.0}, width={"x": 50.0})
        assert window.contains({"x": 449.0})
        assert not window.contains({"x": 450.0})  # strict inequality, like abs(...) < w
        assert not window.contains({"x": 350.0})

    def test_contains_requires_all_fields(self):
        window = Window(center={"x": 0.0, "y": 0.0}, width={"x": 10.0, "y": 10.0})
        assert not window.contains({"x": 0.0})

    def test_bounds_lower_upper(self):
        window = Window(center={"x": 100.0}, width={"x": 25.0})
        assert window.bounds("x") == (75.0, 125.0)

    def test_from_points_builds_mbr(self):
        points = [{"x": 0.0, "y": 10.0}, {"x": 100.0, "y": 30.0}]
        window = Window.from_points(points, fields=["x", "y"], min_width=5.0)
        assert window.center["x"] == pytest.approx(50.0)
        assert window.width["x"] == pytest.approx(50.0)
        assert window.width["y"] == pytest.approx(10.0)

    def test_from_points_enforces_min_width(self):
        window = Window.from_points([{"x": 5.0}, {"x": 5.0}], fields=["x"], min_width=30.0)
        assert window.width["x"] == 30.0

    def test_from_points_validation(self):
        with pytest.raises(ValueError):
            Window.from_points([], fields=["x"])
        with pytest.raises(ValueError):
            Window.from_points([{"x": 1.0}], fields=[])
        with pytest.raises(ValueError):
            Window.from_points([{"y": 1.0}], fields=["x"])

    def test_intersects_and_volume_ratio(self):
        first = Window(center={"x": 0.0}, width={"x": 50.0})
        second = Window(center={"x": 60.0}, width={"x": 50.0})
        separate = Window(center={"x": 200.0}, width={"x": 50.0})
        assert first.intersects(second)
        assert not first.intersects(separate)
        assert 0.0 < first.intersection_volume_ratio(second) < 1.0
        assert first.intersection_volume_ratio(separate) == 0.0
        assert first.intersection_volume_ratio(first) == pytest.approx(1.0)

    def test_windows_over_disjoint_fields_do_not_intersect(self):
        first = Window(center={"x": 0.0}, width={"x": 50.0})
        second = Window(center={"y": 0.0}, width={"y": 50.0})
        assert not first.intersects(second)
        assert first.intersection_volume_ratio(second) == 0.0

    def test_expanded_and_scaled(self):
        window = Window(center={"x": 0.0}, width={"x": 50.0})
        expanded = window.expanded({"x": 25.0})
        scaled = window.scaled(2.0)
        assert expanded.width["x"] == 75.0
        assert scaled.width["x"] == 100.0
        assert window.width["x"] == 50.0  # originals untouched
        with pytest.raises(ValueError):
            window.scaled(0.0)

    def test_merged_with_covers_both(self):
        first = Window(center={"x": 0.0}, width={"x": 50.0})
        second = Window(center={"x": 200.0}, width={"x": 50.0})
        merged = first.merged_with(second)
        assert merged.lower("x") <= -50.0
        assert merged.upper("x") >= 250.0

    def test_without_fields(self):
        window = Window(center={"x": 0.0, "y": 0.0}, width={"x": 1.0, "y": 1.0})
        reduced = window.without_fields(["y"])
        assert reduced.fields == ("x",)
        with pytest.raises(ValueError):
            window.without_fields(["x", "y"])

    def test_distance_from_point(self):
        window = Window(center={"x": 0.0}, width={"x": 50.0})
        assert window.distance_from({"x": 25.0}) == 0.0
        assert window.distance_from({"x": 100.0}) == pytest.approx(1.0)

    def test_volume(self):
        window = Window(center={"x": 0.0, "y": 0.0}, width={"x": 10.0, "y": 5.0})
        assert window.volume() == pytest.approx(20.0 * 10.0)

    def test_dict_round_trip(self):
        window = Window(center={"x": 1.5}, width={"x": 2.5})
        assert Window.from_dict(window.to_dict()) == window or (
            Window.from_dict(window.to_dict()).center == window.center
        )


class TestPoseWindow:
    def test_validation(self):
        window = Window(center={"x": 0.0}, width={"x": 1.0})
        with pytest.raises(ValueError):
            PoseWindow(sequence_index=-1, window=window)
        with pytest.raises(ValueError):
            PoseWindow(sequence_index=0, window=window, support=0)

    def test_contains_delegates_to_window(self):
        pose = PoseWindow(0, Window(center={"x": 0.0}, width={"x": 10.0}))
        assert pose.contains({"x": 5.0})

    def test_dict_round_trip(self):
        pose = PoseWindow(2, Window(center={"x": 1.0}, width={"x": 2.0}), support=3)
        restored = PoseWindow.from_dict(pose.to_dict())
        assert restored.sequence_index == 2
        assert restored.support == 3
        assert restored.window.center == {"x": 1.0}
