"""Tests of the fluent query DSL (repro.api.dsl).

Covers the expression layer (operator overloading builds the same AST the
parser produces), the builder layer (chains produce the existing ``Query``
dataclass), and the round-trip guarantees the compiled-predicate cache
relies on: ``parse_query(q.to_query())`` equals the original query, the
re-rendered text is byte-identical, and builder-produced queries detect
exactly what their hand-written text forms detect on the interpreted,
compiled and batched engine paths.
"""

from __future__ import annotations

import random

import pytest

from repro.api import Expr, F, Q, QueryBuilder, lit, udf
from repro.cep import (
    CEPEngine,
    ConsumePolicy,
    EventPattern,
    MatcherConfig,
    Query,
    SelectPolicy,
    SequencePattern,
    parse_expression,
    parse_query,
)
from repro.core import GestureDescription, PoseWindow, QueryGenerator, Window
from repro.errors import QueryBuilderError
from repro.streams import SimulatedClock


# ---------------------------------------------------------------------------
# Expression layer
# ---------------------------------------------------------------------------


class TestExpressions:
    def test_field_reference(self):
        assert F("rhand_x").to_query() == "rhand_x"
        assert F.rhand_x.to_query() == "rhand_x"

    def test_paper_window_predicate(self):
        predicate = abs(F("x") - 0.3) < 0.05
        assert predicate.to_query() == "abs(x - 0.3) < 0.05"

    def test_arithmetic_and_reflected_operands(self):
        assert (F("a") + 1).to_query() == "a + 1"
        assert (1 + F("a")).to_query() == "1 + a"
        assert (2 * (F("a") - F("b"))).to_query() == "2 * (a - b)"
        assert (1 / F("a")).to_query() == "1 / a"
        assert (-F("a")).to_query() == "-a"

    def test_comparisons(self):
        assert (F("a") <= 3).to_query() == "a <= 3"
        assert (F("a") == 3).to_query() == "a == 3"
        assert (F("a") != 3).to_query() == "a != 3"
        # Reflected comparison flips the operator.
        assert (3 > F("a")).to_query() == "a < 3"

    def test_boolean_connectives_flatten_like_the_parser(self):
        conjunction = (F("a") < 1) & (F("b") < 2) & (F("c") < 3)
        assert conjunction.to_query() == "a < 1 and b < 2 and c < 3"
        parsed = parse_expression(conjunction.to_query())
        assert parsed == conjunction.build()
        # Structural identity, not just text equality: one flat n-ary node.
        assert len(conjunction.build().operands) == 3

    def test_or_and_not(self):
        expression = ((F("a") < 1) | (F("b") < 2)) & ~(F("c") == 3)
        assert expression.to_query() == "(a < 1 or b < 2) and not (c == 3)"
        assert parse_expression(expression.to_query()) == expression.build()

    def test_udf_and_literals(self):
        expression = udf("dist", F("rhand_x"), lit(0)) < 100
        assert expression.to_query() == "dist(rhand_x, 0) < 100"

    def test_evaluates_like_the_parsed_form(self):
        expression = (abs(F("x") - 10) < 5) & (F("y") > 0)
        record = {"x": 12.0, "y": 1.0}
        assert expression.build().evaluate(record) is True
        assert parse_expression(expression.to_query()).evaluate(record) is True
        assert expression.build().compile()(record) is True

    def test_python_bool_context_is_rejected(self):
        with pytest.raises(QueryBuilderError, match="truth value"):
            bool(F("a") < 1)
        with pytest.raises(QueryBuilderError):
            if F("a") < 1 and F("b") < 2:  # noqa: PT018 — the mistake under test
                pass

    def test_expr_is_unhashable(self):
        with pytest.raises(TypeError):
            hash(F("a"))

    def test_foreign_operand_rejected(self):
        with pytest.raises(QueryBuilderError, match="cannot use a"):
            F("a") + object()


# ---------------------------------------------------------------------------
# Builder layer
# ---------------------------------------------------------------------------


class TestQueryBuilder:
    def test_issue_example_chain(self):
        query = (
            Q.stream("kinect")
            .where(abs(F("x") - 0.3) < 0.05)
            .then(abs(F("x") - 0.7) < 0.05)
            .within(2.0)
            .select("first")
            .consume("all")
            .named("swipe_right")
        )
        assert isinstance(query, Query)
        assert query.output == "swipe_right"
        assert query.registration_name == "swipe_right"
        assert query.event_count() == 2
        assert query.streams() == {"kinect"}
        assert query.pattern.within_seconds == 2.0

    def test_builder_is_immutable_and_shareable(self):
        base = Q.stream("kinect_t").where(F("a") > 0)
        fast = base.within(1.0).named("fast")
        slow = base.within(4.0).named("slow")
        assert fast.pattern.within_seconds == 1.0
        assert slow.pattern.within_seconds == 4.0
        # The shared prefix was not mutated by either chain.
        assert base.pattern().within_seconds is None

    def test_nested_chain_becomes_nested_sequence(self):
        inner = Q.stream("kinect_t").where(F("a") > 0).then(F("b") > 0).within(1.0)
        query = Q.stream("kinect_t").then(inner).then(F("c") > 0).within(2.0).named("g")
        assert isinstance(query.pattern.elements[0], SequencePattern)
        assert isinstance(query.pattern.elements[1], EventPattern)
        assert query.event_count() == 3

    def test_single_event_nested_chain_is_inlined(self):
        # The parser collapses "( kinect_t(...) )" to the bare event; the
        # builder must produce what its own text reparses to.
        inner = Q.stream("kinect_t").where(F("a") > 0)
        query = Q.stream("kinect_t").then(inner).then(F("b") > 0).named("g")
        assert all(isinstance(e, EventPattern) for e in query.pattern.elements)
        assert parse_query(query.to_query()) == query

    def test_stream_and_label_rejected_for_prebuilt_steps(self):
        prebuilt = Q.event("other", F("b") > 0)
        with pytest.raises(QueryBuilderError, match="pre-built"):
            Q.stream("s").then(prebuilt, stream="s")
        with pytest.raises(QueryBuilderError, match="pre-built"):
            Q.stream("s").then(Q.stream("s").where(F("a") > 0), label="pose")

    def test_per_step_stream_override_and_mixed_streams(self):
        query = (
            Q.stream("kinect_t")
            .where(F("a") > 0)
            .then(Q.event("other", F("b") > 0))
            .then(F("c") > 0, stream="third")
            .named("multi")
        )
        assert query.streams() == {"kinect_t", "other", "third"}

    def test_policies_accept_enums_and_strings(self):
        query = (
            Q.stream("s")
            .where(F("a") > 0)
            .select(SelectPolicy.ALL)
            .consume(ConsumePolicy.NONE)
            .named("g")
        )
        assert query.pattern.select is SelectPolicy.ALL
        assert query.pattern.consume is ConsumePolicy.NONE

    def test_non_default_policies_round_trip_without_within(self):
        query = Q.stream("s").where(F("a") > 0).select("all").consume("none").named("g")
        text = query.to_query()
        assert "select all consume none" in text
        assert parse_query(text) == query
        assert parse_query(text).to_query() == text

    def test_registration_name_does_not_break_round_trip(self):
        # Query.name is rendering-invisible metadata (like EventPattern.label)
        # and must not participate in equality.
        query = Q.stream("s").where(F("a") > 1).named("g", name="registered_as")
        assert query.registration_name == "registered_as"
        assert parse_query(query.to_query()) == query

    def test_output_makes_builder_deployable(self):
        builder = Q.stream("s").where(F("a") > 0).output("g")
        assert builder.build().output == "g"
        assert builder.to_query().startswith('SELECT "g"')

    def test_sequence_shorthand(self):
        builder = Q.sequence(F("a") > 0, F("b") > 0, stream="s", within=1.5)
        query = builder.named("g")
        assert query.event_count() == 2
        assert query.pattern.within_seconds == 1.5

    def test_error_cases(self):
        with pytest.raises(QueryBuilderError, match="no event patterns"):
            Q.stream("s").build(output="g")
        with pytest.raises(QueryBuilderError, match="no output value"):
            Q.stream("s").where(F("a") > 0).build()
        with pytest.raises(QueryBuilderError, match="must be positive"):
            Q.stream("s").where(F("a") > 0).within(0)
        with pytest.raises(QueryBuilderError, match="unknown select policy"):
            Q.stream("s").where(F("a") > 0).select("sometimes")
        with pytest.raises(QueryBuilderError):
            QueryBuilder(stream="")
        with pytest.raises(TypeError):
            Q()

    def test_engine_accepts_builder_directly(self):
        engine = CEPEngine(clock=SimulatedClock())
        engine.create_stream("s")
        deployed = engine.register_query(
            Q.stream("s").where(F("a") > 0).output("direct")
        )
        engine.push("s", {"ts": 0.0, "a": 1.0})
        assert [d.output for d in deployed.detections()] == ["direct"]


# ---------------------------------------------------------------------------
# Round-trip properties
# ---------------------------------------------------------------------------


def _random_predicate(rng: random.Random) -> Expr:
    """A conjunction of 1–3 paper-style window predicates."""
    terms = []
    for _ in range(rng.randint(1, 3)):
        name = rng.choice(["rhand_x", "rhand_y", "rhand_z", "lhand_x", "lhand_y"])
        center = rng.randint(-800, 800)
        width = rng.randint(10, 400)
        shape = rng.randrange(3)
        if shape == 0:
            terms.append(abs(F(name) - center) < width)
        elif shape == 1:
            terms.append(F(name) > center)
        else:
            terms.append((F(name) - center) * 2 <= width)
    predicate = terms[0]
    for term in terms[1:]:
        predicate = predicate & term
    return predicate


def _random_builder_query(rng: random.Random, depth: int = 0) -> QueryBuilder:
    builder = Q.stream(rng.choice(["kinect_t", "sensor"]))
    steps = rng.randint(1, 3)
    for _index in range(steps):
        if depth < 1 and rng.random() < 0.3:
            nested = _random_builder_query(rng, depth + 1).within(
                rng.choice([0.5, 1.0, 2.0])
            )
            builder = builder.then(nested)
        else:
            builder = builder.then(_random_predicate(rng))
    constrained = rng.random() < 0.8
    if constrained:
        builder = builder.within(rng.choice([0.5, 1.0, 2.0, 3.5]))
    if rng.random() < 0.5:
        builder = builder.select(rng.choice(["first", "last", "all"]))
        builder = builder.consume(rng.choice(["all", "none"]))
    return builder


@pytest.mark.parametrize("seed", range(25))
def test_random_builder_chains_round_trip(seed):
    """parse_query(q.to_query()) == q, byte-identically, for random chains."""
    rng = random.Random(seed)
    query = _random_builder_query(rng).named(f"gesture_{seed}")
    text = query.to_query()
    reparsed = parse_query(text)
    assert reparsed == query
    assert reparsed.to_query() == text


def _random_description(rng: random.Random, name: str) -> GestureDescription:
    poses = []
    for index in range(rng.randint(1, 5)):
        fields = sorted(
            rng.sample(["rhand_x", "rhand_y", "rhand_z", "lhand_x"], rng.randint(1, 3))
        )
        center = {field: float(rng.randint(-900, 900)) for field in fields}
        width = {field: float(rng.randint(5, 400)) for field in fields}
        poses.append(PoseWindow(index, Window(center, width)))
    return GestureDescription(
        name=name,
        poses=poses,
        joints=["rhand"],
        sample_count=rng.randint(1, 6),
        mean_duration_s=rng.uniform(0.3, 2.0),
        max_duration_s=rng.uniform(2.0, 4.0),
    )


@pytest.mark.parametrize("seed", range(25))
@pytest.mark.parametrize("nested", [True, False])
def test_generated_query_corpus_round_trips(seed, nested):
    """QueryGenerator output round-trips through the parser unchanged."""
    from repro.core import QueryGenConfig

    rng = random.Random(1000 + seed)
    description = _random_description(rng, f"g{seed}")
    query = QueryGenerator(QueryGenConfig(nested=nested)).generate(description)
    text = query.to_query()
    reparsed = parse_query(text)
    assert reparsed == query
    assert reparsed.to_query() == text


# ---------------------------------------------------------------------------
# Detection equivalence: builder vs text, on all three engine paths
# ---------------------------------------------------------------------------


def _drive(query, records, *, compile_predicates=True, batch_size=None):
    engine = CEPEngine(
        clock=SimulatedClock(),
        matcher_config=MatcherConfig(compile_predicates=compile_predicates),
    )
    engine.create_stream("kinect_t")
    deployed = engine.register_query(query, create_missing_streams=True)
    engine.push_many("kinect_t", records, batch_size=batch_size)
    return [
        (d.output, d.timestamp, d.start_timestamp, d.step_timestamps, d.partition)
        for d in deployed.detections()
    ]


def _synthetic_records(rng: random.Random, count: int = 400):
    records = []
    for index in range(count):
        records.append(
            {
                "ts": index * 0.05,
                "player": rng.choice([1, 2]),
                "rhand_x": rng.uniform(-900, 900),
                "rhand_y": rng.uniform(-900, 900),
                "rhand_z": rng.uniform(-900, 900),
                "lhand_x": rng.uniform(-900, 900),
                "lhand_y": rng.uniform(-900, 900),
            }
        )
    return records


@pytest.mark.parametrize("seed", range(8))
def test_builder_and_text_detect_identically_on_all_paths(seed):
    rng = random.Random(3000 + seed)
    query = _random_builder_query(rng).named(f"g{seed}")
    text = query.to_query()
    records = _synthetic_records(random.Random(4000 + seed))

    baseline = _drive(query, records, compile_predicates=False)
    for deployable in (query, text):
        for kwargs in (
            {"compile_predicates": False},
            {"compile_predicates": True},
            {"compile_predicates": True, "batch_size": 32},
        ):
            assert _drive(deployable, records, **kwargs) == baseline, (
                f"mismatch for {type(deployable).__name__} with {kwargs}"
            )


def test_compiled_cache_keys_are_shared_between_builder_and_text():
    """Structurally identical predicates hit the engine-wide compile cache
    whether they arrive via the DSL or via parsed text."""
    engine = CEPEngine(clock=SimulatedClock())
    engine.create_stream("s")
    predicate = abs(F("a") - 10) < 5
    engine.register_query(Q.stream("s").where(predicate).output("via_builder"))
    misses = engine.compile_cache.misses
    engine.register_query('SELECT "via_text" MATCHING s( abs(a - 10) < 5 );')
    assert engine.compile_cache.misses == misses
    assert engine.compile_cache.hits >= 1
