"""Unit tests for repro.streams.clock."""

import pytest

from repro.streams.clock import SimulatedClock, WallClock


class TestSimulatedClock:
    def test_starts_at_zero_by_default(self):
        assert SimulatedClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert SimulatedClock(start=5.0).now() == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimulatedClock(start=-1.0)

    def test_advance_moves_time_forward(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == pytest.approx(2.0)

    def test_advance_rejects_negative_duration(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_set_jumps_to_absolute_time(self):
        clock = SimulatedClock()
        clock.set(10.0)
        assert clock.now() == 10.0

    def test_set_rejects_going_backwards(self):
        clock = SimulatedClock(start=5.0)
        with pytest.raises(ValueError):
            clock.set(4.0)

    def test_sleep_advances_simulated_time(self):
        clock = SimulatedClock()
        clock.sleep(2.0)
        assert clock.now() == pytest.approx(2.0)

    def test_thirty_hz_frame_accumulation(self):
        clock = SimulatedClock()
        for _ in range(30):
            clock.advance(1.0 / 30.0)
        assert clock.now() == pytest.approx(1.0)

    def test_repr_contains_time(self):
        assert "1.50" in repr(SimulatedClock(start=1.5))


class TestWallClock:
    def test_starts_near_zero(self):
        clock = WallClock()
        assert 0.0 <= clock.now() < 0.5

    def test_is_monotonic(self):
        clock = WallClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_sleep_advances_time(self):
        clock = WallClock()
        before = clock.now()
        clock.sleep(0.01)
        assert clock.now() - before >= 0.009

    def test_sleep_with_nonpositive_duration_returns_immediately(self):
        clock = WallClock()
        before = clock.now()
        clock.sleep(0.0)
        clock.sleep(-1.0)
        assert clock.now() - before < 0.05
