"""Ring-buffer time series and the background metrics sampler.

Deterministic unit coverage drives every windowed query with explicit
timestamps; the session-level tests check the sampler rides a real feed
without touching the data plane.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.api.session import GestureSession, SessionConfig
from repro.observability.timeseries import (
    DEFAULT_CAPACITY,
    MetricsSampler,
    TimeSeries,
    flatten_registry,
    _series_kind,
)

HIGH = 'SELECT "high" MATCHING kinect_t(rhand_y > 450);'


def make_frames(rounds=20):
    frames = []
    ts = 0.0
    for round_index in range(rounds):
        for player in (1, 2, 3):
            ts += 0.01
            value = 500.0 if (round_index + player) % 4 < 2 else 50.0
            frames.append({"ts": ts, "player": player, "rhand_y": value})
    return frames


class TestTimeSeries:
    def test_append_latest_len(self):
        series = TimeSeries("s")
        assert series.latest() is None and len(series) == 0
        series.append(1.0, timestamp=10.0)
        series.append(2.0, timestamp=11.0)
        assert series.latest() == 2.0
        assert len(series) == 2
        assert series.points() == [(10.0, 1.0), (11.0, 2.0)]

    def test_capacity_trims_oldest(self):
        series = TimeSeries("s", capacity=4)
        for step in range(10):
            series.append(float(step), timestamp=float(step))
        assert len(series) == 4
        assert series.points()[0] == (6.0, 6.0)

    def test_out_of_order_insert_keeps_sorted(self):
        series = TimeSeries("s")
        series.append(1.0, timestamp=10.0)
        series.append(3.0, timestamp=30.0)
        series.append(2.0, timestamp=20.0)
        assert [stamp for stamp, _ in series.points()] == [10.0, 20.0, 30.0]

    def test_window_restricts_points(self):
        series = TimeSeries("s")
        for step in range(10):
            series.append(float(step), timestamp=float(step))
        window = series.points(window_seconds=3.0, now=9.0)
        assert [stamp for stamp, _ in window] == [6.0, 7.0, 8.0, 9.0]

    def test_delta_and_rate_over_window(self):
        series = TimeSeries("c", kind="counter")
        for step in range(11):
            series.append(step * 10.0, timestamp=float(step))
        assert series.delta(5.0, now=10.0) == 50.0
        assert series.rate(5.0, now=10.0) == pytest.approx(10.0)

    def test_counter_reset_clamps_delta(self):
        series = TimeSeries("c", kind="counter")
        series.append(100.0, timestamp=0.0)
        series.append(7.0, timestamp=1.0)  # restarted shard: counter reset
        assert series.delta(10.0, now=1.0) == 7.0
        assert series.rate(10.0, now=1.0) == pytest.approx(7.0)

    def test_derivative_may_be_negative(self):
        series = TimeSeries("g")
        series.append(10.0, timestamp=0.0)
        series.append(4.0, timestamp=2.0)
        assert series.derivative(10.0, now=2.0) == pytest.approx(-3.0)
        assert series.rate(10.0, now=2.0) == pytest.approx(2.0)  # clamped

    def test_mean_and_max(self):
        series = TimeSeries("g")
        for step, value in enumerate((1.0, 3.0, 5.0)):
            series.append(value, timestamp=float(step))
        assert series.mean(10.0, now=2.0) == pytest.approx(3.0)
        assert series.max(10.0, now=2.0) == 5.0

    def test_empty_window_queries_are_zero(self):
        series = TimeSeries("s")
        assert series.delta(5.0) == 0.0
        assert series.rate(5.0) == 0.0
        assert series.mean(5.0) == 0.0
        assert series.max(5.0) == 0.0

    def test_state_roundtrip_json_and_pickle_safe(self):
        series = TimeSeries("s", capacity=8, kind="counter")
        series.append(1.0, timestamp=1.0)
        series.append(2.0, timestamp=2.0)
        state = pickle.loads(pickle.dumps(series.to_state()))
        clone = TimeSeries.from_state(state)
        assert clone.name == "s" and clone.kind == "counter" and clone.capacity == 8
        assert clone.points() == series.points()

    def test_from_state_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            TimeSeries.from_state({"name": "s", "times": [1.0], "values": []})

    def test_merge_interleaves_by_timestamp(self):
        left = TimeSeries("s")
        right = TimeSeries("s")
        left.append(1.0, timestamp=1.0)
        left.append(3.0, timestamp=3.0)
        right.append(2.0, timestamp=2.0)
        right.append(4.0, timestamp=4.0)
        left.merge(right)
        assert left.points() == [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]

    @pytest.mark.parametrize("kwargs", [{"capacity": 1}, {"kind": "histogram"}])
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TimeSeries("s", **kwargs)


class TestSeriesKind:
    @pytest.mark.parametrize(
        "name",
        [
            "shard.tuples_processed",
            "durability.fsyncs",
            "hist.ingest_to_detection.count",
            "gateway.frames_total",
        ],
    )
    def test_counters_inferred(self, name):
        assert _series_kind(name) == "counter"

    @pytest.mark.parametrize(
        "name", ["hist.ingest_to_detection.p99_seconds", "shard.queue_depth"]
    )
    def test_gauges_inferred(self, name):
        assert _series_kind(name) == "gauge"


class TestFlattenRegistry:
    def test_covers_shards_durability_and_histograms(self):
        with GestureSession(SessionConfig()) as session:
            session.deploy(HIGH)
            session.feed(make_frames(), stream="kinect_t")
            reading = flatten_registry(session.metrics)
        assert reading["shard.tuples_processed"] > 0
        assert "durability.fsyncs" in reading
        assert reading["hist.batch_processing.count"] >= 1
        assert reading["hist.ingest_to_detection.p99_seconds"] >= 0.0
        assert all(isinstance(value, float) for value in reading.values())


class TestMetricsSampler:
    def test_sample_once_records_each_source(self):
        sampler = MetricsSampler(interval_seconds=0.1)
        reading = {"a": 1.0}
        sampler.add_source("x.", lambda: reading)
        sampler.sample_once(now=1.0)
        reading["a"] = 3.0
        sampler.sample_once(now=2.0)
        series = sampler.get("x.a")
        assert series is not None
        assert series.points() == [(1.0, 1.0), (2.0, 3.0)]
        assert sampler.ticks == 2

    def test_raising_source_is_counted_and_skipped(self):
        sampler = MetricsSampler(interval_seconds=0.1)
        sampler.add_source("bad.", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        sampler.add_source("good.", lambda: {"v": 2.0})
        sampler.sample_once(now=1.0)
        assert sampler.source_errors == 1
        assert sampler.get("good.v").latest() == 2.0

    def test_evaluator_runs_after_every_tick(self):
        seen = []

        class Recorder:
            def evaluate(self, sampler, now=None):
                seen.append((sampler, now))

        sampler = MetricsSampler(interval_seconds=0.1, evaluator=Recorder())
        sampler.add_source("", lambda: {"v": 1.0})
        sampler.sample_once(now=5.0)
        assert seen == [(sampler, 5.0)]

    def test_state_roundtrip_and_absorb(self):
        source = MetricsSampler(interval_seconds=0.1)
        source.add_source("", lambda: {"v": 1.0})
        source.sample_once(now=1.0)
        sink = MetricsSampler(interval_seconds=0.1)
        sink.series("v").append(2.0, timestamp=2.0)
        sink.absorb(source.to_state())
        assert sink.get("v").points() == [(1.0, 1.0), (2.0, 2.0)]

    def test_background_thread_is_named_and_stops(self):
        sampler = MetricsSampler(interval_seconds=0.02)
        sampler.add_source("", lambda: {"v": 1.0})
        sampler.start()
        try:
            assert sampler.running
            names = {thread.name for thread in threading.enumerate()}
            assert "repro-metrics-sampler" in names
        finally:
            sampler.stop()
        assert not sampler.running
        # stop() takes a final reading even if no interval elapsed.
        assert sampler.ticks >= 1

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            MetricsSampler(interval_seconds=0.0)

    def test_default_capacity_applied(self):
        sampler = MetricsSampler()
        assert sampler.series("v").capacity == DEFAULT_CAPACITY


class TestSessionIntegration:
    def test_session_sampler_polls_registry(self):
        config = SessionConfig(sample_interval_seconds=0.02)
        with GestureSession(config) as session:
            session.deploy(HIGH)
            session.feed(make_frames(rounds=40), stream="kinect_t")
            sampler = session.sampler
            assert sampler is not None and sampler.running
            sampler.sample_once()
            assert sampler.get("shard.tuples_processed").latest() > 0
        # close() stops the sampler but leaves its series readable.
        assert not sampler.running
        assert "shard.tuples_processed" in sampler.names()

    def test_no_control_plane_by_default(self):
        with GestureSession(SessionConfig()) as session:
            assert session.sampler is None
            assert session.watchdog is None
            assert session.slo_evaluator is None

    def test_control_plane_requires_telemetry(self):
        with pytest.raises(ValueError):
            SessionConfig(telemetry=False, sample_interval_seconds=0.5)
