"""Tests for the sharded concurrent runtime (``repro.runtime``).

Covers the routing/queue/shard building blocks, the ``ShardedRuntime``
engine surface (equivalence with the inline engine per partition, failure
surfacing, metrics), the ``GestureSession(shards=N)`` integration, and the
concurrency guarantees of the sinks and stream fan-out the runtime relies
on.
"""

from __future__ import annotations

import threading
import time
import zlib

import pytest

from repro.api import F, GestureSession, Q, SessionConfig
from repro.cep import CEPEngine, CollectingSink, FanOutSink
from repro.cep.matcher import MatcherConfig
from repro.errors import (
    BackpressureError,
    QueryRegistrationError,
    SessionStateError,
    ShardFailedError,
)
from repro.runtime import (
    BackpressurePolicy,
    HashPartitionRouter,
    MetricsRegistry,
    ShardQueue,
    ShardedRuntime,
    stable_partition_hash,
)
from repro.runtime.shard import ShardEngineSpec
from repro.streams import Stream

# ---------------------------------------------------------------------------
# Workload helpers: direct kinect_t tuples, no transform, fully deterministic
# ---------------------------------------------------------------------------

UPDOWN = (
    'SELECT "updown" MATCHING ( kinect_t(rhand_y > 400) -> '
    "kinect_t(rhand_y < 100) within 5 seconds );"
)
HIGH = 'SELECT "high" MATCHING kinect_t(rhand_y > 450);'


def make_frames(players=8, rounds=60):
    """An interleaved multi-player stream with staggered highs and lows."""
    frames = []
    ts = 0.0
    for round_index in range(rounds):
        for player in range(1, players + 1):
            phase = (round_index + player) % 4
            value = {0: 500.0, 1: 480.0, 2: 50.0, 3: 250.0}[phase]
            frames.append({"ts": ts, "player": player, "rhand_y": value})
            ts += 0.01
    return frames


def inline_detections(frames, queries=(UPDOWN, HIGH), compile_predicates=True):
    engine = CEPEngine(
        matcher_config=MatcherConfig(compile_predicates=compile_predicates)
    )
    engine.create_stream("kinect_t")
    for query in queries:
        engine.register_query(query)
    engine.push_many("kinect_t", frames)
    return engine.detections()


def per_partition(detections):
    grouped = {}
    for d in detections:
        grouped.setdefault((d.partition, d.query_name), []).append(
            (d.output, d.timestamp, d.start_timestamp, d.step_timestamps)
        )
    return grouped


# ---------------------------------------------------------------------------
# Router
# ---------------------------------------------------------------------------


class TestRouter:
    def test_hash_is_stable_and_process_independent(self):
        # The canonical encoding pins the hash: CRC-32, not the salted
        # builtin hash, so routing agrees across runs and processes.
        assert stable_partition_hash(1) == zlib.crc32(b"\x02int:1")
        assert stable_partition_hash("p1") == zlib.crc32(b"\x04str:p1")
        assert stable_partition_hash(None) == zlib.crc32(b"\x00none")

    def test_equal_keys_route_identically(self):
        router = HashPartitionRouter(shard_count=7)
        assert router.shard_for_key(2) == router.shard_for_key(2.0)
        # True == 1 == 1.0 share one matcher partition, so one shard.
        assert (
            router.shard_for_key(True)
            == router.shard_for_key(1)
            == router.shard_for_key(1.0)
        )
        assert router.shard_for({"player": 3}) == router.shard_for_key(3)
        # Missing field falls into the shared None partition.
        assert router.shard_for({}) == router.shard_for_key(None)

    def test_same_key_same_shard_across_router_instances(self):
        a = HashPartitionRouter(shard_count=5)
        b = HashPartitionRouter(shard_count=5)
        for key in (1, 2, "x", None, 17.5):
            assert a.shard_for_key(key) == b.shard_for_key(key)

    def test_split_preserves_per_partition_order_and_loses_nothing(self):
        router = HashPartitionRouter(shard_count=3)
        frames = make_frames(players=6, rounds=10)
        buckets = router.split(frames)
        assert sum(len(b) for b in buckets) == len(frames)
        for player in range(1, 7):
            original = [f for f in frames if f["player"] == player]
            bucket = buckets[router.shard_for_key(player)]
            routed = [f for f in bucket if f["player"] == player]
            assert routed == original

    def test_validation(self):
        with pytest.raises(ValueError):
            HashPartitionRouter(shard_count=0)
        with pytest.raises(ValueError):
            HashPartitionRouter(shard_count=2, partition_field="")


# ---------------------------------------------------------------------------
# Queues and backpressure
# ---------------------------------------------------------------------------


class TestShardQueue:
    def test_fifo_and_weight_accounting(self):
        queue = ShardQueue(capacity=10)
        queue.put("a", weight=3)
        queue.put("b", weight=2)
        assert queue.depth == 5
        assert queue.get()[0] == "a"
        assert queue.depth == 2
        assert queue.get()[0] == "b"

    def test_error_policy_raises_when_full(self):
        queue = ShardQueue(capacity=4, policy=BackpressurePolicy.ERROR)
        queue.put("a", weight=3)
        with pytest.raises(BackpressureError):
            queue.put("b", weight=2)
        # Controls (weight 0) always get through.
        queue.put("ctrl", weight=0)

    def test_drop_oldest_drops_tuples_but_never_controls(self):
        metrics = MetricsRegistry().shard(0)
        queue = ShardQueue(
            capacity=4, policy=BackpressurePolicy.DROP_OLDEST, metrics=metrics
        )
        queue.put("old", weight=3)
        queue.put("ctrl", weight=0)
        queue.put("new", weight=3)  # evicts "old", keeps the control
        assert metrics.tuples_dropped == 3
        items = [queue.get()[0], queue.get()[0]]
        assert items == ["ctrl", "new"]

    def test_drop_newest_rejects_the_offered_chunk_whole(self):
        metrics = MetricsRegistry().shard(0)
        queue = ShardQueue(
            capacity=4, policy=BackpressurePolicy.DROP_NEWEST, metrics=metrics
        )
        queue.put("old", weight=3)
        assert queue.put("new", weight=3) == 3  # rejected, counted
        assert metrics.tuples_dropped == 3
        assert queue.depth == 3  # the backlog kept its service guarantee
        assert queue.get()[0] == "old"

    def test_drop_newest_admits_oversized_chunk_against_empty_queue(self):
        queue = ShardQueue(capacity=2, policy=BackpressurePolicy.DROP_NEWEST)
        assert queue.put("big", weight=5) == 0  # progress guarantee
        assert queue.get()[0] == "big"

    def test_drop_newest_never_drops_controls(self):
        queue = ShardQueue(capacity=2, policy=BackpressurePolicy.DROP_NEWEST)
        queue.put("data", weight=2)
        assert queue.put("ctrl", weight=0) == 0
        items = [queue.get()[0], queue.get()[0]]
        assert items == ["data", "ctrl"]

    @pytest.mark.parametrize(
        "policy, expect_backlog, expect_offered",
        [
            (BackpressurePolicy.DROP_OLDEST, "evicted", "kept"),
            (BackpressurePolicy.DROP_NEWEST, "kept", "rejected"),
        ],
    )
    def test_drop_policies_are_mirror_images(self, policy, expect_backlog, expect_offered):
        queue = ShardQueue(capacity=2, policy=policy)
        queue.put("backlog", weight=2)
        queue.put("offered", weight=2)
        survivors = []
        while queue.depth:
            survivors.append(queue.get()[0])
        if policy == BackpressurePolicy.DROP_OLDEST:
            assert survivors == ["offered"]
        else:
            assert survivors == ["backlog"]

    def test_block_policy_waits_for_the_consumer(self):
        queue = ShardQueue(capacity=2, policy=BackpressurePolicy.BLOCK)
        queue.put("first", weight=2)
        done = threading.Event()

        def producer():
            queue.put("second", weight=2)  # must wait until "first" leaves
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not done.wait(timeout=0.1)
        assert queue.get()[0] == "first"
        assert done.wait(timeout=2.0)
        assert queue.get()[0] == "second"

    def test_join_is_a_processing_barrier_not_an_empty_check(self):
        queue = ShardQueue(capacity=10)
        queue.put("a", weight=1)
        item, _ = queue.get()
        # Dequeued but not processed: join must still wait.
        assert not queue.join(timeout=0.05)
        queue.task_done()
        assert queue.join(timeout=0.05)


# ---------------------------------------------------------------------------
# ShardedRuntime (thread executor)
# ---------------------------------------------------------------------------


@pytest.fixture
def spec():
    return ShardEngineSpec(install_view=False, raw_stream="kinect_t")


class TestShardedRuntime:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_per_partition_equivalence_with_inline_engine(self, spec, shards):
        frames = make_frames()
        baseline = per_partition(inline_detections(frames))
        assert baseline, "vacuous workload"
        with ShardedRuntime(shard_count=shards, spec=spec) as runtime:
            runtime.register_query(UPDOWN)
            runtime.register_query(HIGH)
            runtime.push_many("kinect_t", frames)
            assert per_partition(runtime.detections()) == baseline

    def test_interpreted_and_batched_paths_are_equivalent_too(self, spec):
        frames = make_frames()
        interpreted_spec = ShardEngineSpec(
            install_view=False,
            raw_stream="kinect_t",
            matcher=MatcherConfig(compile_predicates=False),
        )
        baseline = per_partition(inline_detections(frames, compile_predicates=False))
        with ShardedRuntime(shard_count=2, spec=interpreted_spec) as runtime:
            runtime.register_query(UPDOWN)
            runtime.register_query(HIGH)
            runtime.push_many("kinect_t", frames)
            assert per_partition(runtime.detections()) == baseline
        with ShardedRuntime(shard_count=2, spec=spec) as runtime:
            runtime.register_query(UPDOWN)
            runtime.register_query(HIGH)
            runtime.push_many("kinect_t", frames, batch_size=16)
            assert per_partition(runtime.detections()) == baseline

    def test_detections_merge_is_globally_timestamp_ordered(self, spec):
        frames = make_frames()
        with ShardedRuntime(shard_count=3, spec=spec) as runtime:
            runtime.register_query(HIGH)
            runtime.push_many("kinect_t", frames)
            detections = runtime.detections()
        timestamps = [d.timestamp for d in detections]
        assert timestamps == sorted(timestamps)

    def test_per_partition_filter(self, spec):
        frames = make_frames(players=4)
        with ShardedRuntime(shard_count=2, spec=spec) as runtime:
            runtime.register_query(HIGH)
            runtime.push_many("kinect_t", frames)
            for player in (1, 2, 3, 4):
                only = runtime.detections(partition=player)
                assert only
                assert all(d.partition == player for d in only)

    def test_deploy_after_feed_observes_prior_tuples(self, spec):
        # The queue is FIFO: a deploy control lands after already-queued
        # tuples, so the new query sees only later tuples — like inline.
        with ShardedRuntime(shard_count=2, spec=spec) as runtime:
            runtime.register_query(HIGH)
            runtime.push_many(
                "kinect_t",
                [{"ts": 0.0, "player": p, "rhand_y": 500.0} for p in (1, 2)],
            )
            runtime.register_query(HIGH, name="late")
            runtime.push_many(
                "kinect_t",
                [{"ts": 1.0, "player": p, "rhand_y": 500.0} for p in (1, 2)],
            )
            assert len(runtime.detections("high")) == 4
            assert len(runtime.detections("late")) == 2

    def test_duplicate_and_mismatched_partition_registration(self, spec):
        with ShardedRuntime(shard_count=2, spec=spec) as runtime:
            runtime.register_query(HIGH)
            with pytest.raises(QueryRegistrationError, match="already registered"):
                runtime.register_query(HIGH)
            with pytest.raises(QueryRegistrationError, match="routes on"):
                runtime.register_query(UPDOWN, partition_field=None)
            with pytest.raises(QueryRegistrationError, match="routes on"):
                runtime.register_query(
                    UPDOWN,
                    name="other_field",
                    matcher_config=MatcherConfig(partition_field="device"),
                )

    def test_builder_chains_deploy_like_inline(self, spec):
        frames = make_frames(players=3)
        chain = Q.stream("kinect_t").where(F("rhand_y") > 450).named("high")
        baseline = per_partition(inline_detections(frames, queries=(HIGH,)))
        with ShardedRuntime(shard_count=2, spec=spec) as runtime:
            runtime.register_query(chain)
            runtime.push_many("kinect_t", frames)
            assert per_partition(runtime.detections()) == baseline

    def test_unregister_and_enable(self, spec):
        with ShardedRuntime(shard_count=2, spec=spec) as runtime:
            runtime.register_query(HIGH)
            runtime.enable_query("high", False)
            runtime.push_many(
                "kinect_t", [{"ts": 0.0, "player": 1, "rhand_y": 500.0}]
            )
            assert runtime.detections("high") == []
            runtime.enable_query("high", True)
            runtime.push_many(
                "kinect_t", [{"ts": 1.0, "player": 1, "rhand_y": 500.0}]
            )
            assert len(runtime.detections("high")) == 1
            runtime.unregister_query("high")
            assert runtime.query_names() == []

    def test_clear_detections(self, spec):
        with ShardedRuntime(shard_count=2, spec=spec) as runtime:
            runtime.register_query(HIGH)
            runtime.push_many(
                "kinect_t", [{"ts": 0.0, "player": 1, "rhand_y": 500.0}]
            )
            assert runtime.detections()
            runtime.clear_detections()
            assert runtime.detections() == []

    def test_metrics_account_for_everything(self, spec):
        frames = make_frames(players=4, rounds=20)
        with ShardedRuntime(shard_count=2, spec=spec) as runtime:
            runtime.register_query(HIGH)
            runtime.push_many("kinect_t", frames)
            expected = len(runtime.detections())
            totals = runtime.metrics.totals()
        assert totals["tuples_enqueued"] == len(frames)
        assert totals["tuples_processed"] == len(frames)
        assert totals["tuples_dropped"] == 0
        assert totals["detections"] == expected > 0
        assert totals["queue_depth_hwm"] >= 1
        snapshot = runtime.metrics.snapshot()
        assert len(snapshot["shards"]) == 2

    def test_raising_listener_is_isolated_and_recorded(self, spec):
        frames = make_frames(players=2, rounds=5)
        with ShardedRuntime(shard_count=2, spec=spec) as runtime:
            runtime.register_query(HIGH)
            runtime.add_listener(lambda detection: 1 / 0)
            runtime.push_many("kinect_t", frames)
            detections = runtime.detections()
            assert detections  # the raising listener never killed a shard
            assert len(runtime.listener_errors) == len(detections)
        assert not runtime.failed

    def test_sinks_receive_detections_from_all_shards(self, spec):
        sink = CollectingSink()
        frames = make_frames(players=4)
        with ShardedRuntime(shard_count=2, spec=spec) as runtime:
            handle = runtime.register_query(HIGH, sink=sink)
            runtime.push_many("kinect_t", frames)
            runtime.drain()
            assert len(sink.detections) == len(handle.detections())
            assert {d.partition for d in sink.detections} == {1, 2, 3, 4}

    def test_lifecycle_guards(self, spec):
        runtime = ShardedRuntime(shard_count=2, spec=spec)
        runtime.start()
        with pytest.raises(Exception, match="already started"):
            runtime.start()
        runtime.stop()
        runtime.stop()  # idempotent
        with pytest.raises(Exception, match="stopped"):
            runtime.push_many("kinect_t", [{"ts": 0.0, "player": 1}])


class TestShardFailure:
    def _failing_runtime(self, spec):
        runtime = ShardedRuntime(shard_count=2, spec=spec)
        runtime.start()
        runtime.register_function("boom", lambda value: 1 / 0, 1)
        runtime.register_query(
            'SELECT "b" MATCHING kinect_t(boom(rhand_y) > 0);'
        )
        return runtime

    def test_failing_shard_surfaces_original_exception(self, spec):
        runtime = self._failing_runtime(spec)
        runtime.push_many(
            "kinect_t", [{"ts": 0.0, "player": 1, "rhand_y": 1.0}]
        )
        with pytest.raises(ShardFailedError) as excinfo:
            runtime.drain()
        assert isinstance(excinfo.value.cause, ZeroDivisionError)
        assert isinstance(excinfo.value.__cause__, ZeroDivisionError)

    def test_failure_stops_the_runtime_and_later_feeds_raise(self, spec):
        runtime = self._failing_runtime(spec)
        runtime.push_many(
            "kinect_t", [{"ts": 0.0, "player": 1, "rhand_y": 1.0}]
        )
        with pytest.raises(ShardFailedError):
            runtime.drain()
        assert runtime.failed
        assert runtime.stopped  # healthy shards were shut down gracefully
        with pytest.raises(ShardFailedError):
            runtime.push_many(
                "kinect_t", [{"ts": 1.0, "player": 2, "rhand_y": 1.0}]
            )
        # Collected results stay readable after the failure was surfaced.
        assert runtime.detections() == []

    def test_only_the_failing_partition_is_lost(self, spec):
        # Player 1 and player 2 hash to different shards of a 2-shard
        # runtime; a poisoned tuple for one must not fail the other.
        router = HashPartitionRouter(2)
        p_bad, p_good = 1, 2
        if router.shard_for_key(p_bad) == router.shard_for_key(p_good):
            p_good = next(
                p
                for p in range(2, 20)
                if router.shard_for_key(p) != router.shard_for_key(p_bad)
            )
        runtime = ShardedRuntime(shard_count=2, spec=spec)
        runtime.start()
        runtime.register_function(
            "explode_on", lambda value, target: 1 / 0 if value == target else 1.0, 2
        )
        runtime.register_query(
            'SELECT "b" MATCHING kinect_t(explode_on(player, 1) > 0);'
        )
        runtime.push_many(
            "kinect_t",
            [
                {"ts": 0.0, "player": p_good, "rhand_y": 1.0},
                {"ts": 0.1, "player": p_bad, "rhand_y": 1.0},
            ],
        )
        with pytest.raises(ShardFailedError) as excinfo:
            runtime.drain()
        assert excinfo.value.shard_id == router.shard_for_key(p_bad)
        # The healthy shard's detection survived.
        assert [d.partition for d in runtime.detections()] == [p_good]


class TestProcessExecutor:
    def test_process_shards_detect_like_inline(self, spec):
        frames = make_frames(players=4, rounds=20)
        baseline = per_partition(inline_detections(frames))
        with ShardedRuntime(shard_count=2, spec=spec, executor="process") as runtime:
            runtime.register_query(UPDOWN)
            runtime.register_query(HIGH)
            runtime.push_many("kinect_t", frames)
            assert per_partition(runtime.detections()) == baseline
        assert runtime.stopped

    def test_process_executor_rejects_drop_oldest(self, spec):
        with pytest.raises(ValueError, match="drop"):
            ShardedRuntime(
                shard_count=2,
                spec=spec,
                executor="process",
                backpressure=BackpressurePolicy.DROP_OLDEST,
            ).start()

    def test_process_executor_accepts_drop_newest(self, spec):
        # drop_newest works parent-side (a failed credit acquire rejects
        # the chunk before it crosses the pipe), unlike drop_oldest which
        # would need to reach into the child's queue.
        frames = make_frames(players=2, rounds=10)
        with ShardedRuntime(
            shard_count=2,
            spec=spec,
            executor="process",
            backpressure=BackpressurePolicy.DROP_NEWEST,
        ) as runtime:
            runtime.register_query(HIGH)
            runtime.push_many("kinect_t", frames)
            runtime.drain()
            totals = runtime.metrics.totals()
            assert (
                totals["tuples_processed"] + totals["tuples_dropped"]
                == len(frames)
            )


# ---------------------------------------------------------------------------
# GestureSession integration
# ---------------------------------------------------------------------------


def session_config(shards, **kwargs):
    return SessionConfig(shards=shards, **kwargs)


class TestShardedSession:
    def _run_session(self, shards, frames, batch_size=None):
        events = []
        with GestureSession(session_config(shards, batch_size=batch_size)) as session:
            session.deploy(UPDOWN)
            session.deploy(HIGH)
            session.on_any(events.append)
            session.feed(frames, stream="kinect_t")
            detections = per_partition(session.detections())
        return detections, events

    def test_sharded_session_equals_inline_session(self):
        frames = make_frames()
        inline, inline_events = self._run_session(1, frames)
        sharded, sharded_events = self._run_session(4, frames)
        assert sharded == inline
        assert len(sharded_events) == len(inline_events) > 0
        batched, batched_events = self._run_session(4, frames, batch_size=32)
        assert batched == inline
        assert len(batched_events) == len(inline_events)

    def test_drop_newest_session_is_lossless_under_capacity(self):
        # With the queue bound far above the workload the policy never
        # triggers, so results must equal the inline session's exactly —
        # drop_newest costs nothing until saturation.
        frames = make_frames()
        inline, _ = self._run_session(1, frames)
        with GestureSession(
            session_config(4, backpressure="drop_newest", queue_capacity=100_000)
        ) as session:
            session.deploy(UPDOWN)
            session.deploy(HIGH)
            session.feed(frames, stream="kinect_t")
            assert per_partition(session.detections()) == inline
            totals = session.metrics.totals()
            assert totals["tuples_dropped"] == 0
            assert totals["tuples_processed"] == len(frames)

    def test_events_and_handlers_carry_partitions(self):
        frames = make_frames(players=3)
        with GestureSession(session_config(2)) as session:
            seen = []
            session.deploy(HIGH)
            session.on("high", seen.append)
            session.feed(frames, stream="kinect_t")
            assert {event.player for event in session.events} == {1, 2, 3}
            assert len(seen) == len(session.events)
            assert session.detections("high", partition=2)

    def test_on_any_under_concurrent_feed(self):
        # Two producer threads feed disjoint player populations at once;
        # every detection must be dispatched exactly once.
        frames_a = [
            {"ts": t * 0.01, "player": 1 + (t % 3), "rhand_y": 500.0}
            for t in range(150)
        ]
        frames_b = [
            {"ts": t * 0.01, "player": 11 + (t % 3), "rhand_y": 500.0}
            for t in range(150)
        ]
        with GestureSession(session_config(3, queue_capacity=64)) as session:
            session.deploy(HIGH)
            counter = {"events": 0}
            lock = threading.Lock()

            def handler(event):
                with lock:
                    counter["events"] += 1

            session.on_any(handler)
            threads = [
                threading.Thread(target=session.feed, args=(chunk,), kwargs={"stream": "kinect_t"})
                for chunk in (frames_a, frames_b)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            session.drain()
            assert counter["events"] == 300
            assert len(session.events) == 300
            assert len(session.detections()) == 300

    def test_handler_errors_stay_isolated_on_sharded_sessions(self):
        frames = make_frames(players=2, rounds=8)
        with GestureSession(session_config(2)) as session:
            session.deploy(HIGH)
            session.on("high", lambda event: 1 / 0)
            session.feed(frames, stream="kinect_t")
            assert session.detections("high")
            assert session.handler_errors
            assert all(
                isinstance(failure.error, ZeroDivisionError)
                for failure in session.handler_errors
            )

    def test_shard_failure_surfaces_through_the_session(self):
        with GestureSession(session_config(2)) as session:
            session.runtime.register_function("boom", lambda value: 1 / 0, 1)
            session.deploy('SELECT "b" MATCHING kinect_t(boom(rhand_y) > 0);')
            session.feed(
                [{"ts": 0.0, "player": 1, "rhand_y": 1.0}], stream="kinect_t"
            )
            with pytest.raises(ShardFailedError):
                session.drain()

    def test_metrics_and_guards(self):
        frames = make_frames(players=2, rounds=5)
        with GestureSession(session_config(2)) as session:
            session.deploy(HIGH)
            session.feed(frames, stream="kinect_t")
            session.drain()
            assert session.metrics.totals()["tuples_processed"] == len(frames)
            assert session.runtime is not None
            with pytest.raises(SessionStateError, match="sharded"):
                _ = session.engine
            with pytest.raises(SessionStateError):
                _ = session.view
            assert session.transformer is None
            with pytest.raises(SessionStateError, match="inline"):
                _ = session.workflow
        # Results — including metrics — stay readable after close.
        assert session.metrics.totals()["tuples_processed"] == len(frames)
        assert session.runtime.stopped

    def test_inline_session_has_no_runtime(self):
        with GestureSession() as session:
            assert session.runtime is None
            # Telemetry (on by default) gives the inline session its own
            # registry; with telemetry off there is nothing to report.
            assert session.metrics is not None
        from repro.api.session import SessionConfig

        with GestureSession(SessionConfig(telemetry=False)) as session:
            assert session.runtime is None
            assert session.metrics is None

    def test_handler_can_feed_a_frame_that_detects_again(self):
        # Dispatch is reentrant: a handler reacting to one detection may
        # feed another frame whose detection dispatches recursively.
        with GestureSession() as session:
            session.deploy(HIGH)
            fed = []

            def chain(event):
                if not fed:
                    fed.append(event)
                    session.feed_frame(
                        {"ts": 1.0, "player": 1, "rhand_y": 500.0},
                        stream="kinect_t",
                    )

            session.on("high", chain)
            session.feed_frame(
                {"ts": 0.0, "player": 1, "rhand_y": 500.0}, stream="kinect_t"
            )
            assert len(session.events) == 2

    def test_sharded_session_rejects_an_injected_clock(self):
        from repro.streams import SimulatedClock

        session = GestureSession(session_config(2), clock=SimulatedClock())
        with pytest.raises(SessionStateError, match="clock"):
            session.start()

    def test_clear_resets_sharded_state(self):
        frames = make_frames(players=2, rounds=5)
        with GestureSession(session_config(2)) as session:
            session.deploy(HIGH)
            session.feed(frames, stream="kinect_t")
            assert session.detections()
            session.clear()
            assert session.detections() == []
            assert session.events == []
            session.feed(frames, stream="kinect_t")
            assert session.detections()

    def test_external_engine_cannot_be_sharded(self):
        engine = CEPEngine()
        session = GestureSession(session_config(2), engine=engine)
        with pytest.raises(SessionStateError, match="shard"):
            session.start()


# ---------------------------------------------------------------------------
# Sink and stream concurrency (the guarantees the runtime builds on)
# ---------------------------------------------------------------------------


def _detection(ts=0.0, partition=None, output="x"):
    from repro.cep.matcher import Detection

    return Detection(
        output=output,
        query_name=output,
        timestamp=ts,
        start_timestamp=ts,
        step_timestamps=(ts,),
        partition=partition,
    )


class TestSinkConcurrency:
    def test_collecting_sink_snapshot_under_concurrent_emit(self):
        sink = CollectingSink()
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                sink.emit(_detection(ts=float(i)))
                i += 1

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            deadline = time.monotonic() + 0.3
            while time.monotonic() < deadline:
                snapshot = sink.detections
                # Snapshot is a copy: mutating it cannot corrupt the sink.
                snapshot.clear()
                assert sink.outputs() is not None
        finally:
            stop.set()
            thread.join(timeout=2.0)
        assert len(sink) > 0

    def test_collecting_sink_detections_is_a_snapshot(self):
        sink = CollectingSink()
        sink.emit(_detection())
        snapshot = sink.detections
        snapshot.append(_detection(ts=1.0))
        assert len(sink) == 1

    def test_fan_out_isolates_a_raising_sink(self):
        class ExplodingSink(CollectingSink):
            def emit(self, detection):
                raise RuntimeError("sink is broken")

        healthy = CollectingSink()
        fan = FanOutSink([ExplodingSink(), healthy])
        for ts in (0.0, 1.0):
            # The first failure is re-raised after the full fan-out, so an
            # inline caller still observes it ...
            with pytest.raises(RuntimeError, match="sink is broken"):
                fan.emit(_detection(ts=ts))
        # ... but the healthy sink got everything and failures are recorded.
        assert len(healthy) == 2
        assert len(fan.failures) == 2
        assert all(
            isinstance(failure.error, RuntimeError) for failure in fan.failures
        )

    def test_detector_handler_errors_still_propagate_inline(self):
        # The pre-sharding contract of the raw detector API: a raising
        # on_gesture handler surfaces to the feeding caller (the session's
        # on() guard is the opt-in isolation layer).
        from repro.detection.detector import GestureDetector

        engine = CEPEngine()
        engine.create_stream("kinect_t")
        detector = GestureDetector(engine=engine)
        detector.deploy(HIGH)
        detector.on_gesture("high", lambda event: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            engine.push("kinect_t", {"ts": 0.0, "player": 1, "rhand_y": 500.0})


class TestStreamDeliveryIsolation:
    def test_push_batch_raising_subscriber_does_not_starve_the_rest(self):
        stream = Stream("s")
        seen_tuple, seen_batch = [], []

        def broken(item):
            raise RuntimeError("subscriber is broken")

        stream.subscribe(broken, name="broken")
        stream.subscribe(seen_tuple.append, name="per-tuple")
        stream.subscribe(
            lambda item: None, name="batched", batch_callback=seen_batch.extend
        )
        with pytest.raises(RuntimeError, match="subscriber is broken"):
            stream.push_batch([{"a": 1}, {"a": 2}])
        # Both later subscribers received the full chunk.
        assert seen_tuple == [{"a": 1}, {"a": 2}]
        assert seen_batch == [{"a": 1}, {"a": 2}]
        assert len(stream.delivery_errors) == 1
        assert stream.delivery_errors[0].subscriber == "broken"

    def test_push_raising_subscriber_does_not_starve_the_rest(self):
        stream = Stream("s")
        seen = []

        def broken(item):
            raise RuntimeError("boom")

        stream.subscribe(broken, name="broken")
        stream.subscribe(seen.append, name="ok")
        with pytest.raises(RuntimeError, match="boom"):
            stream.push({"a": 1})
        assert seen == [{"a": 1}]
        assert len(stream.delivery_errors) == 1

    def test_first_error_is_reraised_after_full_fanout(self):
        stream = Stream("s")

        def first(item):
            raise ValueError("first")

        def second(item):
            raise KeyError("second")

        stream.subscribe(first, name="first")
        stream.subscribe(second, name="second")
        with pytest.raises(ValueError, match="first"):
            stream.push({"a": 1})
        assert [f.subscriber for f in stream.delivery_errors] == ["first", "second"]
