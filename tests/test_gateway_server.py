"""End-to-end tests of the gateway server over real loopback sockets.

Every test starts a :class:`GatewayServer` on an ephemeral port, talks
to it with the real :class:`GatewayClient` (or raw sockets, for the
hostile cases) and shuts it down.  The robustness suite's invariant:
nothing a client does — malformed frames, oversized payloads, vanishing
mid-batch, protocol misuse — may wedge the server; a fresh connection
must always work afterwards.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading

import pytest

from repro.api.session import GestureSession, SessionConfig
from repro.errors import ConnectionClosedError, GatewayProtocolError
from repro.gateway import GatewayClient, GatewayConfig, GatewayServer, TenantConfig
from repro.gateway.cli import build_config, main as cli_main, tenant_config_from_dict

HIGH = 'SELECT "high" MATCHING kinect_t(rhand_y > 450);'
UPDOWN = (
    'SELECT "updown" MATCHING ( kinect_t(rhand_y > 400) -> '
    "kinect_t(rhand_y < 100) within 5 seconds );"
)
UNSAT = 'SELECT "never" MATCHING (kinect_t(abs(rhand_x - 400) < -5));'


def make_frames(players=3, rounds=20):
    frames = []
    ts = 0.0
    for round_index in range(rounds):
        for player in range(1, players + 1):
            phase = (round_index + player) % 4
            value = 500.0 if phase < 2 else 50.0
            ts += 0.01
            frames.append({"ts": ts, "player": player, "rhand_y": value})
    return frames


@contextlib.asynccontextmanager
async def serve(**kwargs):
    kwargs.setdefault("port", 0)
    server = GatewayServer(GatewayConfig(**kwargs))
    await server.start()
    try:
        yield server
    finally:
        await server.close()


def run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=60))


async def connect(server, tenant=None, **hello_kwargs):
    client = await GatewayClient.connect("127.0.0.1", server.port)
    if tenant is not None:
        await client.hello(tenant, **hello_kwargs)
    return client


async def http_get(server, target, headers=""):
    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
    writer.write(f"GET {target} HTTP/1.1\r\nHost: x\r\n{headers}\r\n".encode())
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body.decode("utf-8")


class TestHappyPath:
    def test_full_session_matches_direct_feed(self):
        frames = make_frames()

        # The reference: the same tuples straight into the in-process API.
        with GestureSession(SessionConfig()) as direct:
            direct.deploy(HIGH)
            direct.deploy(UPDOWN)
            direct.feed(frames, stream="kinect_t")
            expected = [d.to_state() for d in direct.detections()]
        assert expected  # the workload actually detects something

        async def scenario():
            async with serve() as server:
                client = await connect(server, "t1")
                assert await client.deploy(HIGH) == ["high"]
                assert await client.deploy(UPDOWN) == ["updown"]
                ack = await client.send_tuples(frames, stream="kinect_t", seq=7)
                assert ack["accepted"] == len(frames)
                assert ack["dropped"] == 0
                assert ack["seq"] == 7
                drained = await client.drain()
                assert drained["type"] == "drained"
                detections = await client.detections()
                await client.bye()
                return detections

        assert run(scenario()) == expected

    def test_subscriber_receives_events_in_order(self):
        frames = [
            {"ts": i * 0.1, "player": 1, "rhand_y": 500.0 if i % 2 else 10.0}
            for i in range(10)
        ]

        async def scenario():
            async with serve() as server:
                feeder = await connect(server, "t1")
                watcher = await connect(server, "t1", subscribe=True)
                await feeder.deploy(HIGH)
                await feeder.send_tuples(frames, stream="kinect_t")
                await feeder.drain()
                events = [await watcher.next_event() for _ in range(5)]
                assert [e["type"] for e in events] == ["event"] * 5
                assert [e["gesture"] for e in events] == ["high"] * 5
                timestamps = [e["timestamp"] for e in events]
                assert timestamps == sorted(timestamps)
                # The non-subscribed feeder got no pushes.
                assert feeder.events.empty()

        run(scenario())

    def test_deploy_vocabulary_by_manifest_and_by_name(self, tmp_path):
        manifest_path = tmp_path / "vocab.json"
        manifest_path.write_text(json.dumps({"queries": {"high": HIGH}}))

        async def scenario():
            async with serve(vocabularies={"basic": str(manifest_path)}) as server:
                client = await connect(server, "t1")
                assert await client.deploy_vocabulary(manifest={"updown": UPDOWN}) == [
                    "updown"
                ]
                assert await client.deploy_vocabulary(vocabulary="basic") == ["high"]
                with pytest.raises(GatewayProtocolError) as info:
                    await client.deploy_vocabulary(vocabulary="nope")
                assert info.value.code == "unknown_vocabulary"

        run(scenario())

    def test_tenants_are_isolated_over_the_wire(self):
        frames = make_frames(players=2, rounds=10)

        async def scenario():
            async with serve() as server:
                alice = await connect(server, "alice")
                bob = await connect(server, "bob")
                await alice.deploy(HIGH)
                await bob.deploy(UPDOWN)
                await alice.send_tuples(frames, stream="kinect_t")
                await bob.send_tuples(frames, stream="kinect_t")
                alice_detections = await alice.detections()
                bob_detections = await bob.detections()
                assert {d["query_name"] for d in alice_detections} == {"high"}
                assert {d["query_name"] for d in bob_detections} == {"updown"}
                snapshot = server.tenants["alice"].snapshot()
                assert snapshot["tuples_fed"] == len(frames)

        run(scenario())


class TestProtocolRobustness:
    def test_deploy_before_hello_is_refused_but_recoverable(self):
        async def scenario():
            async with serve() as server:
                client = await GatewayClient.connect("127.0.0.1", server.port)
                with pytest.raises(GatewayProtocolError) as info:
                    await client.deploy(HIGH)
                assert info.value.code == "hello_required"
                assert not info.value.fatal
                # The connection survives and can attach normally.
                await client.hello("t1")
                assert await client.deploy(HIGH) == ["high"]

        run(scenario())

    def test_bad_json_and_unknown_type_cost_nothing(self):
        async def scenario():
            async with serve() as server:
                client = await connect(server, "t1")
                await client.ws.send_text("this is not json")
                await client.ws.send_text('{"type": "launch_missiles"}')
                await client.ws.send_text('[1,2,3]')
                await asyncio.sleep(0.05)
                codes = [e["code"] for e in client.errors]
                assert codes == ["bad_message", "unsupported_type", "bad_message"]
                # Still alive:
                assert (await client.ping())["type"] == "pong"

        run(scenario())

    def test_double_hello_is_refused(self):
        async def scenario():
            async with serve() as server:
                client = await connect(server, "t1")
                with pytest.raises(GatewayProtocolError) as info:
                    await client.hello("t2")
                assert info.value.code == "already_attached"
                assert (await client.ping())["type"] == "pong"

        run(scenario())

    def test_auth_and_unknown_tenant(self):
        tenants = {"secure": TenantConfig(token="s3cret")}

        async def scenario():
            async with serve(tenants=tenants, allow_dynamic_tenants=False) as server:
                # Wrong token: fatal, closed.
                client = await GatewayClient.connect("127.0.0.1", server.port)
                with pytest.raises(GatewayProtocolError) as info:
                    await client.hello("secure", token="wrong")
                assert info.value.code == "auth_failed"
                await client.close()
                # Unknown tenant: fatal unknown_tenant.
                client = await GatewayClient.connect("127.0.0.1", server.port)
                with pytest.raises(GatewayProtocolError) as info:
                    await client.hello("ghost")
                assert info.value.code == "unknown_tenant"
                await client.close()
                # Right token: welcome.
                client = await GatewayClient.connect("127.0.0.1", server.port)
                welcome = await client.hello("secure", token="s3cret")
                assert welcome["tenant"] == "secure"
                assert server.metrics.snapshot()["connections_rejected"] == 2

        run(scenario())

    def test_connection_cap_is_enforced(self):
        tenants = {"small": TenantConfig(max_connections=1)}

        async def scenario():
            async with serve(tenants=tenants) as server:
                first = await connect(server, "small")
                second = await GatewayClient.connect("127.0.0.1", server.port)
                with pytest.raises(GatewayProtocolError) as info:
                    await second.hello("small")
                assert info.value.code == "too_many_connections"
                await first.bye()
                # The slot is free again.
                third = await connect(server, "small")
                assert (await third.ping())["type"] == "pong"

        run(scenario())

    def test_strict_analyzer_rejection_is_a_typed_error(self):
        tenants = {"strict": TenantConfig(session=SessionConfig(analyze="strict"))}

        async def scenario():
            async with serve(tenants=tenants) as server:
                client = await connect(server, "strict")
                with pytest.raises(GatewayProtocolError) as info:
                    await client.deploy(UNSAT)
                assert info.value.code == "analysis_rejected"
                assert "QA" in "".join(info.value.extra["codes"])
                # All-or-nothing for vocabularies too.
                with pytest.raises(GatewayProtocolError) as info:
                    await client.deploy_vocabulary({"good": HIGH, "never": UNSAT})
                assert info.value.code == "analysis_rejected"
                # The session is untouched and usable.
                assert await client.deploy(HIGH) == ["high"]

        run(scenario())

    def test_deploy_failure_is_nonfatal(self):
        async def scenario():
            async with serve() as server:
                client = await connect(server, "t1")
                with pytest.raises(GatewayProtocolError) as info:
                    await client.deploy("SELECT THIS IS NOT THE DIALECT")
                assert info.value.code == "deploy_failed"
                assert (await client.ping())["type"] == "pong"

        run(scenario())

    def test_oversized_message_closes_only_that_connection(self):
        async def scenario():
            async with serve(max_message_bytes=4096) as server:
                client = await connect(server, "t1")
                big = [{"ts": float(i), "player": 1, "rhand_y": 0.0} for i in range(2000)]
                with pytest.raises(ConnectionClosedError):
                    await client.send_tuples(big, stream="kinect_t")
                # The server is fine; a fresh connection works.
                fresh = await connect(server, "t1")
                assert (await fresh.ping())["type"] == "pong"

        run(scenario())

    def test_garbage_after_handshake_never_wedges_the_server(self):
        async def scenario():
            async with serve() as server:
                client = await GatewayClient.connect("127.0.0.1", server.port)
                # Bypass the codec: raw garbage straight into the socket.
                client.ws._writer.write(b"\xff\x00\xde\xad\xbe\xef" * 10)
                await client.ws._writer.drain()
                await asyncio.sleep(0.05)
                fresh = await connect(server, "t1")
                assert (await fresh.ping())["type"] == "pong"

        run(scenario())

    def test_mid_batch_disconnect_preserves_the_tenant(self):
        frames = make_frames(players=1, rounds=30)

        async def scenario():
            async with serve() as server:
                dropper = await connect(server, "t1")
                await dropper.deploy(HIGH)
                # Fire-and-forget tuples, then vanish without a close frame.
                await dropper.send_tuples(frames, stream="kinect_t", ack=False)
                dropper.ws._writer.close()
                # The tenant survives with everything admitted before the
                # drop; a new connection drains and reads it.
                survivor = await connect(server, "t1")
                await survivor.drain()
                detections = await survivor.detections()
                assert detections  # admitted tuples were processed
                assert server.tenants["t1"].failure is None

        run(scenario())

    def test_rate_limit_error_policy_rejects_with_typed_error(self):
        tenants = {
            "limited": TenantConfig(
                policy="error", rate_limit_tuples_per_second=1.0, rate_burst=1.0
            )
        }

        async def scenario():
            async with serve(tenants=tenants) as server:
                client = await connect(server, "limited")
                frames = [{"ts": float(i), "player": 1, "rhand_y": 0.0} for i in range(50)]
                with pytest.raises(GatewayProtocolError) as info:
                    await client.send_tuples(frames, stream="kinect_t")
                assert info.value.code == "rate_limited"
                assert info.value.fatal

        run(scenario())

    def test_rate_limit_drop_policy_drops_and_reports(self):
        tenants = {
            "lossy": TenantConfig(
                policy="drop_newest", rate_limit_tuples_per_second=1.0, rate_burst=1.0
            )
        }

        async def scenario():
            async with serve(tenants=tenants) as server:
                client = await connect(server, "lossy")
                frames = [{"ts": float(i), "player": 1, "rhand_y": 0.0} for i in range(50)]
                ack = await client.send_tuples(frames, stream="kinect_t")
                assert ack["accepted"] == 0
                assert ack["dropped"] == 50
                assert server.metrics.tuples_dropped == 50
                assert server.tenants["lossy"].rate_dropped == 50

        run(scenario())

    def test_backpressure_error_policy_over_the_wire(self):
        tenants = {"tight": TenantConfig(policy="error", pending_capacity=8)}

        async def scenario():
            async with serve(tenants=tenants) as server:
                client = await connect(server, "tight")
                tenant = server.tenants["tight"]
                gate = threading.Event()
                # Hold the tenant worker hostage on the executor so the
                # pending queue genuinely fills.
                blocker = tenant.control("call", lambda session: gate.wait(10))
                await asyncio.sleep(0.05)
                frames = [{"ts": float(i), "player": 1, "rhand_y": 0.0} for i in range(6)]
                assert (await client.send_tuples(frames, stream="kinect_t"))[
                    "accepted"
                ] == 6
                with pytest.raises(GatewayProtocolError) as info:
                    await client.send_tuples(frames, stream="kinect_t")
                assert info.value.code == "backpressure"
                gate.set()
                await blocker

        run(scenario())


class TestHttpEndpoints:
    def test_healthz_and_metrics_formats(self):
        async def scenario():
            async with serve() as server:
                client = await connect(server, "t1")
                await client.deploy(HIGH)
                await client.send_tuples(
                    [{"ts": 1.0, "player": 1, "rhand_y": 500.0}], stream="kinect_t"
                )
                await client.drain()

                status, body = await http_get(server, "/healthz")
                assert status == 200
                health = json.loads(body)
                assert health["status"] == "ok"
                assert health["tenants"] == 1

                status, body = await http_get(server, "/metrics")
                assert status == 200
                assert "# TYPE repro_gateway_tuples_in_total counter" in body
                assert "repro_gateway_tuples_in_total 1" in body
                assert 'tenant="t1"' in body

                status, body = await http_get(server, "/metrics?format=json")
                document = json.loads(body)
                assert document["gateway"]["tuples_accepted"] == 1
                assert document["tenants"]["t1"]["tuples_fed"] == 1

                status, _ = await http_get(server, "/nope")
                assert status == 404
                status, body = await http_get(server, "/healthz")
                assert status == 200

        run(scenario())

    def test_sharded_tenant_metrics_include_shard_series(self):
        tenants = {"sharded": TenantConfig(session=SessionConfig(shards=2))}

        async def scenario():
            async with serve(tenants=tenants) as server:
                client = await connect(server, "sharded")
                await client.deploy(HIGH)
                await client.send_tuples(
                    make_frames(players=2, rounds=5), stream="kinect_t"
                )
                await client.drain()
                _, body = await http_get(server, "/metrics")
                assert 'repro_shard_tuples_processed_total{shard="0",tenant="sharded"}' in body
                assert 'repro_shard_tuples_processed_total{shard="1",tenant="sharded"}' in body

        run(scenario())

    def test_malformed_http_gets_400(self):
        async def scenario():
            async with serve() as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"COMPLETE NONSENSE\r\n\r\n")
                await writer.drain()
                raw = await reader.read(-1)
                writer.close()
                assert b"400" in raw.split(b"\r\n", 1)[0]

        run(scenario())

    def test_bad_websocket_upgrade_is_refused(self):
        async def scenario():
            async with serve() as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(
                    b"GET /ws HTTP/1.1\r\nHost: x\r\nConnection: Upgrade\r\n"
                    b"Upgrade: websocket\r\nSec-WebSocket-Key: abc\r\n"
                    b"Sec-WebSocket-Version: 8\r\n\r\n"
                )
                await writer.drain()
                raw = await reader.read(-1)
                writer.close()
                assert b"426" in raw.split(b"\r\n", 1)[0]
                assert b"Sec-WebSocket-Version: 13" in raw

        run(scenario())


class TestCli:
    def test_tenant_config_from_dict_roundtrip(self):
        config = tenant_config_from_dict(
            {
                "token": "t",
                "policy": "drop_newest",
                "pending_capacity": 128,
                "max_connections": 3,
                "rate_limit_tuples_per_second": 100,
                "session": {"shards": 2, "backpressure": "drop_newest", "analyze": "warn"},
            }
        )
        assert config.token == "t"
        assert config.policy == "drop_newest"
        assert config.session.shards == 2
        assert config.session.analyze == "warn"

    def test_tenant_config_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown tenant config"):
            tenant_config_from_dict({"tokens": "typo"})
        with pytest.raises(ValueError, match="unknown session config"):
            tenant_config_from_dict({"session": {"sharts": 2}})

    def test_build_config_merges_file_and_flags(self, tmp_path):
        config_path = tmp_path / "gateway.json"
        config_path.write_text(
            json.dumps(
                {
                    "port": 9000,
                    "tenants": {"a": {"policy": "error"}},
                    "vocabularies": {"v": "vocab.json"},
                }
            )
        )
        import argparse

        from repro.gateway.cli import _build_parser

        args = _build_parser().parse_args(
            [
                "--config", str(config_path),
                "--policy", "drop_oldest",
                "--shards", "2",
                "--vocabulary", "w=other.json",
                "--no-dynamic-tenants",
            ]
        )
        config = build_config(args)
        assert config.port == 9000
        assert config.tenants["a"].policy == "error"
        assert config.default_tenant.policy == "drop_oldest"
        assert config.default_tenant.session.shards == 2
        assert config.vocabularies == {"v": "vocab.json", "w": "other.json"}
        assert not config.allow_dynamic_tenants

    def test_cli_rejects_bad_config(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert cli_main(["--config", str(bad)]) == 2


class TestShutdown:
    def test_close_drains_tenants_and_refuses_new_work(self):
        frames = make_frames(players=1, rounds=10)

        async def scenario():
            async with serve() as server:
                client = await connect(server, "t1")
                await client.deploy(HIGH)
                # The awaited ack means the frames were admitted; close()
                # must then process them before stopping the worker.
                await client.send_tuples(frames, stream="kinect_t")
                await server.close()
                tenant = server.tenants["t1"]
                # Everything admitted before shutdown was processed.
                assert tenant.tuples_fed == len(frames)
                assert tenant.session.closed

        run(scenario())

    def test_loop_lag_monitor_reports(self):
        async def scenario():
            async with serve(loop_lag_interval=0.01) as server:
                await asyncio.sleep(0.1)
                snapshot = server.metrics.snapshot()
                assert snapshot["loop_lag_ewma_seconds"] >= 0.0
                assert snapshot["loop_lag_max_seconds"] >= 0.0

        run(scenario())


class TestControlPlaneEndpoints:
    """/alerts, /debug/vars, the degraded /healthz and build info."""

    def control_tenant(self):
        from repro.observability.health import WatchdogConfig
        from repro.observability.slo import SLO, BurnRateRule

        slo = SLO.latency(
            "ingest_p99",
            "hist.ingest_to_detection.p99_seconds",
            threshold_seconds=1e-12,  # every sampled p99 violates
            rules=(BurnRateRule(5.0, 0.5, 2.0),),
        )
        return TenantConfig(
            session=SessionConfig(
                sample_interval_seconds=0.02,
                slos=(slo,),
                watchdog=WatchdogConfig(
                    interval_seconds=0.05,
                    stall_after_seconds=0.3,
                    saturation_after_seconds=0.3,
                ),
                profile_hz=100.0,
            )
        )

    def test_alerts_endpoint_reports_fired_alerts(self):
        tenants = {"ctl": self.control_tenant()}

        async def scenario():
            async with serve(tenants=tenants) as server:
                client = await connect(server, "ctl")
                await client.deploy(HIGH)
                await client.send_tuples(make_frames(), stream="kinect_t")
                await client.drain()

                session = server.tenants["ctl"].session
                loop = asyncio.get_running_loop()

                def force_evaluation():
                    session.sampler.sample_once()
                    session.sampler.sample_once()

                await loop.run_in_executor(None, force_evaluation)
                status, body = await http_get(server, "/alerts")
                assert status == 200
                document = json.loads(body)
                assert document["count"] >= 1
                alert = document["alerts"][0]
                assert alert["tenant"] == "ctl"
                assert alert["slo"] == "ingest_p99"
                assert alert["severity"] == "page"

        run(scenario())

    def test_alerts_endpoint_empty_without_slos(self):
        async def scenario():
            async with serve() as server:
                await connect(server, "t1")
                status, body = await http_get(server, "/alerts")
                assert status == 200
                assert json.loads(body) == {"alerts": [], "count": 0}

        run(scenario())

    def test_debug_vars_serves_profile_series_and_health(self):
        tenants = {"ctl": self.control_tenant()}

        async def scenario():
            async with serve(tenants=tenants) as server:
                client = await connect(server, "ctl")
                await client.deploy(HIGH)
                await client.send_tuples(make_frames(rounds=40), stream="kinect_t")
                await client.drain()

                session = server.tenants["ctl"].session
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, session.sampler.sample_once)
                status, body = await http_get(server, "/debug/vars")
                assert status == 200
                document = json.loads(body)
                entry = document["tenants"]["ctl"]
                assert entry["profile"]["enabled"]
                assert entry["health"]["status"] in ("ok", "degraded")
                assert entry["sampler_ticks"] >= 0
                assert "shard.tuples_processed" in entry["series"]
                assert "gateway" in document

        run(scenario())

    def test_forced_stall_degrades_healthz_naming_the_shard(self):
        tenants = {"ctl": self.control_tenant()}

        async def scenario():
            async with serve(tenants=tenants) as server:
                await connect(server, "ctl")
                session = server.tenants["ctl"].session
                session.watchdog.add_liveness_source(
                    lambda: [
                        {
                            "shard_id": 9,
                            "alive": True,
                            "backlog": 9,
                            "tuples_processed": 42,
                        }
                    ]
                )
                deadline = asyncio.get_running_loop().time() + 10.0
                while True:
                    status, body = await http_get(server, "/healthz")
                    document = json.loads(body)
                    if document["status"] == "degraded":
                        break
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.05)
                # Degraded serves 200 (load balancers keep routing); only
                # unhealthy turns 503.
                assert status == 200
                subjects = {reason["subject"] for reason in document["reasons"]}
                assert "shard-9" in subjects
                tenancy = {reason["tenant"] for reason in document["reasons"]}
                assert tenancy == {"ctl"}

        run(scenario())

    def test_metrics_expositions_carry_build_info_and_scrape_duration(self):
        async def scenario():
            async with serve() as server:
                client = await connect(server, "t1")
                await client.deploy(HIGH)
                await client.send_tuples(
                    [{"ts": 1.0, "player": 1, "rhand_y": 500.0}], stream="kinect_t"
                )
                await client.drain()
                _, body = await http_get(server, "/metrics")
                return body

        body = run(scenario())
        assert "# TYPE repro_build_info gauge" in body
        assert 'repro_build_info{' in body
        assert 'version="' in body and 'python="' in body
        assert "# TYPE repro_gateway_scrape_duration_seconds gauge" in body
        assert "repro_gateway_scrape_duration_seconds" in body

    def test_session_prometheus_carries_build_info(self):
        with GestureSession(SessionConfig()) as session:
            session.deploy(HIGH)
            session.feed(
                [{"ts": 1.0, "player": 1, "rhand_y": 500.0}], stream="kinect_t"
            )
            text = session.metrics.to_prometheus()
        assert text.splitlines()[0].startswith("# HELP repro_build_info")
        assert "repro_scrape_duration_seconds" in text.splitlines()[-1]
