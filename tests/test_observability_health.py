"""Health watchdog: stall, saturation and fsync detection without false
positives on idle (the ``ReplayController.pause()`` case in particular).

Unit tests drive :meth:`HealthWatchdog.check` with an explicit clock and
a scripted liveness source; the integration tests exercise real sessions
— a forced stall must flip health to ``degraded`` naming the shard, and
a paused replay must not.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api.session import GestureSession, SessionConfig
from repro.observability.health import (
    HealthReason,
    HealthReport,
    HealthWatchdog,
    WatchdogConfig,
)

HIGH = 'SELECT "high" MATCHING kinect_t(rhand_y > 450);'

CONFIG = WatchdogConfig(
    interval_seconds=0.05,
    stall_after_seconds=1.0,
    saturation_ratio=0.9,
    saturation_after_seconds=1.0,
    fsync_stall_seconds=1.0,
)


class ScriptedShards:
    """A liveness source whose rows the test mutates between checks."""

    def __init__(self, *rows):
        self.rows = list(rows)

    def __call__(self):
        return [dict(row) for row in self.rows]


def shard_row(shard_id=0, alive=True, backlog=0, processed=0, depth=None, capacity=None):
    row = {
        "shard_id": shard_id,
        "alive": alive,
        "backlog": backlog,
        "tuples_processed": processed,
    }
    if depth is not None:
        row["queue_depth"] = depth
        row["queue_capacity"] = capacity
    return row


class TestWatchdogConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval_seconds": 0.0},
            {"stall_after_seconds": 0.0},
            {"saturation_ratio": 0.0},
            {"saturation_ratio": 1.5},
            {"saturation_after_seconds": 0.0},
            {"fsync_stall_seconds": -1.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WatchdogConfig(**kwargs)


class TestShardChecks:
    def make(self, *rows):
        watchdog = HealthWatchdog(CONFIG)
        source = ScriptedShards(*rows)
        watchdog.add_liveness_source(source)
        return watchdog, source

    def test_progressing_shard_is_ok(self):
        watchdog, source = self.make(shard_row(backlog=5, processed=10))
        assert watchdog.check(now=0.0).ok
        source.rows[0]["tuples_processed"] = 20
        for now in (1.0, 2.0, 3.0):
            source.rows[0]["tuples_processed"] += 10
            assert watchdog.check(now=now).ok

    def test_stalled_shard_degrades_then_goes_unhealthy(self):
        watchdog, _ = self.make(shard_row(shard_id=2, backlog=7, processed=10))
        assert watchdog.check(now=0.0).ok
        report = watchdog.check(now=1.5)
        assert report.status == "degraded"
        (reason,) = report.reasons
        assert reason.code == "shard-stalled"
        assert reason.subject == "shard-2"
        assert "shard-2" in reason.detail
        assert reason.data["backlog"] == 7
        # 3x the stall window with still no progress: unhealthy.
        report = watchdog.check(now=3.5)
        assert report.status == "unhealthy"

    def test_progress_resets_the_stall_clock(self):
        watchdog, source = self.make(shard_row(backlog=7, processed=10))
        watchdog.check(now=0.0)
        source.rows[0]["tuples_processed"] = 11
        assert watchdog.check(now=1.5).ok
        # Frozen again, but the mark was refreshed at 1.5.
        assert watchdog.check(now=2.0).ok
        assert watchdog.check(now=2.7).status == "degraded"

    def test_idle_shard_never_stalls(self):
        # Backlog zero with a frozen processed counter is idle, not stuck —
        # exactly what a paused replay looks like.
        watchdog, _ = self.make(shard_row(backlog=0, processed=1000))
        for now in (0.0, 5.0, 50.0, 500.0):
            assert watchdog.check(now=now).ok

    def test_dead_shard_with_backlog_is_unhealthy(self):
        watchdog, _ = self.make(shard_row(shard_id=1, alive=False, backlog=3))
        report = watchdog.check(now=0.0)
        assert report.status == "unhealthy"
        (reason,) = report.reasons
        assert reason.code == "shard-dead"
        assert reason.subject == "shard-1"

    def test_dead_drained_shard_is_ok(self):
        # A worker that exited with nothing pending (clean shutdown).
        watchdog, _ = self.make(shard_row(alive=False, backlog=0))
        assert watchdog.check(now=0.0).ok

    def test_saturated_queue_degrades_after_sustained_window(self):
        row = shard_row(backlog=90, processed=10, depth=95, capacity=100)
        watchdog, source = self.make(row)
        watchdog.check(now=0.0)
        source.rows[0]["tuples_processed"] = 50  # progressing, just full
        report = watchdog.check(now=1.5)
        codes = {reason.code for reason in report.reasons}
        assert "queue-saturated" in codes
        assert report.status == "degraded"
        # Queue drains: the saturation clock resets.
        source.rows[0]["queue_depth"] = 10
        source.rows[0]["tuples_processed"] = 90
        assert watchdog.check(now=2.0).ok
        source.rows[0]["queue_depth"] = 95
        source.rows[0]["tuples_processed"] = 130
        assert watchdog.check(now=2.5).ok  # newly saturated, not sustained

    def test_raising_source_counts_not_crashes(self):
        watchdog = HealthWatchdog(CONFIG)
        watchdog.add_liveness_source(lambda: (_ for _ in ()).throw(RuntimeError()))
        assert watchdog.check(now=0.0).ok
        assert watchdog.source_errors == 1


class TestFsyncChecks:
    def test_appends_without_fsyncs_degrade(self):
        counters = {"entries_appended": 0, "fsyncs": 0}
        watchdog = HealthWatchdog(CONFIG)
        watchdog.add_durability_source(lambda: dict(counters))
        assert watchdog.check(now=0.0).ok
        counters["entries_appended"] = 50  # appends flowing, fsync frozen
        assert watchdog.check(now=0.5).ok  # mark set at 0.5
        report = watchdog.check(now=2.0)
        assert report.status == "degraded"
        (reason,) = report.reasons
        assert reason.code == "fsync-stalled"
        assert reason.subject == "durability"

    def test_advancing_fsyncs_stay_ok(self):
        counters = {"entries_appended": 0, "fsyncs": 0}
        watchdog = HealthWatchdog(CONFIG)
        watchdog.add_durability_source(lambda: dict(counters))
        for now in (0.0, 1.0, 2.0, 3.0):
            counters["entries_appended"] += 10
            counters["fsyncs"] += 1
            assert watchdog.check(now=now).ok

    def test_no_appends_is_idle_not_stalled(self):
        counters = {"entries_appended": 100, "fsyncs": 7}
        watchdog = HealthWatchdog(CONFIG)
        watchdog.add_durability_source(lambda: dict(counters))
        for now in (0.0, 5.0, 50.0):
            assert watchdog.check(now=now).ok


class TestProbesAndReport:
    def test_probe_reasons_fold_into_status(self):
        watchdog = HealthWatchdog(CONFIG)
        watchdog.add_probe(
            lambda: [
                HealthReason(
                    code="consumer-slow",
                    severity="degraded",
                    subject="gateway",
                    detail="2 slow detection consumers",
                )
            ]
        )
        report = watchdog.check(now=0.0)
        assert report.status == "degraded"
        assert report.reasons[0].code == "consumer-slow"

    def test_worst_severity_wins(self):
        watchdog = HealthWatchdog(CONFIG)
        watchdog.add_probe(
            lambda: [
                HealthReason("a", "degraded", "x", ""),
                HealthReason("b", "unhealthy", "y", ""),
            ]
        )
        assert watchdog.check(now=0.0).status == "unhealthy"

    def test_report_to_dict_shape(self):
        watchdog = HealthWatchdog(CONFIG)
        body = watchdog.check(now=0.0).to_dict()
        assert body["status"] == "ok"
        assert body["reasons"] == []
        assert body["checks"] == 1

    def test_report_never_blocks_on_sources(self):
        gate = threading.Event()

        def slow_source():
            gate.wait(5.0)
            return []

        watchdog = HealthWatchdog(CONFIG)
        watchdog.add_liveness_source(slow_source)
        started = time.perf_counter()
        report = watchdog.report()  # cached, must not call the source
        assert time.perf_counter() - started < 1.0
        assert isinstance(report, HealthReport)
        gate.set()

    def test_background_thread_is_named(self):
        watchdog = HealthWatchdog(CONFIG)
        watchdog.start()
        try:
            assert watchdog.running
            assert "repro-health-watchdog" in {
                thread.name for thread in threading.enumerate()
            }
        finally:
            watchdog.stop()
        assert not watchdog.running


class TestSessionIntegration:
    def watchdog_config(self):
        return WatchdogConfig(
            interval_seconds=0.05,
            stall_after_seconds=0.3,
            saturation_after_seconds=0.3,
            fsync_stall_seconds=5.0,
        )

    def test_forced_stall_degrades_naming_the_shard(self):
        config = SessionConfig(shards=2, watchdog=self.watchdog_config())
        with GestureSession(config) as session:
            session.deploy(HIGH)
            # Forced stall: a poisoned liveness reading reports shard 9
            # (a subject the real source does not refresh) with backlog
            # and a frozen processed counter.
            session.watchdog.add_liveness_source(
                lambda: [shard_row(shard_id=9, backlog=9, processed=42)]
            )
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                report = session.health()
                if report.status == "degraded":
                    break
                time.sleep(0.05)
            assert report.status == "degraded"
            subjects = {reason.subject for reason in report.reasons}
            assert "shard-9" in subjects

    def test_live_session_reports_ok(self):
        config = SessionConfig(shards=2, watchdog=self.watchdog_config())
        with GestureSession(config) as session:
            session.deploy(HIGH)
            frames = [
                {"ts": index * 0.01, "player": 1 + index % 3, "rhand_y": 500.0}
                for index in range(60)
            ]
            session.feed(frames, stream="kinect_t")
            session.drain()
            time.sleep(0.5)  # several watchdog beats over the idle pipeline
            report = session.health()
            assert report.ok, report.to_dict()

    def test_paused_replay_is_not_a_stall(self, tmp_path):
        # A watched durable session records a feed, then replays its own
        # log with the controller paused mid-stream: the watched pipeline
        # idles and must stay ok well beyond the stall window (the
        # ReplayController.pause() case).
        from repro.persistence import DurabilityConfig

        config = SessionConfig(watchdog=self.watchdog_config())
        durability = DurabilityConfig(tmp_path / "log")
        with GestureSession(config, durability=durability) as session:
            session.deploy(HIGH)
            frames = [
                {"ts": index * 0.01, "player": 1 + index % 3, "rhand_y": 500.0}
                for index in range(60)
            ]
            # Feed in chunks: each chunk is one log entry, so the replay
            # below can pause with entries still pending.
            for start in range(0, len(frames), 6):
                session.feed(frames[start : start + 6], stream="kinect_t")
            controller = session.replay(config=SessionConfig())
            applied = controller.step(3)
            assert applied > 0
            controller.pause()
            assert not controller.finished
            time.sleep(1.2)  # 4x the stall window while paused
            report = session.health()
            assert report.ok, report.to_dict()
            controller.target.close()
