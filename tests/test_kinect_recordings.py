"""Unit tests for repro.kinect.recordings."""

import pytest

from repro.kinect.recordings import (
    Recording,
    generate_dataset,
    load_recording_csv,
    recordings_by_gesture,
    save_recording_csv,
)
from repro.kinect.simulator import KinectSimulator
from repro.kinect.trajectories import SwipeTrajectory, standard_gesture_catalog
from repro.kinect.users import user_by_name
from repro.streams import SimulatedClock


@pytest.fixture
def swipe_recording():
    simulator = KinectSimulator(clock=SimulatedClock())
    frames = simulator.perform(SwipeTrajectory("right"))
    return Recording(gesture="swipe_right", user="adult", frames=frames)


class TestRecording:
    def test_len_and_duration(self, swipe_recording):
        assert len(swipe_recording) == len(swipe_recording.frames)
        assert swipe_recording.duration_s > 1.0

    def test_duration_of_short_recording_is_zero(self):
        assert Recording("x", "adult", frames=[{"ts": 1.0}]).duration_s == 0.0

    def test_fields_put_timestamp_first(self, swipe_recording):
        fields = swipe_recording.fields()
        assert fields[0] == "ts"
        assert fields[1] == "player"

    def test_fields_of_empty_recording(self):
        assert Recording("x", "adult").fields() == []


class TestCsvRoundTrip:
    def test_round_trip_preserves_metadata_and_frames(self, swipe_recording, tmp_path):
        path = tmp_path / "swipe.csv"
        save_recording_csv(swipe_recording, path)
        loaded = load_recording_csv(path)
        assert loaded.gesture == "swipe_right"
        assert loaded.user == "adult"
        assert len(loaded) == len(swipe_recording)
        assert loaded.frames[0]["rhand_x"] == pytest.approx(
            swipe_recording.frames[0]["rhand_x"], abs=1e-6
        )

    def test_player_column_is_integer_after_loading(self, swipe_recording, tmp_path):
        path = tmp_path / "swipe.csv"
        save_recording_csv(swipe_recording, path)
        loaded = load_recording_csv(path)
        assert isinstance(loaded.frames[0]["player"], int)


class TestGenerateDataset:
    def test_dataset_covers_all_gestures_and_users(self):
        catalog = {"swipe_right": standard_gesture_catalog()["swipe_right"]}
        users = [user_by_name("adult"), user_by_name("child")]
        recordings = generate_dataset(
            catalog, users=users, samples_per_gesture=2, include_idle=True
        )
        grouped = recordings_by_gesture(recordings)
        assert len(grouped["swipe_right"]) == 4  # 2 users x 2 samples
        assert len(grouped["idle"]) == 2

    def test_dataset_is_reproducible_with_same_seed(self):
        catalog = {"swipe_right": standard_gesture_catalog()["swipe_right"]}
        users = [user_by_name("adult")]
        first = generate_dataset(catalog, users=users, samples_per_gesture=1, seed=3)
        second = generate_dataset(catalog, users=users, samples_per_gesture=1, seed=3)
        assert first[0].frames[0]["rhand_x"] == pytest.approx(
            second[0].frames[0]["rhand_x"]
        )

    def test_different_seeds_differ(self):
        catalog = {"swipe_right": standard_gesture_catalog()["swipe_right"]}
        users = [user_by_name("adult")]
        first = generate_dataset(catalog, users=users, samples_per_gesture=1, seed=3)
        second = generate_dataset(catalog, users=users, samples_per_gesture=1, seed=4)
        assert first[0].frames[0]["rhand_x"] != pytest.approx(
            second[0].frames[0]["rhand_x"]
        )

    def test_requires_positive_sample_count(self):
        with pytest.raises(ValueError):
            generate_dataset({}, samples_per_gesture=0)
