"""Unit tests for the NFA matcher runtime."""

import pytest

from repro.cep.expressions import Comparison, FieldRef, Literal
from repro.cep.matcher import MatcherConfig, NFAMatcher
from repro.cep.nfa import compile_pattern
from repro.cep.query import ConsumePolicy, EventPattern, SelectPolicy, sequence


def _step(low: float, high: float) -> EventPattern:
    """Event pattern matching low <= x < high."""
    predicate = Comparison("<", FieldRef("x"), Literal(high))
    lower = Comparison(">=", FieldRef("x"), Literal(low))
    from repro.cep.expressions import BooleanOp

    return EventPattern(stream="s", predicate=BooleanOp("and", [lower, predicate]))


def _matcher(within=None, select=SelectPolicy.FIRST, consume=ConsumePolicy.ALL,
             config=None, steps=3):
    events = [_step(i * 100, i * 100 + 50) for i in range(steps)]
    pattern = compile_pattern(
        sequence(events, within_seconds=within, select=select, consume=consume)
    )
    return NFAMatcher(pattern, output="g", config=config or MatcherConfig())


def _tuples(values, start_ts=0.0, dt=0.1):
    return [{"x": value, "ts": start_ts + index * dt} for index, value in enumerate(values)]


class TestBasicMatching:
    def test_detects_a_simple_sequence(self):
        matcher = _matcher()
        detections = matcher.process_many(_tuples([10, 110, 210]), "s")
        assert len(detections) == 1
        assert detections[0].output == "g"

    def test_non_matching_tuples_are_skipped(self):
        matcher = _matcher()
        detections = matcher.process_many(_tuples([10, 999, 110, 999, 210]), "s")
        assert len(detections) == 1

    def test_incomplete_sequence_produces_nothing(self):
        matcher = _matcher()
        assert matcher.process_many(_tuples([10, 110]), "s") == []

    def test_out_of_order_events_do_not_match(self):
        matcher = _matcher()
        assert matcher.process_many(_tuples([210, 110, 10]), "s") == []

    def test_detection_reports_duration_and_steps(self):
        matcher = _matcher()
        detections = matcher.process_many(_tuples([10, 110, 210], dt=0.2), "s")
        detection = detections[0]
        assert detection.duration == pytest.approx(0.4)
        assert len(detection.step_timestamps) == 3
        assert detection.matched is not None and len(detection.matched) == 3

    def test_single_step_pattern_fires_immediately(self):
        matcher = _matcher(steps=1)
        detections = matcher.process_many(_tuples([10, 20]), "s")
        assert len(detections) == 2  # every matching tuple is its own match

    def test_tuples_of_other_streams_are_ignored(self):
        matcher = _matcher()
        assert matcher.process({"x": 10, "ts": 0.0}, "other") == []
        assert matcher.active_runs == 0

    def test_matched_tuples_can_be_disabled(self):
        matcher = _matcher(config=MatcherConfig(store_matched_tuples=False))
        detections = matcher.process_many(_tuples([10, 110, 210]), "s")
        assert detections[0].matched is None


class TestTimeConstraints:
    def test_within_violation_prevents_detection(self):
        matcher = _matcher(within=0.5)
        # Steps are 0.4s apart -> total 0.8s > 0.5s window.
        assert matcher.process_many(_tuples([10, 110, 210], dt=0.4), "s") == []

    def test_within_satisfied_detects(self):
        matcher = _matcher(within=1.0)
        assert len(matcher.process_many(_tuples([10, 110, 210], dt=0.4), "s")) == 1

    def test_expired_runs_are_pruned(self):
        matcher = _matcher(within=0.5)
        matcher.process({"x": 10, "ts": 0.0}, "s")
        assert matcher.active_runs == 1
        matcher.process({"x": 999, "ts": 10.0}, "s")
        assert matcher.active_runs == 0
        assert matcher.stats.runs_pruned >= 1

    def test_restart_after_expiry_still_detects(self):
        matcher = _matcher(within=1.0)
        matcher.process_many(_tuples([10], start_ts=0.0), "s")
        detections = matcher.process_many(_tuples([10, 110, 210], start_ts=5.0), "s")
        assert len(detections) == 1

    def test_nested_constraint_checked_for_inner_group(self):
        events = [_step(0, 50), _step(100, 150), _step(200, 250)]
        inner = sequence(events[:2], within_seconds=0.2)
        outer = sequence([inner, events[2]], within_seconds=5.0)
        matcher = NFAMatcher(compile_pattern(outer), output="g")
        # Inner pair takes 0.3s -> violates the 0.2s inner window.
        assert matcher.process_many(_tuples([10, 110, 210], dt=0.3), "s") == []

    def test_run_ttl_prunes_unconstrained_patterns(self):
        matcher = _matcher(config=MatcherConfig(run_ttl_seconds=1.0))
        matcher.process({"x": 10, "ts": 0.0}, "s")
        matcher.process({"x": 999, "ts": 5.0}, "s")
        assert matcher.active_runs == 0

    def test_run_ttl_does_not_apply_to_constrained_patterns(self):
        # Per MatcherConfig docs the TTL is a fallback for patterns without
        # any `within`; a long-window pattern must not be pruned by it.
        matcher = _matcher(within=5.0, config=MatcherConfig(run_ttl_seconds=1.0))
        matcher.process({"x": 10, "ts": 0.0}, "s")
        matcher.process({"x": 999, "ts": 2.0}, "s")  # beyond TTL, inside window
        assert matcher.active_runs == 1
        detections = matcher.process_many(
            [{"x": 110, "ts": 3.0}, {"x": 210, "ts": 4.0}], "s"
        )
        assert len(detections) == 1

    def test_run_ttl_prunes_steps_not_covered_by_any_constraint(self):
        # Only the inner pair is constrained; a run stuck at the uncovered
        # first step must still fall under the TTL or it would live forever.
        events = [_step(0, 50), _step(100, 150), _step(200, 250)]
        inner = sequence(events[1:], within_seconds=1.0)
        outer = sequence([events[0], inner])
        matcher = NFAMatcher(
            compile_pattern(outer), output="g",
            config=MatcherConfig(run_ttl_seconds=2.0),
        )
        matcher.process({"x": 10, "ts": 0.0}, "s")
        assert matcher.active_runs == 1
        matcher.process({"x": 999, "ts": 5.0}, "s")
        assert matcher.active_runs == 0
        assert matcher.stats.runs_pruned == 1


class TestPolicies:
    def test_consume_all_clears_partial_matches(self):
        matcher = _matcher(consume=ConsumePolicy.ALL)
        tuples = _tuples([10, 10, 110, 210])
        detections = matcher.process_many(tuples, "s")
        assert len(detections) == 1
        assert matcher.active_runs == 0

    def test_consume_none_allows_overlapping_detections(self):
        matcher = _matcher(consume=ConsumePolicy.NONE, select=SelectPolicy.ALL)
        # Two start events -> two runs -> both complete on the same suffix.
        detections = matcher.process_many(_tuples([10, 20, 110, 210]), "s")
        assert len(detections) == 2

    def test_select_first_reports_earliest_run(self):
        matcher = _matcher(select=SelectPolicy.FIRST, consume=ConsumePolicy.NONE)
        detections = matcher.process_many(_tuples([10, 20, 110, 210]), "s")
        assert len(detections) == 1
        assert detections[0].start_timestamp == pytest.approx(0.0)

    def test_select_last_reports_latest_run(self):
        matcher = _matcher(select=SelectPolicy.LAST, consume=ConsumePolicy.NONE)
        detections = matcher.process_many(_tuples([10, 20, 110, 210]), "s")
        assert len(detections) == 1
        assert detections[0].start_timestamp == pytest.approx(0.1)


class TestRunManagement:
    def test_max_active_runs_is_enforced(self):
        matcher = _matcher(config=MatcherConfig(max_active_runs=5, run_ttl_seconds=None))
        matcher.process_many(_tuples([10] * 20), "s")
        assert matcher.active_runs == 5
        assert matcher.stats.runs_suppressed == 15

    def test_progress_and_furthest_step(self):
        matcher = _matcher()
        assert matcher.progress() == 0.0
        matcher.process({"x": 10, "ts": 0.0}, "s")
        assert matcher.furthest_step() == 1
        matcher.process({"x": 110, "ts": 0.1}, "s")
        assert matcher.progress() == pytest.approx(2 / 3)

    def test_reset_discards_partial_matches(self):
        matcher = _matcher()
        matcher.process({"x": 10, "ts": 0.0}, "s")
        matcher.reset()
        assert matcher.active_runs == 0

    def test_stats_track_predicate_evaluations(self):
        matcher = _matcher()
        matcher.process_many(_tuples([10, 110, 210]), "s")
        assert matcher.stats.tuples_processed == 3
        assert matcher.stats.predicate_evaluations > 0
        assert matcher.stats.detections == 1

    def test_each_tuple_advances_a_run_by_at_most_one_step(self):
        # A tuple satisfying both step 0 and step 1 must not jump two steps.
        from repro.cep.expressions import Literal as Lit

        events = [
            EventPattern(stream="s", predicate=Lit(True)),
            EventPattern(stream="s", predicate=Lit(True)),
        ]
        matcher = NFAMatcher(compile_pattern(sequence(events)), output="g")
        assert matcher.process({"ts": 0.0}, "s") == []
        assert len(matcher.process({"ts": 0.1}, "s")) == 1

    def test_remove_run_uses_identity_not_value_equality(self):
        # Two users starting the same pose in the same frame produce runs
        # with identical field values; removal must evict the right object.
        from repro.cep.matcher import _Run

        matcher = _matcher()
        twin_a = _Run(next_step=1, start_timestamp=0.0, step_timestamps=[0.0])
        twin_b = _Run(next_step=1, start_timestamp=0.0, step_timestamps=[0.0])
        twin_a.index = 0
        twin_b.index = 1
        runs = [twin_a, twin_b]
        matcher._remove_run(runs, twin_b)
        assert len(runs) == 1
        assert runs[0] is twin_a
        # Removing the survivor (now possibly swapped) also works.
        matcher._remove_run(runs, twin_a)
        assert runs == []
        # Double removal is a no-op, not an error or a wrong eviction.
        matcher._remove_run(runs, twin_a)
        assert runs == []

    def test_single_step_pattern_detects_even_at_run_cap(self):
        # A single-step match never occupies a run slot; the cap must not
        # suppress its completion.
        matcher = _matcher(steps=1, config=MatcherConfig(max_active_runs=0))
        detections = matcher.process_many(_tuples([10, 20]), "s")
        assert len(detections) == 2
        assert matcher.stats.runs_suppressed == 0

    def test_irrelevant_streams_short_circuit_before_predicates(self):
        matcher = _matcher()
        matcher.process({"x": 10, "ts": 0.0}, "other")
        assert matcher.stats.tuples_processed == 1
        assert matcher.stats.predicate_evaluations == 0


class TestBatchProcessing:
    def test_process_batch_matches_per_tuple_detections(self):
        values = [10, 999, 110, 20, 210, 10, 110, 210, 999]
        per_tuple = _matcher(within=1.0)
        batched = _matcher(within=1.0)
        expected = per_tuple.process_many(_tuples(values), "s")
        actual = batched.process_batch(_tuples(values), "s")
        assert actual == expected
        assert len(expected) > 0
        assert batched.stats.detections == per_tuple.stats.detections

    def test_process_batch_across_chunks_matches_per_tuple(self):
        values = [10, 110, 999, 10, 210, 110, 210, 10, 110, 210]
        per_tuple = _matcher(within=1.0)
        chunked = _matcher(within=1.0)
        expected = per_tuple.process_many(_tuples(values), "s")
        tuples = _tuples(values)
        actual = []
        for start in range(0, len(tuples), 3):
            actual.extend(chunked.process_batch(tuples[start : start + 3], "s"))
        assert actual == expected

    def test_process_batch_ignores_irrelevant_streams(self):
        matcher = _matcher()
        assert matcher.process_batch(_tuples([10, 110]), "other") == []
        assert matcher.stats.tuples_processed == 2
        assert matcher.active_runs == 0

    def test_process_batch_prunes_at_the_batch_boundary(self):
        matcher = _matcher(within=0.5)
        matcher.process({"x": 10, "ts": 0.0}, "s")
        assert matcher.active_runs == 1
        matcher.process_batch(_tuples([999, 999], start_ts=10.0), "s")
        assert matcher.active_runs == 0
        assert matcher.stats.runs_pruned >= 1

    def test_process_batch_matches_per_tuple_under_ttl(self):
        # TTL expiry is only checked by pruning, so TTL-governed patterns
        # must prune per tuple inside a batch to stay equivalent.
        per_tuple = _matcher(config=MatcherConfig(run_ttl_seconds=0.5))
        batched = _matcher(config=MatcherConfig(run_ttl_seconds=0.5))
        tuples = [
            {"x": 10, "ts": 0.0},
            {"x": 110, "ts": 0.2},
            {"x": 210, "ts": 1.0},  # arrives after the TTL expired
        ]
        expected = per_tuple.process_many(tuples, "s")
        assert expected == []  # the run must be pruned before completing
        assert batched.process_batch(tuples, "s") == expected

    def test_process_batch_matches_per_tuple_at_the_run_cap(self):
        # Expired runs lingering mid-batch must not hold run slots and
        # suppress the start that completes the gesture.
        config = MatcherConfig(max_active_runs=2, run_ttl_seconds=None)
        per_tuple = _matcher(within=0.5, steps=2, config=config)
        batched = _matcher(within=0.5, steps=2, config=config)
        # Hold the start pose long enough that early runs expire, then
        # finish the gesture: [0, 0.4, 0.8, 1.2, 1.6(start), 1.7(finish)].
        tuples = _tuples([10, 10, 10, 10, 10, 110], dt=0.4)
        tuples[-1]["ts"] = 1.7
        expected = per_tuple.process_many(tuples, "s")
        assert len(expected) == 1
        assert batched.process_batch(tuples, "s") == expected
        assert batched.stats.runs_suppressed == per_tuple.stats.runs_suppressed

    def test_process_batch_accepts_explicit_timestamps(self):
        matcher = _matcher(within=1.0)
        records = [{"x": 10}, {"x": 110}, {"x": 210}]
        detections = matcher.process_batch(records, "s", timestamps=[0.0, 0.3, 0.6])
        assert len(detections) == 1
        assert detections[0].step_timestamps == (0.0, 0.3, 0.6)

    def test_empty_batch_is_a_no_op(self):
        matcher = _matcher()
        assert matcher.process_batch([], "s") == []
        assert matcher.stats.tuples_processed == 0
