"""Unit tests for the gesture database and serialisation."""

import pytest

from repro.core.description import GestureDescription
from repro.core.windows import PoseWindow, Window
from repro.errors import (
    DuplicateGestureError,
    GestureNotFoundError,
    SerializationError,
)
from repro.kinect.recordings import Recording
from repro.storage import (
    GestureDatabase,
    description_from_json,
    description_to_json,
    recording_from_json,
    recording_to_json,
)


def _description(name="swipe_right"):
    return GestureDescription(
        name=name,
        poses=[
            PoseWindow(0, Window({"rhand_x": 0.0, "rhand_y": 150.0},
                                 {"rhand_x": 50.0, "rhand_y": 50.0})),
            PoseWindow(1, Window({"rhand_x": 800.0, "rhand_y": 150.0},
                                 {"rhand_x": 50.0, "rhand_y": 50.0}), support=3),
        ],
        joints=["rhand"],
        sample_count=3,
        mean_duration_s=1.2,
        max_duration_s=1.4,
        metadata={"note": "test"},
    )


def _recording():
    return Recording(
        gesture="swipe_right",
        user="adult",
        frames=[{"ts": 0.0, "rhand_x": 1.0}, {"ts": 0.033, "rhand_x": 2.0}],
    )


class TestSerialization:
    def test_description_round_trip(self):
        description = _description()
        restored = description_from_json(description_to_json(description))
        assert restored.name == description.name
        assert restored.pose_count == 2
        assert restored.poses[1].support == 3
        assert restored.metadata["note"] == "test"

    def test_recording_round_trip(self):
        recording = _recording()
        restored = recording_from_json(recording_to_json(recording))
        assert restored.gesture == "swipe_right"
        assert restored.frames == recording.frames

    def test_malformed_json_raises(self):
        with pytest.raises(SerializationError):
            description_from_json("{not json")
        with pytest.raises(SerializationError):
            description_from_json('["a list"]')
        with pytest.raises(SerializationError):
            recording_from_json('{"version": 1}')

    def test_newer_format_version_rejected(self):
        with pytest.raises(SerializationError):
            description_from_json('{"version": 999, "description": {}}')


class TestGestureDatabase:
    def test_save_and_load(self):
        db = GestureDatabase(":memory:")
        db.save_gesture(_description(), query_text="SELECT ...")
        record = db.load_gesture("swipe_right")
        assert record.name == "swipe_right"
        assert record.query_text == "SELECT ..."
        assert record.enabled
        assert record.description.pose_count == 2

    def test_missing_gesture_raises(self):
        db = GestureDatabase(":memory:")
        with pytest.raises(GestureNotFoundError):
            db.load_gesture("nope")

    def test_overwrite_updates_existing(self):
        db = GestureDatabase(":memory:")
        db.save_gesture(_description())
        updated = _description()
        updated.sample_count = 9
        db.save_gesture(updated, query_text="v2")
        record = db.load_gesture("swipe_right")
        assert record.description.sample_count == 9
        assert record.query_text == "v2"
        assert db.gesture_names() == ["swipe_right"]

    def test_duplicate_without_overwrite_raises(self):
        db = GestureDatabase(":memory:")
        db.save_gesture(_description())
        with pytest.raises(DuplicateGestureError):
            db.save_gesture(_description(), overwrite=False)

    def test_delete_gesture_and_samples(self):
        db = GestureDatabase(":memory:")
        db.save_gesture(_description())
        db.add_sample("swipe_right", _recording())
        db.delete_gesture("swipe_right")
        assert db.gesture_names() == []
        with pytest.raises(GestureNotFoundError):
            db.delete_gesture("swipe_right")

    def test_enable_disable(self):
        db = GestureDatabase(":memory:")
        db.save_gesture(_description())
        db.set_enabled("swipe_right", False)
        assert db.gesture_names(enabled_only=True) == []
        assert db.gesture_names() == ["swipe_right"]
        db.set_enabled("swipe_right", True)
        assert db.gesture_names(enabled_only=True) == ["swipe_right"]
        with pytest.raises(GestureNotFoundError):
            db.set_enabled("nope", True)

    def test_samples_round_trip(self):
        db = GestureDatabase(":memory:")
        db.save_gesture(_description())
        sample_id = db.add_sample("swipe_right", _recording())
        assert sample_id >= 1
        samples = db.samples_for("swipe_right")
        assert len(samples) == 1
        assert samples[0].user == "adult"
        assert samples[0].recording.frames[0]["rhand_x"] == 1.0
        assert db.sample_count("swipe_right") == 1

    def test_add_sample_requires_existing_gesture(self):
        db = GestureDatabase(":memory:")
        with pytest.raises(GestureNotFoundError):
            db.add_sample("ghost", _recording())

    def test_update_query_text_for_manual_tuning(self):
        db = GestureDatabase(":memory:")
        db.save_gesture(_description(), query_text="original")
        db.update_query_text("swipe_right", "manually tuned")
        assert db.load_gesture("swipe_right").query_text == "manually tuned"
        with pytest.raises(GestureNotFoundError):
            db.update_query_text("ghost", "x")

    def test_deployment_history(self):
        db = GestureDatabase(":memory:")
        db.save_gesture(_description())
        db.log_deployment("swipe_right", "query v1")
        db.log_deployment("swipe_right", "query v2")
        history = db.deployment_history("swipe_right")
        assert [entry["query_text"] for entry in history] == ["query v1", "query v2"]

    def test_all_gestures_and_context_manager(self):
        with GestureDatabase(":memory:") as db:
            db.save_gesture(_description("a"))
            db.save_gesture(_description("b"))
            records = db.all_gestures()
            assert [record.name for record in records] == ["a", "b"]

    def test_file_backed_database_persists(self, tmp_path):
        path = tmp_path / "gestures.sqlite"
        first = GestureDatabase(path)
        first.save_gesture(_description(), query_text="persisted")
        first.close()
        second = GestureDatabase(path)
        assert second.load_gesture("swipe_right").query_text == "persisted"
        second.close()
