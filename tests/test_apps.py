"""Unit tests for the OLAP / graph demo applications and gesture bindings."""

import pytest

from repro.apps import (
    ActionLog,
    CubeNavigator,
    Dimension,
    GestureBindings,
    GraphNavigator,
    OlapCube,
    PropertyGraph,
    collaboration_demo_graph,
    olap_demo_cube,
)
from repro.detection import GestureDetector
from repro.errors import BindingError, NavigationError


class TestOlapCube:
    def test_demo_cube_dimensions(self):
        cube = olap_demo_cube()
        assert set(cube.dimensions) == {"time", "geography", "product"}
        assert cube.members("year") == [2011, 2012, 2013]

    def test_aggregate_group_by_and_filters(self):
        cube = olap_demo_cube()
        by_year = cube.aggregate(group_by=["year"])
        assert len(by_year) == 3
        filtered = cube.aggregate(group_by=["year"], filters={"region": "north"})
        assert all(filtered[key] < by_year[key] for key in filtered)

    def test_cube_validation(self):
        with pytest.raises(ValueError):
            OlapCube([], [Dimension("d", ("a",))], measure="m")
        with pytest.raises(ValueError):
            OlapCube([{"a": 1, "m": 2}], [], measure="m")
        with pytest.raises(ValueError):
            OlapCube([{"a": 1, "m": 2}], [Dimension("d", ("missing",))], measure="m")
        with pytest.raises(ValueError):
            OlapCube([{"a": 1}], [Dimension("d", ("a",))], measure="m")
        with pytest.raises(ValueError):
            Dimension("d", ())

    def test_unknown_dimension_and_level(self):
        cube = olap_demo_cube()
        with pytest.raises(NavigationError):
            cube.dimension("weather")
        with pytest.raises(NavigationError):
            cube.dimension("time").level_index("millisecond")


class TestCubeNavigator:
    def test_initial_view_uses_coarsest_levels(self):
        navigator = CubeNavigator(olap_demo_cube(), "time", "geography")
        assert navigator.row_level == "year"
        assert navigator.column_level == "region"
        assert len(navigator.view()) == 3 * 2

    def test_drill_down_and_roll_up(self):
        navigator = CubeNavigator(olap_demo_cube(), "time", "geography")
        navigator.drill_down()
        assert navigator.row_level == "quarter"
        with pytest.raises(NavigationError):
            navigator.drill_down()
        navigator.roll_up()
        assert navigator.row_level == "year"
        with pytest.raises(NavigationError):
            navigator.roll_up()

    def test_pivot_swaps_dimensions(self):
        navigator = CubeNavigator(olap_demo_cube(), "time", "geography")
        navigator.drill_down()
        navigator.pivot()
        assert navigator.row_level == "region"
        assert navigator.column_level == "quarter"

    def test_slice_and_member_navigation(self):
        navigator = CubeNavigator(olap_demo_cube(), "time", "geography")
        navigator.slice_member(2012)
        assert navigator.state.slice_filters["year"] == 2012
        navigator.next_member()
        assert navigator.state.slice_filters["year"] == 2013
        navigator.next_member()  # wraps around
        assert navigator.state.slice_filters["year"] == 2011
        navigator.previous_member()
        assert navigator.state.slice_filters["year"] == 2013
        with pytest.raises(NavigationError):
            navigator.slice_member(1999)
        navigator.clear_slice()
        assert navigator.state.slice_filters == {}

    def test_reset_restores_initial_view(self):
        navigator = CubeNavigator(olap_demo_cube(), "time", "geography")
        navigator.drill_down()
        navigator.slice_member("north") if False else navigator.reset()
        assert navigator.row_level == "year"
        assert navigator.state.slice_filters == {}

    def test_history_records_operations(self):
        navigator = CubeNavigator(olap_demo_cube(), "time", "geography")
        navigator.drill_down()
        navigator.pivot()
        assert len(navigator.history) == 2
        assert "drill_down" in navigator.history[0]

    def test_describe_mentions_levels(self):
        navigator = CubeNavigator(olap_demo_cube(), "time", "geography")
        assert "time/year" in navigator.describe()

    def test_same_row_and_column_dimension_rejected(self):
        with pytest.raises(NavigationError):
            CubeNavigator(olap_demo_cube(), "time", "time")


class TestPropertyGraph:
    def test_demo_graph_structure(self):
        graph = collaboration_demo_graph()
        assert graph.has_node("kevin_bacon")
        assert graph.node_count() >= 10
        assert graph.edge_count() >= 12
        assert "tom_hanks" in graph.neighbours("kevin_bacon")
        assert graph.edge("kevin_bacon", "tom_hanks")["film"] == "Apollo 13"

    def test_add_node_and_edge_validation(self):
        graph = PropertyGraph()
        with pytest.raises(ValueError):
            graph.add_node("")
        graph.add_node("a")
        with pytest.raises(ValueError):
            graph.add_edge("a", "a")

    def test_unknown_node_queries_raise(self):
        graph = PropertyGraph()
        with pytest.raises(NavigationError):
            graph.node("ghost")
        with pytest.raises(NavigationError):
            graph.neighbours("ghost")
        graph.add_node("a")
        graph.add_node("b")
        with pytest.raises(NavigationError):
            graph.edge("a", "b")

    def test_shortest_path_bfs(self):
        graph = collaboration_demo_graph()
        path = graph.shortest_path("kevin_bacon", "al_pacino")
        assert path[0] == "kevin_bacon"
        assert path[-1] == "al_pacino"
        assert len(path) <= 5

    def test_shortest_path_errors(self):
        graph = PropertyGraph()
        graph.add_node("a")
        graph.add_node("b")
        with pytest.raises(NavigationError):
            graph.shortest_path("a", "b")
        with pytest.raises(NavigationError):
            graph.shortest_path("a", "ghost")
        assert graph.shortest_path("a", "a") == ["a"]


class TestGraphNavigator:
    def test_highlight_and_follow(self):
        navigator = GraphNavigator(collaboration_demo_graph(), "kevin_bacon")
        first = navigator.highlighted
        navigator.highlight_next()
        assert navigator.highlighted != first
        navigator.follow()
        assert navigator.current in collaboration_demo_graph().neighbours("kevin_bacon")
        navigator.back()
        assert navigator.current == "kevin_bacon"

    def test_back_without_history_raises(self):
        navigator = GraphNavigator(collaboration_demo_graph(), "kevin_bacon")
        with pytest.raises(NavigationError):
            navigator.back()

    def test_unknown_start_node_rejected(self):
        with pytest.raises(NavigationError):
            GraphNavigator(collaboration_demo_graph(), "nobody")

    def test_target_path_navigation(self):
        navigator = GraphNavigator(collaboration_demo_graph(), "kevin_bacon")
        navigator.set_target("al_pacino")
        path = navigator.path_to_target()
        steps = 0
        while navigator.current != "al_pacino":
            navigator.follow_path()
            steps += 1
        assert steps == len(path) - 1
        assert "already at target" in navigator.follow_path()

    def test_path_without_target_raises(self):
        navigator = GraphNavigator(collaboration_demo_graph(), "kevin_bacon")
        with pytest.raises(NavigationError):
            navigator.path_to_target()
        with pytest.raises(NavigationError):
            navigator.set_target("nobody")

    def test_operations_log(self):
        navigator = GraphNavigator(collaboration_demo_graph(), "kevin_bacon")
        navigator.highlight_next()
        navigator.follow()
        assert len(navigator.operations) == 2
        assert "kevin_bacon" not in navigator.describe() or navigator.describe()


class TestGestureBindings:
    def test_bind_and_trigger(self):
        detector = GestureDetector()
        navigator = CubeNavigator(olap_demo_cube(), "time", "geography")
        bindings = GestureBindings(detector)
        bindings.bind("swipe_right", navigator.drill_down, name="drill_down")
        entry = bindings.trigger("swipe_right")
        assert entry.succeeded
        assert navigator.row_level == "quarter"
        assert len(bindings.log) == 1

    def test_navigation_errors_are_logged_not_raised(self):
        detector = GestureDetector()
        navigator = CubeNavigator(olap_demo_cube(), "time", "geography")
        bindings = GestureBindings(detector)
        bindings.bind("roll", navigator.roll_up)
        entry = bindings.trigger("roll")  # already at coarsest level
        assert not entry.succeeded
        assert bindings.log.failures()

    def test_unbound_gesture_is_ignored_by_events(self, swipe_description, simulator, swipe):
        detector = GestureDetector()
        detector.deploy(swipe_description)
        bindings = GestureBindings(detector)
        detector.process_frames(simulator.perform_variation(swipe, hold_start_s=0.2, hold_end_s=0.2))
        assert len(bindings.log) == 0

    def test_detected_gesture_drives_bound_action(self, swipe_description, simulator, swipe):
        detector = GestureDetector()
        detector.deploy(swipe_description)
        navigator = GraphNavigator(collaboration_demo_graph(), "kevin_bacon")
        bindings = GestureBindings(detector)
        bindings.bind("swipe_right", navigator.highlight_next)
        detector.process_frames(simulator.perform_variation(swipe, hold_start_s=0.2, hold_end_s=0.2))
        assert len(bindings.log.successes()) == 1
        assert navigator.operations

    def test_rebind_and_swap_at_runtime(self):
        detector = GestureDetector()
        bindings = GestureBindings(detector)
        log = []
        bindings.bind("a", lambda: log.append("first"), name="first")
        bindings.bind("b", lambda: log.append("second"), name="second")
        bindings.swap("a", "b")
        bindings.trigger("a")
        assert log == ["second"]
        bindings.rebind("a", lambda: log.append("third"), name="third")
        bindings.trigger("a")
        assert log[-1] == "third"
        assert bindings.action_name("b") == "first"

    def test_binding_validation(self):
        bindings = GestureBindings(GestureDetector())
        with pytest.raises(BindingError):
            bindings.bind("x", "not callable")
        with pytest.raises(BindingError):
            bindings.unbind("x")
        with pytest.raises(BindingError):
            bindings.trigger("x")
        with pytest.raises(BindingError):
            bindings.swap("x", "y")
        with pytest.raises(BindingError):
            bindings.action_name("x")

    def test_unbind(self):
        bindings = GestureBindings(GestureDetector())
        bindings.bind("x", lambda: None)
        bindings.unbind("x")
        assert bindings.bound_gestures() == []

    def test_action_log_helpers(self):
        log = ActionLog()
        assert len(log) == 0
        assert log.successes() == []
