"""Multi-session isolation: concurrent sessions share no mutable state.

The gateway's tenancy model rests on a property the in-process API must
guarantee: two :class:`GestureSession` instances in one process are
fully independent — separate engines, matchers, detectors, predicate
caches, function registries, databases and metrics registries.  A
vocabulary deployed in one must never detect in the other, and feeding
them concurrently from separate threads must not cross-contaminate
events.  These tests pin that property down so a future module-level
cache cannot silently break it.
"""

from __future__ import annotations

import threading

from repro.api.session import GestureSession, SessionConfig

HIGH = 'SELECT "high" MATCHING kinect_t(rhand_y > 450);'
LOW = 'SELECT "low" MATCHING kinect_t(rhand_y < 100);'
#: Same registration name, *different* predicate, in each session — the
#: sharpest probe for shared matcher or compile-cache state.
SAME_NAME_A = 'SELECT "probe" MATCHING kinect_t(rhand_y > 450);'
SAME_NAME_B = 'SELECT "probe" MATCHING kinect_t(rhand_y < 100);'


def frames(value, count=20, player=1):
    return [
        {"ts": (i + 1) * 0.01, "player": player, "rhand_y": float(value)}
        for i in range(count)
    ]


class TestSessionIsolation:
    def test_no_shared_infrastructure_objects(self):
        with GestureSession() as a, GestureSession() as b:
            a.deploy(HIGH)
            b.deploy(HIGH)
            assert a.engine is not b.engine
            assert a.detector is not b.detector
            assert a.database is not b.database
            assert a.engine.compile_cache is not b.engine.compile_cache
            assert a.engine.functions is not b.engine.functions

    def test_metrics_registries_are_distinct_for_sharded_sessions(self):
        config = SessionConfig(shards=2)
        with GestureSession(config) as a, GestureSession(config) as b:
            a.deploy(HIGH)
            b.deploy(HIGH)
            assert a.metrics is not None
            assert a.metrics is not b.metrics
            a.feed(frames(500, count=10), stream="kinect_t")
            a.drain()
            assert a.metrics.totals()["tuples_processed"] == 10
            assert b.metrics.totals()["tuples_processed"] == 0

    def test_deployments_do_not_leak_across_sessions(self):
        with GestureSession() as a, GestureSession() as b:
            a.deploy(HIGH)
            b.deploy(LOW)
            workload = frames(500) + frames(50)
            a.feed(workload, stream="kinect_t")
            b.feed(workload, stream="kinect_t")
            assert {e.gesture for e in a.events} == {"high"}
            assert {e.gesture for e in b.events} == {"low"}
            assert a.deployed_gestures() == ["high"]
            assert b.deployed_gestures() == ["low"]

    def test_same_query_name_different_predicates(self):
        # If any matcher, NFA or compiled-predicate state were keyed by
        # query name process-wide, one of these two would detect wrongly.
        with GestureSession() as a, GestureSession() as b:
            a.deploy(SAME_NAME_A)
            b.deploy(SAME_NAME_B)
            workload = frames(500, count=5) + frames(50, count=7)
            a.feed(workload, stream="kinect_t")
            b.feed(workload, stream="kinect_t")
            assert len(a.detections("probe")) == 5
            assert len(b.detections("probe")) == 7

    def test_concurrent_threaded_feeds_do_not_cross_contaminate(self):
        config = SessionConfig(shards=2, queue_capacity=256)
        with GestureSession(config) as a, GestureSession(config) as b:
            a.deploy(HIGH)
            b.deploy(LOW)
            a_events, b_events = [], []
            a.on_any(a_events.append)
            b.on_any(b_events.append)
            workload_a = frames(500, count=200, player=1) + frames(
                500, count=200, player=2
            )
            workload_b = frames(50, count=300, player=1)

            threads = [
                threading.Thread(target=a.feed, args=(workload_a,), kwargs={"stream": "kinect_t"}),
                threading.Thread(target=b.feed, args=(workload_b,), kwargs={"stream": "kinect_t"}),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            a.drain()
            b.drain()
            assert len(a_events) == 400 and {e.gesture for e in a_events} == {"high"}
            assert len(b_events) == 300 and {e.gesture for e in b_events} == {"low"}
            assert a.metrics.totals()["tuples_processed"] == 400
            assert b.metrics.totals()["tuples_processed"] == 300

    def test_closing_one_session_leaves_the_other_alive(self):
        a = GestureSession().start()
        b = GestureSession().start()
        try:
            a.deploy(HIGH)
            b.deploy(HIGH)
            a.close()
            b.feed(frames(500, count=3), stream="kinect_t")
            assert len(b.events) == 3
        finally:
            b.close()
