"""Unit tests for the CEP engine, views, sinks and stream operators."""

import pytest

from repro.cep.engine import CEPEngine
from repro.cep.expressions import Comparison, FieldRef, Literal
from repro.cep.matcher import Detection, MatcherConfig
from repro.cep.operators import (
    FilterOperator,
    MapOperator,
    Pipeline,
    ProjectOperator,
    SlidingWindowAggregate,
)
from repro.cep.sinks import CallbackSink, CollectingSink, FanOutSink, NullSink
from repro.cep.views import RAW_STREAM_NAME, TRANSFORMED_STREAM_NAME, install_kinect_view
from repro.errors import (
    QueryRegistrationError,
    QuerySyntaxError,
    UnknownStreamError,
)
from repro.streams import SimulatedClock, Stream

SIMPLE_QUERY = 'SELECT "up" MATCHING s(x > 100);'
SEQ_QUERY = 'SELECT "seq" MATCHING s(x > 100) -> s(x > 200) within 1 seconds;'


def _detection(output="g", ts=0.0):
    return Detection(
        output=output, query_name=output, timestamp=ts, start_timestamp=ts,
        step_timestamps=(ts,),
    )


class TestSinks:
    def test_collecting_sink_stores_detections(self):
        sink = CollectingSink()
        sink.emit(_detection())
        assert len(sink) == 1
        assert sink.outputs() == ["g"]
        assert sink.last().output == "g"

    def test_collecting_sink_capacity_drops_oldest(self):
        sink = CollectingSink(capacity=2)
        for index in range(5):
            sink.emit(_detection(ts=float(index)))
        assert len(sink) == 2
        assert sink.detections[0].timestamp == 3.0

    def test_collecting_sink_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            CollectingSink(capacity=0)

    def test_callback_and_null_and_fanout(self):
        seen = []
        callback = CallbackSink(seen.append)
        null = NullSink()
        fan_out = FanOutSink([callback, null])
        fan_out.emit(_detection())
        assert len(seen) == 1
        assert callback.emitted == 1
        assert null.emitted == 1

    def test_collecting_sink_clear_and_empty_last(self):
        sink = CollectingSink()
        sink.emit(_detection())
        sink.clear()
        assert sink.last() is None


class TestEngineBasics:
    def test_register_and_query_text(self):
        engine = CEPEngine()
        engine.create_stream("s")
        deployed = engine.register_query(SIMPLE_QUERY)
        engine.push("s", {"ts": 0.0, "x": 150.0})
        assert [d.output for d in deployed.detections()] == ["up"]

    def test_unknown_stream_rejected_unless_created(self):
        engine = CEPEngine()
        with pytest.raises(UnknownStreamError):
            engine.register_query(SIMPLE_QUERY)
        deployed = engine.register_query(SIMPLE_QUERY, create_missing_streams=True)
        engine.push("s", {"ts": 0.0, "x": 150.0})
        assert len(deployed.detections()) == 1

    def test_duplicate_query_name_rejected(self):
        engine = CEPEngine()
        engine.create_stream("s")
        engine.register_query(SIMPLE_QUERY)
        with pytest.raises(QueryRegistrationError):
            engine.register_query(SIMPLE_QUERY)

    def test_invalid_query_text_raises_syntax_error(self):
        engine = CEPEngine()
        with pytest.raises(QuerySyntaxError):
            engine.register_query("SELECT nonsense nonsense")

    def test_unregister_query_detaches_from_stream(self):
        engine = CEPEngine()
        engine.create_stream("s")
        deployed = engine.register_query(SIMPLE_QUERY)
        engine.unregister_query("up")
        engine.push("s", {"ts": 0.0, "x": 150.0})
        assert deployed.detections() == []
        with pytest.raises(QueryRegistrationError):
            engine.unregister_query("up")

    def test_enable_disable_query(self):
        engine = CEPEngine()
        engine.create_stream("s")
        deployed = engine.register_query(SIMPLE_QUERY)
        engine.enable_query("up", False)
        engine.push("s", {"ts": 0.0, "x": 150.0})
        assert deployed.detections() == []
        engine.enable_query("up", True)
        engine.push("s", {"ts": 0.1, "x": 150.0})
        assert len(deployed.detections()) == 1

    def test_sequence_query_with_timestamps(self):
        engine = CEPEngine()
        engine.create_stream("s")
        deployed = engine.register_query(SEQ_QUERY)
        engine.push("s", {"ts": 0.0, "x": 150.0})
        engine.push("s", {"ts": 0.5, "x": 250.0})
        assert len(deployed.detections()) == 1

    def test_sequence_query_respects_within(self):
        engine = CEPEngine()
        engine.create_stream("s")
        deployed = engine.register_query(SEQ_QUERY)
        engine.push("s", {"ts": 0.0, "x": 150.0})
        engine.push("s", {"ts": 5.0, "x": 250.0})
        assert deployed.detections() == []

    def test_detections_merge_and_sort_across_queries(self):
        engine = CEPEngine()
        engine.create_stream("s")
        engine.register_query('SELECT "a" MATCHING s(x > 0);')
        engine.register_query('SELECT "b" MATCHING s(x > 100);')
        engine.push("s", {"ts": 0.0, "x": 150.0})
        outputs = [d.output for d in engine.detections()]
        assert sorted(outputs) == ["a", "b"]
        engine.clear_detections()
        assert engine.detections() == []

    def test_additional_sink_receives_detections(self):
        engine = CEPEngine()
        engine.create_stream("s")
        seen = []
        engine.register_query(SIMPLE_QUERY, sink=CallbackSink(seen.append))
        engine.push("s", {"ts": 0.0, "x": 200.0})
        assert len(seen) == 1

    def test_register_custom_function_usable_in_queries(self):
        engine = CEPEngine()
        engine.create_stream("s")
        engine.register_function("double", lambda value: value * 2, arity=1)
        deployed = engine.register_query('SELECT "d" MATCHING s(double(x) > 10);')
        engine.push("s", {"ts": 0.0, "x": 6.0})
        assert len(deployed.detections()) == 1

    def test_query_names_and_get_query(self):
        engine = CEPEngine()
        engine.create_stream("s")
        engine.register_query(SIMPLE_QUERY)
        assert engine.query_names() == ["up"]
        assert engine.get_query("up").name == "up"
        with pytest.raises(QueryRegistrationError):
            engine.get_query("missing")

    def test_tuples_without_timestamp_use_engine_clock(self):
        clock = SimulatedClock(start=3.0)
        engine = CEPEngine(clock=clock)
        engine.create_stream("s")
        deployed = engine.register_query(SIMPLE_QUERY)
        engine.push("s", {"x": 150.0})
        assert deployed.detections()[0].timestamp == pytest.approx(3.0)

    def test_per_query_matcher_config_override(self):
        engine = CEPEngine()
        engine.create_stream("s")
        deployed = engine.register_query(
            SIMPLE_QUERY, matcher_config=MatcherConfig(store_matched_tuples=False)
        )
        engine.push("s", {"ts": 0.0, "x": 150.0})
        assert deployed.detections()[0].matched is None

    def test_configured_timestamp_field_is_honored(self):
        # The handler must read the matcher's timestamp_field, not "ts".
        engine = CEPEngine()
        engine.create_stream("s")
        deployed = engine.register_query(
            SEQ_QUERY, matcher_config=MatcherConfig(timestamp_field="t")
        )
        engine.push("s", {"t": 0.0, "x": 150.0})
        engine.push("s", {"t": 5.0, "x": 250.0})
        assert deployed.detections() == []  # 5 s apart: within 1 s violated
        engine.push("s", {"t": 10.0, "x": 150.0})
        engine.push("s", {"t": 10.5, "x": 250.0})
        detections = deployed.detections()
        assert len(detections) == 1
        assert detections[0].timestamp == pytest.approx(10.5)

    def test_configured_timestamp_field_is_honored_on_batches(self):
        engine = CEPEngine()
        engine.create_stream("s")
        deployed = engine.register_query(
            SEQ_QUERY, matcher_config=MatcherConfig(timestamp_field="t")
        )
        engine.push_many(
            "s",
            [{"t": 0.0, "x": 150.0}, {"t": 5.0, "x": 250.0},
             {"t": 10.0, "x": 150.0}, {"t": 10.5, "x": 250.0}],
            batch_size=2,
        )
        assert [d.timestamp for d in deployed.detections()] == [pytest.approx(10.5)]


class TestBatchDispatch:
    RECORDS = [
        {"ts": index * 0.1, "x": 150.0 if index % 3 else 250.0}
        for index in range(24)
    ]

    def _deploy(self):
        engine = CEPEngine()
        engine.create_stream("s")
        return engine, engine.register_query(SEQ_QUERY)

    def test_push_many_batched_matches_per_tuple_detections(self):
        per_tuple_engine, per_tuple = self._deploy()
        per_tuple_engine.push_many("s", self.RECORDS)
        for batch_size in (1, 4, 100):
            batched_engine, batched = self._deploy()
            batched_engine.push_many("s", self.RECORDS, batch_size=batch_size)
            assert batched.detections() == per_tuple.detections(), f"batch_size={batch_size}"
        assert per_tuple.detections()  # the workload must actually detect

    def test_push_many_counts_tuples_on_both_paths(self):
        engine, _ = self._deploy()
        assert engine.push_many("s", self.RECORDS) == len(self.RECORDS)
        assert engine.push_many("s", self.RECORDS, batch_size=5) == len(self.RECORDS)
        assert engine.tuples_processed == 2 * len(self.RECORDS)

    def test_push_many_rejects_bad_batch_size(self):
        engine, _ = self._deploy()
        with pytest.raises(ValueError):
            engine.push_many("s", self.RECORDS, batch_size=0)

    def test_batched_push_flows_through_views(self):
        engine = CEPEngine()
        engine.create_stream("raw")
        engine.register_view(
            "doubled", "raw", lambda r: {"ts": r["ts"], "x": r["x"] * 2}
        )
        deployed = engine.register_query('SELECT "d" MATCHING doubled(x > 10);')
        engine.push_many(
            "raw", [{"ts": 0.0, "x": 6.0}, {"ts": 0.1, "x": 2.0}], batch_size=8
        )
        assert len(deployed.detections()) == 1

    def test_disabled_query_ignores_batches(self):
        engine, deployed = self._deploy()
        engine.enable_query(deployed.name, False)
        engine.push_many("s", self.RECORDS, batch_size=4)
        assert deployed.detections() == []


class TestCompileCache:
    def test_identical_predicates_share_compiled_closures(self):
        engine = CEPEngine()
        engine.create_stream("s")
        engine.register_query('SELECT "a" MATCHING s(x > 100);')
        misses = engine.compile_cache.misses
        engine.register_query('SELECT "b" MATCHING s(x > 100);', name="b")
        assert engine.compile_cache.misses == misses
        assert engine.compile_cache.hits >= 1

    def test_register_function_clears_the_cache(self):
        engine = CEPEngine()
        engine.create_stream("s")
        engine.register_query('SELECT "a" MATCHING s(x > 100);')
        assert len(engine.compile_cache) > 0
        engine.register_function("triple", lambda value: value * 3, arity=1)
        assert len(engine.compile_cache) == 0

    def test_interpreted_engine_matches_compiled_engine(self):
        records = [
            {"ts": index * 0.1, "x": 150.0 if index % 2 else 250.0}
            for index in range(12)
        ]
        compiled_engine = CEPEngine()
        compiled_engine.create_stream("s")
        compiled = compiled_engine.register_query(SEQ_QUERY)
        interpreted_engine = CEPEngine(
            matcher_config=MatcherConfig(compile_predicates=False)
        )
        interpreted_engine.create_stream("s")
        interpreted = interpreted_engine.register_query(SEQ_QUERY)
        compiled_engine.push_many("s", records)
        interpreted_engine.push_many("s", records)
        assert compiled.detections() == interpreted.detections()
        assert compiled.detections()


class TestViews:
    def test_kinect_view_transforms_frames(self, noiseless_simulator):
        engine = CEPEngine()
        view = install_kinect_view(engine)
        received = []
        engine.get_stream(TRANSFORMED_STREAM_NAME).subscribe(received.append)
        engine.push(RAW_STREAM_NAME, noiseless_simulator.measure_rest())
        assert len(received) == 1
        assert received[0]["torso_x"] == pytest.approx(0.0)
        assert view.tuples_processed == 1

    def test_view_stop_detaches(self, noiseless_simulator):
        engine = CEPEngine()
        view = install_kinect_view(engine)
        view.stop()
        received = []
        engine.get_stream(TRANSFORMED_STREAM_NAME).subscribe(received.append)
        engine.push(RAW_STREAM_NAME, noiseless_simulator.measure_rest())
        assert received == []
        assert not view.active

    def test_get_view_by_name(self):
        engine = CEPEngine()
        install_kinect_view(engine)
        assert engine.get_view(TRANSFORMED_STREAM_NAME).name == TRANSFORMED_STREAM_NAME
        with pytest.raises(UnknownStreamError):
            engine.get_view("missing")

    def test_custom_view_function(self):
        engine = CEPEngine()
        engine.create_stream("raw")
        engine.register_view("doubled", "raw", lambda r: {"x": r["x"] * 2})
        received = []
        engine.get_stream("doubled").subscribe(received.append)
        engine.push("raw", {"x": 4})
        assert received == [{"x": 8}]


class TestOperators:
    def test_filter_operator(self):
        source, target = Stream("in"), Stream("out")
        received = []
        target.subscribe(received.append)
        op = FilterOperator(source, target, Comparison(">", FieldRef("x"), Literal(5)))
        op.start()
        source.push({"x": 3})
        source.push({"x": 7})
        assert received == [{"x": 7}]
        assert op.passed == 1
        op.stop()
        source.push({"x": 9})
        assert len(received) == 1

    def test_project_operator(self):
        source, target = Stream("in"), Stream("out")
        received = []
        target.subscribe(received.append)
        ProjectOperator(source, target, ["a"]).start()
        source.push({"a": 1, "b": 2})
        assert received == [{"a": 1}]

    def test_project_requires_fields(self):
        with pytest.raises(ValueError):
            ProjectOperator(Stream("in"), Stream("out"), [])

    def test_map_operator(self):
        source, target = Stream("in"), Stream("out")
        received = []
        target.subscribe(received.append)
        MapOperator(source, target, lambda r: {"y": r["x"] + 1}).start()
        source.push({"x": 1})
        assert received == [{"y": 2}]

    def test_sliding_window_aggregate_mean_and_range(self):
        source, target = Stream("in"), Stream("out")
        received = []
        target.subscribe(received.append)
        SlidingWindowAggregate(source, target, field="x", window_size=3, aggregate="mean").start()
        for value in (1.0, 2.0, 3.0, 4.0):
            source.push({"x": value})
        assert len(received) == 2
        assert received[0]["mean_x"] == pytest.approx(2.0)
        assert received[1]["mean_x"] == pytest.approx(3.0)

    def test_sliding_window_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowAggregate(Stream("i"), Stream("o"), "x", 0)
        with pytest.raises(ValueError):
            SlidingWindowAggregate(Stream("i"), Stream("o"), "x", 3, aggregate="median")

    def test_pipeline_context_manager(self):
        source, middle, target = Stream("a"), Stream("b"), Stream("c")
        received = []
        target.subscribe(received.append)
        pipeline = Pipeline([
            MapOperator(source, middle, lambda r: {"x": r["x"] * 2}),
            FilterOperator(middle, target, Comparison(">", FieldRef("x"), Literal(5))),
        ])
        with pipeline:
            source.push({"x": 1})
            source.push({"x": 4})
        assert received == [{"x": 8}]
        source.push({"x": 10})
        assert len(received) == 1
