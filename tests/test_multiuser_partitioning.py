"""Multi-user partitioning of the detection path.

The shared-sensor-space contract: any interleaving of K single-user streams
must yield, per player, exactly the detections each player's isolated stream
yields — on the interpreted, compiled and batched matching paths.  These
tests exercise the contract property-style on synthetic tuple streams, pin
down the per-partition semantics (run caps, ``consume all``, cross-player
isolation), and cover the end-to-end path from two simulators through one
engine to per-player gesture events.
"""

import random

import pytest

from repro.cep.engine import CEPEngine
from repro.cep.expressions import BooleanOp, Comparison, FieldRef, Literal
from repro.cep.matcher import MatcherConfig, NFAMatcher
from repro.cep.nfa import compile_pattern
from repro.cep.query import ConsumePolicy, EventPattern, SelectPolicy, sequence
from repro.cep.views import install_kinect_view
from repro.detection import GestureDetector, GestureEvent
from repro.kinect import (
    SwipeTrajectory,
    generate_multiuser_recording,
    user_by_name,
)
from repro.streams import SimulatedClock


def _step(low: float, high: float) -> EventPattern:
    lower = Comparison(">=", FieldRef("x"), Literal(low))
    upper = Comparison("<", FieldRef("x"), Literal(high))
    return EventPattern(stream="s", predicate=BooleanOp("and", [lower, upper]))


def _matcher(
    within=1.0,
    select=SelectPolicy.FIRST,
    consume=ConsumePolicy.ALL,
    steps=3,
    **config_kwargs,
) -> NFAMatcher:
    events = [_step(i * 100, i * 100 + 50) for i in range(steps)]
    pattern = compile_pattern(
        sequence(events, within_seconds=within, select=select, consume=consume)
    )
    return NFAMatcher(pattern, output="g", config=MatcherConfig(**config_kwargs))


def _player_tuples(player: int, values, start_ts=0.0, dt=0.1):
    return [
        {"x": float(value), "ts": start_ts + index * dt, "player": player}
        for index, value in enumerate(values)
    ]


def _random_stream(rng: random.Random, player: int, count: int):
    """A noisy single-user stream with step values planted at random."""
    vocabulary = [10, 110, 210, 999, 45, 160, -5]
    return _player_tuples(
        player,
        [rng.choice(vocabulary) for _ in range(count)],
        start_ts=rng.random(),
        dt=0.05 + rng.random() * 0.1,
    )


def _riffle(rng: random.Random, streams):
    """A random interleaving that preserves each stream's internal order."""
    queues = [list(stream) for stream in streams if stream]
    merged = []
    while queues:
        queue = rng.choice(queues)
        merged.append(queue.pop(0))
        if not queue:
            queues.remove(queue)
    return merged


class TestInterleavingEquivalence:
    @pytest.mark.parametrize("compile_predicates", [True, False])
    @pytest.mark.parametrize(
        "select,consume",
        [
            (SelectPolicy.FIRST, ConsumePolicy.ALL),
            (SelectPolicy.ALL, ConsumePolicy.NONE),
        ],
    )
    def test_any_riffle_detects_the_union_of_isolated_runs(
        self, compile_predicates, select, consume
    ):
        # Property-style: many random single-user streams, many random
        # interleavings; the merged stream must detect, per player, exactly
        # what each isolated stream detects.
        for seed in range(12):
            rng = random.Random(seed)
            players = list(range(1, 2 + rng.randrange(3)))
            streams = {
                player: _random_stream(rng, player, 40 + rng.randrange(40))
                for player in players
            }

            expected = {}
            total = 0
            for player, stream in streams.items():
                isolated = _matcher(
                    select=select,
                    consume=consume,
                    compile_predicates=compile_predicates,
                )
                expected[player] = isolated.process_many(stream, "s")
                total += len(expected[player])

            merged = _riffle(rng, streams.values())
            interleaved = _matcher(
                select=select,
                consume=consume,
                compile_predicates=compile_predicates,
            )
            detections = interleaved.process_many(merged, "s")
            grouped = {player: [] for player in players}
            for detection in detections:
                grouped[detection.partition].append(detection)
            assert grouped == expected, f"seed={seed}"
            assert len(detections) == total

    def test_riffles_detect_identically_on_the_batched_path(self):
        rng = random.Random(99)
        streams = [_random_stream(rng, player, 120) for player in (1, 2, 3)]
        merged = _riffle(rng, streams)
        per_tuple = _matcher().process_many(merged, "s")
        assert per_tuple, "stream produced no detections; the test is vacuous"
        for batch_size in (1, 7, 64, len(merged)):
            batched = _matcher()
            detections = []
            for start in range(0, len(merged), batch_size):
                detections.extend(
                    batched.process_batch(merged[start : start + batch_size], "s")
                )
            assert detections == per_tuple, f"batch_size={batch_size}"

    def test_planted_gestures_are_attributed_to_their_players(self):
        # Player 2 performs the gesture twice, player 1 once, player 3 never.
        streams = [
            _player_tuples(1, [999, 10, 110, 210, 999]),
            _player_tuples(2, [10, 110, 210, 10, 110, 210]),
            _player_tuples(3, [999, 10, 110, 999, 999, 999]),
        ]
        merged = _riffle(random.Random(5), streams)
        matcher = _matcher()
        detections = matcher.process_many(merged, "s")
        counts = {}
        for detection in detections:
            counts[detection.partition] = counts.get(detection.partition, 0) + 1
        assert counts == {1: 1, 2: 2}


class TestPartitionSemantics:
    def test_cross_player_frames_cannot_complete_a_run(self):
        # The seed bug: player 1 starts the gesture, player 2 finishes it.
        frankenstein = (
            _player_tuples(1, [10])
            + _player_tuples(2, [110, 210], start_ts=0.1)
        )
        assert _matcher().process_many(frankenstein, "s") == []
        # Unpartitioned matching accepts the cross-player match (the old
        # global-run-table behaviour, still available via partition_field=None).
        legacy = _matcher(partition_field=None)
        assert len(legacy.process_many(frankenstein, "s")) == 1

    def test_partition_field_none_preserves_single_stream_detections(self):
        # On a single-player stream, partitioned and unpartitioned matching
        # must be indistinguishable (except for the partition attribution).
        rng = random.Random(3)
        stream = _random_stream(rng, 1, 200)
        partitioned = _matcher().process_many(stream, "s")
        unpartitioned = _matcher(partition_field=None).process_many(stream, "s")
        strip = lambda ds: [
            (d.output, d.timestamp, d.start_timestamp, d.step_timestamps) for d in ds
        ]
        assert strip(partitioned) == strip(unpartitioned)
        assert all(d.partition == 1 for d in partitioned)
        assert all(d.partition is None for d in unpartitioned)

    def test_tuples_without_the_field_share_one_partition(self):
        stream = [{"x": v, "ts": i * 0.1} for i, v in enumerate([10, 110, 210])]
        detections = _matcher().process_many(stream, "s")
        assert len(detections) == 1
        assert detections[0].partition is None

    def test_run_cap_applies_per_partition(self):
        # One player holding the start pose must not starve the others.
        config = dict(max_active_runs=1, run_ttl_seconds=None)
        matcher = _matcher(within=None, **config)
        both_start = _riffle(
            random.Random(0),
            [_player_tuples(1, [10, 110, 210]), _player_tuples(2, [10, 110, 210])],
        )
        detections = matcher.process_many(both_start, "s")
        assert {d.partition for d in detections} == {1, 2}
        assert matcher.stats.runs_suppressed == 0
        # The same traffic through a single global table hits the cap.
        legacy = _matcher(within=None, partition_field=None, **config)
        legacy.process_many(both_start, "s")
        assert legacy.stats.runs_suppressed > 0

    def test_consume_all_clears_only_the_completing_player(self):
        # Player 2 completes while player 1 is mid-gesture; player 1's
        # partial match must survive the consumption and complete later.
        stream = (
            _player_tuples(1, [10, 110], dt=0.1)
            + _player_tuples(2, [10, 110, 210], start_ts=0.05, dt=0.1)
            + _player_tuples(1, [210], start_ts=0.3)
        )
        stream.sort(key=lambda t: (t["ts"], t["player"]))
        detections = _matcher().process_many(stream, "s")
        assert sorted(d.partition for d in detections) == [1, 2]

    def test_introspection_aggregates_partitions(self):
        matcher = _matcher()
        matcher.process_many(
            _player_tuples(1, [10, 110]) + _player_tuples(2, [10], start_ts=0.05),
            "s",
        )
        assert matcher.active_runs == 2
        assert matcher.active_partitions == 2
        assert sorted(matcher.partition_keys()) == [1, 2]
        assert matcher.furthest_step() == 2
        assert matcher.furthest_step(partition=2) == 1
        assert matcher.progress(partition=1) == pytest.approx(2 / 3)
        matcher.reset()
        assert matcher.active_partitions == 0

    def test_departed_player_partitions_are_swept(self):
        # Player 1 abandons a partial match mid-gesture; only player 2
        # keeps streaming.  Pruning runs against a partition's own tuples,
        # so the periodic sweep must reclaim player 1's runs (and stop the
        # stale progress feedback) once they are idle past the TTL.
        matcher = _matcher(within=None, run_ttl_seconds=None,
                           partition_idle_seconds=5.0)
        matcher.process_many(_player_tuples(1, [10, 110]), "s")
        assert matcher.partition_keys() == [1]
        # >512 player-2 tuples spanning >5s of event time trigger the sweep.
        filler = _player_tuples(2, [999] * 600, start_ts=1.0, dt=0.05)
        matcher.process_many(filler, "s")
        assert matcher.partition_keys() == []
        assert matcher.furthest_step() == 0

    def test_recent_partitions_survive_the_sweep(self):
        matcher = _matcher(within=None, run_ttl_seconds=None,
                           partition_idle_seconds=5.0)
        matcher.process_many(_player_tuples(1, [10, 110]), "s")
        # Plenty of traffic, but little event time passes: no eviction.
        filler = _player_tuples(2, [999] * 600, start_ts=0.2, dt=0.001)
        matcher.process_many(filler, "s")
        assert matcher.partition_keys() == [1]
        # The surviving run still completes.
        detections = matcher.process(
            {"x": 210.0, "ts": 1.0, "player": 1}, "s"
        )
        assert [d.partition for d in detections] == [1]

    def test_empty_partitions_are_dropped(self):
        # consume all / pruning must not leave ghost players behind.
        matcher = _matcher()
        matcher.process_many(_player_tuples(1, [10, 110, 210]), "s")
        assert matcher.active_partitions == 0
        matcher.process_many(_player_tuples(2, [10]), "s")
        assert matcher.partition_keys() == [2]
        # Expire player 2's run via the within constraint.
        matcher.process(_player_tuples(2, [999], start_ts=10.0)[0], "s")
        assert matcher.active_partitions == 0


class TestEngineEndToEnd:
    def _deploy(self, engine):
        return engine.register_query(
            'SELECT "ping" MATCHING ( s(x >= 10 AND x < 50)'
            " -> s(x >= 110 AND x < 150) within 1 seconds"
            " select first consume all );",
            create_missing_streams=True,
        )

    def test_engine_detections_filter_by_partition(self):
        engine = CEPEngine(clock=SimulatedClock())
        deployed = self._deploy(engine)
        stream = _riffle(
            random.Random(1),
            [_player_tuples(1, [10, 110]), _player_tuples(2, [10, 110, 10, 110])],
        )
        for record in stream:
            engine.push("s", record)
        assert len(deployed.detections(partition=1)) == 1
        assert len(deployed.detections(partition=2)) == 2
        assert len(engine.detections("ping", partition=2)) == 2
        assert len(engine.detections()) == 3

    def test_register_query_partition_override(self):
        engine = CEPEngine(clock=SimulatedClock())
        deployed = engine.register_query(
            'SELECT "ping" MATCHING ( s(x >= 10 AND x < 50)'
            " -> s(x >= 110 AND x < 150) within 1 seconds"
            " select first consume all );",
            create_missing_streams=True,
            partition_field=None,
        )
        assert deployed.matcher.config.partition_field is None
        # The engine-wide default is untouched.
        assert engine.matcher_config.partition_field == "player"

    def test_two_simulated_players_produce_attributed_events(
        self, swipe_description
    ):
        # Two simulators — one child, one tall adult — feed one engine; the
        # detector must report who swiped, with each player's gesture
        # detected despite their very different body scales.
        recording = generate_multiuser_recording(
            {"swipe_right": SwipeTrajectory("right")},
            users=[user_by_name("child"), user_by_name("tall_adult")],
            gestures_per_user=1,
            seed=21,
        )
        detector = GestureDetector()
        detector.deploy(swipe_description)
        events_by_player = {}
        detector.on_gesture(
            "swipe_right",
            lambda event: events_by_player.setdefault(event.player, []).append(event),
        )
        detector.process_frames(recording.frames)
        assert set(events_by_player) == {1, 2}
        for events in events_by_player.values():
            assert all(isinstance(event, GestureEvent) for event in events)

    def test_multiuser_stream_equals_isolated_streams_through_the_view(
        self, swipe_description
    ):
        # End to end (raw frames -> kinect_t view -> matcher): interleaved
        # detections per player equal each player's isolated replay, on the
        # per-tuple and batched delivery paths.
        recording = generate_multiuser_recording(
            {"swipe_right": SwipeTrajectory("right")},
            users=[user_by_name("child"), user_by_name("adult")],
            gestures_per_user=1,
            seed=33,
        )

        def run(frames, batch_size=None):
            engine = CEPEngine(clock=SimulatedClock())
            install_kinect_view(engine)
            detector = GestureDetector(engine=engine)
            detector.deploy(swipe_description)
            detector.process_frames(frames, batch_size=batch_size)
            return [
                (d.partition, d.output, d.timestamp, d.step_timestamps)
                for d in detector.detections()
            ]

        expected = []
        for player_id in recording.player_ids:
            expected.extend(run(recording.players[player_id].frames))
        assert expected, "isolated replays produced no detections"
        interleaved = run(recording.frames)
        assert sorted(interleaved) == sorted(expected)
        batched = run(recording.frames, batch_size=32)
        assert sorted(batched) == sorted(expected)
