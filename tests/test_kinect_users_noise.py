"""Unit tests for repro.kinect.users and repro.kinect.noise."""

import numpy as np
import pytest

from repro.kinect.noise import CompositeNoise, GaussianNoise, NoNoise, OcclusionNoise
from repro.kinect.skeleton import Skeleton
from repro.kinect.users import REFERENCE_HEIGHT_MM, STANDARD_USERS, BodyProfile, user_by_name


class TestBodyProfile:
    def test_reference_adult_has_scale_one(self):
        assert BodyProfile("x", height_mm=REFERENCE_HEIGHT_MM).scale == pytest.approx(1.0)

    def test_child_scale_is_proportional(self):
        child = user_by_name("child")
        assert child.scale == pytest.approx(1200.0 / 1750.0)

    def test_scaled_lengths(self):
        user = BodyProfile("x", height_mm=875.0)
        assert user.scaled(100.0) == pytest.approx(50.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BodyProfile("x", height_mm=0)
        with pytest.raises(ValueError):
            BodyProfile("x", performance_speed=0)
        with pytest.raises(ValueError):
            BodyProfile("x", repeat_variability_mm=-1)
        with pytest.raises(ValueError):
            BodyProfile("x", handedness="both")

    def test_standard_users_cover_children_and_adults(self):
        heights = [user.height_mm for user in STANDARD_USERS]
        assert min(heights) <= 1300
        assert max(heights) >= 1900

    def test_user_by_name_unknown(self):
        with pytest.raises(KeyError):
            user_by_name("giant")

    def test_describe_is_plain_dict(self):
        info = user_by_name("adult").describe()
        assert info["scale"] == pytest.approx(1.0)
        assert "height_mm" in info


def _rest_frame():
    return Skeleton(position=(0.0, 0.0, 2000.0)).measure()


class TestGaussianNoise:
    def test_zero_sigma_is_identity(self):
        frame = _rest_frame()
        assert GaussianNoise(sigma_mm=0.0).apply(frame) is frame

    def test_noise_perturbs_coordinates(self):
        frame = _rest_frame()
        noisy = GaussianNoise(sigma_mm=10.0, rng=np.random.default_rng(1)).apply(frame)
        assert noisy is not frame
        assert noisy["rhand_x"] != frame["rhand_x"]

    def test_noise_magnitude_is_plausible(self):
        rng = np.random.default_rng(2)
        noise = GaussianNoise(sigma_mm=5.0, rng=rng)
        frame = _rest_frame()
        deltas = [
            abs(noise.apply(frame)["rhand_x"] - frame["rhand_x"]) for _ in range(200)
        ]
        assert 2.0 < float(np.mean(deltas)) < 8.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            GaussianNoise(sigma_mm=-1.0)

    def test_joint_subset_only_perturbs_those_joints(self):
        frame = _rest_frame()
        noise = GaussianNoise(sigma_mm=20.0, rng=np.random.default_rng(3), joints=["rhand"])
        noisy = noise.apply(frame)
        assert noisy["torso_x"] == frame["torso_x"]
        assert noisy["rhand_x"] != frame["rhand_x"]


class TestOcclusionNoise:
    def test_freezes_joint_during_episode(self):
        rng = np.random.default_rng(0)
        noise = OcclusionNoise(dropout_probability=1.0, mean_duration_frames=3.0, rng=rng)
        first = {"rhand_x": 1.0, "rhand_y": 2.0, "rhand_z": 3.0}
        second = {"rhand_x": 10.0, "rhand_y": 20.0, "rhand_z": 30.0}
        noise.apply(first)
        frozen = noise.apply(second)
        assert frozen["rhand_x"] == 10.0 or frozen["rhand_x"] == 1.0
        # After the first call an episode is guaranteed (probability 1.0), so
        # the second frame must repeat the first frame's coordinates.
        assert frozen["rhand_x"] == 1.0

    def test_reset_clears_episodes(self):
        noise = OcclusionNoise(dropout_probability=1.0, rng=np.random.default_rng(0))
        noise.apply({"rhand_x": 1.0, "rhand_y": 1.0, "rhand_z": 1.0})
        noise.reset()
        fresh = noise.apply({"rhand_x": 5.0, "rhand_y": 5.0, "rhand_z": 5.0})
        assert fresh["rhand_x"] == 5.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OcclusionNoise(dropout_probability=2.0)
        with pytest.raises(ValueError):
            OcclusionNoise(mean_duration_frames=0.5)


class TestCompositeAndNoNoise:
    def test_no_noise_is_identity(self):
        frame = _rest_frame()
        assert NoNoise().apply(frame) is frame

    def test_composite_applies_all_models(self):
        frame = _rest_frame()
        composite = CompositeNoise(
            [GaussianNoise(sigma_mm=1.0, rng=np.random.default_rng(0)), NoNoise()]
        )
        noisy = composite.apply(dict(frame))
        assert noisy["rhand_x"] != frame["rhand_x"]

    def test_composite_reset_does_not_fail(self):
        CompositeNoise([OcclusionNoise(), NoNoise()]).reset()
