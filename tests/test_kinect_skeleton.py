"""Unit tests for repro.kinect.skeleton."""

import numpy as np
import pytest

from repro.kinect.skeleton import (
    JOINTS,
    TRACKED_AXES,
    Joint,
    Skeleton,
    all_joint_fields,
    joint_field,
    measurement_to_joint,
    rest_pose,
)


class TestJointFields:
    def test_joint_field_concatenates_names(self):
        assert joint_field("rhand", "x") == "rhand_x"

    def test_unknown_joint_rejected(self):
        with pytest.raises(ValueError):
            joint_field("tail", "x")

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError):
            joint_field("rhand", "w")

    def test_all_joint_fields_cover_every_joint_and_axis(self):
        fields = all_joint_fields()
        assert len(fields) == len(JOINTS) * len(TRACKED_AXES)
        assert "torso_z" in fields


class TestRestPose:
    def test_contains_every_joint(self):
        pose = rest_pose()
        assert set(pose) == set(JOINTS)

    def test_torso_is_origin(self):
        assert np.allclose(rest_pose()["torso"], [0, 0, 0])

    def test_scaling_is_linear(self):
        small = rest_pose(scale=0.5)
        full = rest_pose(scale=1.0)
        assert np.allclose(small["head"], full["head"] * 0.5)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            rest_pose(scale=0.0)

    def test_head_is_above_torso_and_feet_below(self):
        pose = rest_pose()
        assert pose["head"][1] > 0
        assert pose["lfoot"][1] < 0


class TestJoint:
    def test_distance_between_joints(self):
        first = Joint("a", 0.0, 0.0, 0.0)
        second = Joint("b", 3.0, 4.0, 0.0)
        assert first.distance_to(second) == pytest.approx(5.0)

    def test_measurement_to_joint_extracts_coordinates(self):
        record = {"rhand_x": 1.0, "rhand_y": 2.0, "rhand_z": 3.0}
        joint = measurement_to_joint(record, "rhand")
        assert (joint.x, joint.y, joint.z) == (1.0, 2.0, 3.0)


class TestSkeleton:
    def test_measure_reports_all_fields(self):
        record = Skeleton().measure()
        assert set(record) == set(all_joint_fields())

    def test_torso_position_matches_placement(self):
        skeleton = Skeleton(position=(100.0, 50.0, 2000.0))
        record = skeleton.measure()
        assert record["torso_x"] == pytest.approx(100.0)
        assert record["torso_y"] == pytest.approx(50.0)
        assert record["torso_z"] == pytest.approx(2000.0)

    def test_move_to_shifts_all_joints(self):
        skeleton = Skeleton(position=(0.0, 0.0, 0.0))
        before = skeleton.measure()
        skeleton.move_to((500.0, 0.0, 2000.0))
        after = skeleton.measure()
        assert after["head_x"] - before["head_x"] == pytest.approx(500.0)
        assert after["head_z"] - before["head_z"] == pytest.approx(2000.0)

    def test_yaw_rotation_preserves_distances_from_torso(self):
        straight = Skeleton(yaw_deg=0.0)
        turned = Skeleton(yaw_deg=45.0)
        for skeleton in (straight, turned):
            skeleton.reset()
        d_straight = np.linalg.norm(
            straight.joint_positions()["rhand"] - straight.position
        )
        d_turned = np.linalg.norm(turned.joint_positions()["rhand"] - turned.position)
        assert d_straight == pytest.approx(d_turned)

    def test_yaw_rotation_does_not_change_height(self):
        skeleton = Skeleton(yaw_deg=90.0)
        record = skeleton.measure()
        assert record["head_y"] == pytest.approx(Skeleton().measure()["head_y"])

    def test_set_joint_offset_changes_measurement(self):
        skeleton = Skeleton(position=(0.0, 0.0, 0.0))
        skeleton.set_joint_offset("rhand", (100.0, 200.0, -300.0))
        record = skeleton.measure()
        assert record["rhand_x"] == pytest.approx(100.0)
        assert record["rhand_y"] == pytest.approx(200.0)
        assert record["rhand_z"] == pytest.approx(-300.0)

    def test_displace_joint_is_relative_to_rest(self):
        skeleton = Skeleton(position=(0.0, 0.0, 0.0))
        rest = skeleton.rest_offset("rhand")
        skeleton.displace_joint("rhand", (10.0, 0.0, 0.0))
        assert np.allclose(skeleton.joint_offset("rhand"), rest + [10.0, 0.0, 0.0])

    def test_unknown_joint_rejected(self):
        skeleton = Skeleton()
        with pytest.raises(ValueError):
            skeleton.set_joint_offset("tail", (0, 0, 0))
        with pytest.raises(ValueError):
            skeleton.displace_joint("tail", (0, 0, 0))

    def test_reset_restores_rest_pose(self):
        skeleton = Skeleton()
        skeleton.set_joint_offset("rhand", (999.0, 999.0, 999.0))
        skeleton.reset()
        assert np.allclose(skeleton.joint_offset("rhand"), skeleton.rest_offset("rhand"))

    def test_forearm_length_scales_with_body_size(self):
        small = Skeleton(scale=0.7).forearm_length()
        large = Skeleton(scale=1.4).forearm_length()
        assert large == pytest.approx(2.0 * small)

    def test_forearm_length_side_validation(self):
        with pytest.raises(ValueError):
            Skeleton().forearm_length(side="middle")

    def test_left_and_right_forearm_equal_in_rest_pose(self):
        skeleton = Skeleton()
        assert skeleton.forearm_length("left") == pytest.approx(
            skeleton.forearm_length("right")
        )
