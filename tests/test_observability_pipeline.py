"""End-to-end telemetry through the pipeline: session, shards, gateway.

The acceptance-level properties: a sampled feed produces one trace whose
spans connect ingest → queue → shard worker → matcher (and gateway →
… when fed over the wire), with consistent trace ids across the
``ProcessShard`` pickle boundary; ``/metrics`` serves the histogram
families and per-query matcher series; telemetry off means no registry
and no spans.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api.session import GestureSession, SessionConfig
from repro.gateway import GatewayClient, GatewayConfig, GatewayServer, TenantConfig
from repro.observability.__main__ import summarize_trace

HIGH = 'SELECT "high" MATCHING kinect_t(rhand_y > 450);'


def make_frames(players=3, rounds=20):
    frames = []
    ts = 0.0
    for round_index in range(rounds):
        for player in range(1, players + 1):
            phase = (round_index + player) % 4
            value = 500.0 if phase < 2 else 50.0
            ts += 0.01
            frames.append({"ts": ts, "player": player, "rhand_y": value})
    return frames


def run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=120))


class TestInlineSession:
    def test_telemetry_on_by_default_records_histograms(self):
        with GestureSession(SessionConfig()) as session:
            session.deploy(HIGH)
            session.feed(make_frames(), stream="kinect_t")
            assert session.metrics is not None
            snapshot = session.metrics.snapshot()
            assert snapshot["histograms"]["batch_processing"]["count"] >= 1
            assert snapshot["histograms"]["ingest_to_detection"]["count"] >= 1

    def test_telemetry_off_restores_bare_session(self):
        with GestureSession(SessionConfig(telemetry=False)) as session:
            session.deploy(HIGH)
            session.feed(make_frames(), stream="kinect_t")
            assert session.metrics is None
            assert session.telemetry is None
            assert session.export_trace()["traceEvents"] == []

    def test_query_stats_labelled_by_query(self):
        with GestureSession(SessionConfig()) as session:
            session.deploy(HIGH)
            session.feed(make_frames(), stream="kinect_t")
            stats = session.query_stats()
            assert set(stats) == {"high"}
            assert stats["high"]["runs_started"] > 0
            assert stats["high"]["detections"] > 0
            assert stats["high"]["predicate_evaluations"] > 0
            text = session.metrics.to_prometheus()
            assert 'repro_query_runs_started_total{query="high"}' in text

    def test_sampled_inline_feed_traces_feed_and_matcher(self):
        config = SessionConfig(trace_sample_rate=1.0)
        with GestureSession(config) as session:
            session.deploy(HIGH)
            session.feed(make_frames(), stream="kinect_t")
            events = session.export_trace()["traceEvents"]
            categories = {event["cat"] for event in events}
            assert {"ingest", "matcher"} <= categories
            assert len({event["args"]["trace_id"] for event in events}) == 1

    def test_export_trace_writes_file(self, tmp_path):
        config = SessionConfig(trace_sample_rate=1.0)
        path = tmp_path / "trace.json"
        with GestureSession(config) as session:
            session.deploy(HIGH)
            session.feed(make_frames(), stream="kinect_t")
            document = session.export_trace(path)
        assert json.loads(path.read_text(encoding="utf-8")) == document
        assert "Per-stage latency" in summarize_trace(document)

    def test_detections_identical_with_and_without_telemetry(self):
        frames = make_frames()
        results = []
        for config in (SessionConfig(telemetry=False), SessionConfig(),
                       SessionConfig(trace_sample_rate=1.0)):
            with GestureSession(config) as session:
                session.deploy(HIGH)
                session.feed(frames, stream="kinect_t")
                results.append([d.to_state() for d in session.detections()])
        assert results[0] == results[1] == results[2]


class TestShardedSession:
    def test_thread_shards_connect_one_trace(self):
        config = SessionConfig(shards=4, trace_sample_rate=1.0)
        with GestureSession(config) as session:
            session.deploy(HIGH)
            session.feed(make_frames(), stream="kinect_t")
            session.drain()
            events = session.export_trace()["traceEvents"]
            categories = {event["cat"] for event in events}
            assert {"ingest", "queue", "shard", "matcher"} <= categories
            assert len({event["args"]["trace_id"] for event in events}) == 1

    def test_sharded_histograms_and_query_stats_merge(self):
        config = SessionConfig(shards=4)
        with GestureSession(config) as session:
            session.deploy(HIGH)
            session.feed(make_frames(), stream="kinect_t")
            session.drain()
            stats = session.query_stats()
            assert stats["high"]["runs_started"] > 0
            merged = session.metrics.merged_histograms()
            assert merged["queue_wait"].count >= 1
            assert merged["batch_processing"].count >= 1
            assert merged["ingest_to_detection"].count > 0
            text = session.metrics.to_prometheus()
            assert "repro_queue_wait_seconds_bucket" in text
            assert 'repro_query_runs_started_total{query="high"}' in text

    def test_process_shards_one_trace_across_pids(self):
        config = SessionConfig(
            shards=2, shard_executor="process", trace_sample_rate=1.0
        )
        with GestureSession(config) as session:
            session.deploy(HIGH)
            session.feed(make_frames(), stream="kinect_t")
            session.drain()
            stats = session.query_stats()
            assert stats["high"]["runs_started"] > 0
            events = session.export_trace()["traceEvents"]
            categories = {event["cat"] for event in events}
            assert {"ingest", "queue", "shard", "matcher"} <= categories
            assert len({event["args"]["trace_id"] for event in events}) == 1
            worker_pids = {
                event["pid"] for event in events if event["cat"] in ("shard", "matcher")
            }
            parent_pids = {event["pid"] for event in events if event["cat"] == "ingest"}
            assert worker_pids and not (worker_pids & parent_pids)


class TestGateway:
    def test_gateway_metrics_and_trace_connect_to_shard_worker(self):
        config = GatewayConfig(
            port=0,
            tenants={
                "t1": TenantConfig(
                    session=SessionConfig(shards=4, trace_sample_rate=1.0)
                )
            },
        )

        async def scenario():
            server = GatewayServer(config)
            await server.start()
            try:
                client = await GatewayClient.connect("127.0.0.1", server.port)
                await client.hello("t1")
                assert await client.deploy(HIGH) == ["high"]
                ack = await client.send_tuples(make_frames(), stream="kinect_t")
                assert ack["accepted"] > 0
                await client.drain()

                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                raw = await reader.read(-1)
                writer.close()
                text = raw.split(b"\r\n\r\n", 1)[1].decode("utf-8")

                session = server.tenants["t1"].session
                loop = asyncio.get_running_loop()
                document = await loop.run_in_executor(None, session.export_trace)
                await client.bye()
                return text, document
            finally:
                await server.close()

        text, document = run(scenario())
        for family in (
            "repro_gateway_request_seconds",
            "repro_queue_wait_seconds",
            "repro_batch_processing_seconds",
            "repro_ingest_to_detection_seconds",
        ):
            assert f"{family}_bucket" in text
            assert f"{family}_sum" in text
            assert f"{family}_count" in text
        assert 'le="+Inf"' in text
        assert 'repro_query_runs_started_total{query="high",tenant="t1"}' in text

        events = document["traceEvents"]
        gateway_traces = {
            event["args"]["trace_id"] for event in events if event["cat"] == "gateway"
        }
        assert gateway_traces
        connected = [
            event for event in events if event["args"]["trace_id"] in gateway_traces
        ]
        categories = {event["cat"] for event in connected}
        assert {"gateway", "ingest", "queue", "shard", "matcher"} <= categories

    def test_request_histogram_counts_every_tuples_frame(self):
        async def scenario():
            server = GatewayServer(GatewayConfig(port=0))
            await server.start()
            try:
                client = await GatewayClient.connect("127.0.0.1", server.port)
                await client.hello("t1")
                await client.deploy(HIGH)
                for _ in range(3):
                    await client.send_tuples(make_frames(rounds=2), stream="kinect_t")
                await client.bye()
                return server.metrics.snapshot()
            finally:
                await server.close()

        snapshot = run(scenario())
        assert snapshot["request_latency"]["count"] == 3
        assert snapshot["request_latency"]["max_seconds"] > 0


class TestSlowBatchConfig:
    def test_slow_batch_threshold_reaches_telemetry(self):
        config = SessionConfig(slow_batch_seconds=0.25)
        with GestureSession(config) as session:
            assert session.telemetry.config.slow_batch_seconds == 0.25

    @pytest.mark.parametrize("field, value", [
        ("trace_sample_rate", 1.5),
        ("trace_buffer_size", 0),
        ("slow_batch_seconds", -1.0),
    ])
    def test_invalid_telemetry_config_rejected(self, field, value):
        with pytest.raises(ValueError):
            SessionConfig(**{field: value})


def boom(value):
    """Poison UDF; module-level so it pickles to process shards."""
    return 1 / 0


class TestTelemetryUnderFailure:
    """Telemetry merging when a process shard dies, and ring overflow."""

    def test_process_shard_death_leaves_parent_telemetry_mergeable(self):
        from repro.errors import ShardFailedError
        from repro.observability.telemetry import TelemetryConfig
        from repro.runtime import HashPartitionRouter, ShardedRuntime
        from repro.runtime.shard import ShardEngineSpec

        spec = ShardEngineSpec(
            install_view=False,
            raw_stream="kinect_t",
            telemetry=TelemetryConfig(trace_sample_rate=1.0, profile_hz=100.0),
        )
        router = HashPartitionRouter(2)
        p_bad = 1
        p_good = next(
            p for p in range(2, 20)
            if router.shard_for_key(p) != router.shard_for_key(p_bad)
        )
        runtime = ShardedRuntime(shard_count=2, spec=spec, executor="process")
        runtime.start()
        try:
            runtime.register_function("boom", boom, 1)
            runtime.register_query(HIGH)
            # Healthy work on both shards, pulled parent-side while alive.
            clean = [
                {"ts": index * 0.01, "player": player, "rhand_y": 500.0}
                for index in range(30)
                for player in (p_bad, p_good)
            ]
            runtime.push_many("kinect_t", clean)
            runtime.drain()
            runtime.collect_telemetry(timeout=10.0)
            merged_before = runtime.metrics.merged_histograms()
            count_before = merged_before["batch_processing"].count
            assert count_before >= 1

            # The boom() query poisons the next tuple on one partition.
            runtime.register_query(
                'SELECT "b" MATCHING kinect_t(boom(rhand_y) > 0);'
            )
            runtime.push_many(
                "kinect_t", [{"ts": 9.0, "player": p_bad, "rhand_y": 1.0}]
            )
            with pytest.raises(ShardFailedError):
                runtime.drain()
            assert runtime.failed

            # The collected telemetry survives the death: parent-side
            # merges still read, and further collection is a safe no-op.
            runtime.collect_telemetry(timeout=1.0)
            merged_after = runtime.metrics.merged_histograms()
            assert merged_after["batch_processing"].count >= count_before
            assert runtime.telemetry.tracer.spans() is not None
            liveness = runtime.shard_liveness()
            assert {row["shard_id"] for row in liveness} == {0, 1}
        finally:
            import contextlib

            with contextlib.suppress(ShardFailedError):
                runtime.stop()

    def test_tracer_ring_overflow_keeps_newest_spans(self):
        from repro.observability.tracing import Tracer

        tracer = Tracer(sample_rate=1.0, buffer_size=8)
        context = tracer.sample("req")
        for index in range(50):
            tracer.record(
                f"span-{index}", "shard", context.child("shard"),
                float(index), float(index) + 0.5,
            )
        spans = tracer.spans()
        assert len(spans) == 8
        assert [event["name"] for event in spans] == [
            f"span-{index}" for index in range(42, 50)
        ]
        # An absorb over capacity is bounded the same way and stays sorted.
        tracer.absorb(
            [
                {"name": f"late-{index}", "ph": "X", "ts": 1e9 + index, "dur": 1.0}
                for index in range(20)
            ]
        )
        absorbed = tracer.spans()
        assert len(absorbed) == 8
        assert all(event["name"].startswith("late-") for event in absorbed)
        timestamps = [event["ts"] for event in absorbed]
        assert timestamps == sorted(timestamps)
