"""Property test: generator-produced vocabularies are always analysis-clean.

The analyzer's soundness contract is that it never reports an
error-severity diagnostic for a query the paper's ``QueryGenerator``
can emit from a valid learned gesture description: every learned
abs-window has positive width (so every step is satisfiable) and the
generator always attaches a ``within`` clause derived from the observed
gesture duration (so every wait state is time-bounded).

Hypothesis drives ≥200 random vocabularies through the full
learn-side pipeline (``GestureDescription`` → ``QueryGenerator`` →
``analyze_vocabulary``) and asserts zero errors.  A companion
known-bad corpus pins down that the analyzer still *does* flag each
class of genuinely broken query — so a vacuous analyzer cannot pass.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Severity, analyze_query, analyze_vocabulary
from repro.core import GestureDescription, PoseWindow, QueryGenConfig, QueryGenerator, Window

FIELDS = ("rhand_x", "rhand_y", "rhand_z", "lhand_x", "lhand_y", "head_y")


def windows(fields):
    """Strategy: a Window over the given fields with positive widths."""
    centers = st.floats(min_value=-2000.0, max_value=2000.0, allow_nan=False)
    widths = st.floats(min_value=0.01, max_value=500.0, allow_nan=False)
    return st.tuples(
        st.tuples(*[centers for _ in fields]), st.tuples(*[widths for _ in fields])
    ).map(
        lambda cw: Window(
            center=dict(zip(fields, cw[0])), width=dict(zip(fields, cw[1]))
        )
    )


@st.composite
def descriptions(draw, name):
    fields = tuple(
        draw(
            st.lists(
                st.sampled_from(FIELDS), min_size=1, max_size=3, unique=True
            )
        )
    )
    pose_count = draw(st.integers(min_value=1, max_value=4))
    poses = [
        PoseWindow(index, draw(windows(fields)), support=draw(st.integers(1, 50)))
        for index in range(pose_count)
    ]
    max_duration = draw(st.floats(min_value=0.1, max_value=12.0, allow_nan=False))
    return GestureDescription(
        name=name,
        poses=poses,
        joints=sorted({field.rsplit("_", 1)[0] for field in fields}),
        sample_count=draw(st.integers(1, 100)),
        mean_duration_s=max_duration / 2.0,
        max_duration_s=max_duration,
    )


@st.composite
def generator_configs(draw):
    return QueryGenConfig(
        nested=draw(st.booleans()),
        coordinate_precision=draw(st.integers(min_value=0, max_value=2)),
        within_slack=draw(st.floats(min_value=1.0, max_value=3.0, allow_nan=False)),
    )


@st.composite
def vocabularies(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    names = [f"gesture_{index}" for index in range(count)]
    return [draw(descriptions(name)) for name in names], draw(generator_configs())


@settings(max_examples=200, deadline=None)
@given(vocabularies())
def test_generated_vocabularies_have_no_errors(vocab):
    """≥200 random learned vocabularies: zero error-severity findings."""
    described, config = vocab
    generator = QueryGenerator(config)
    queries = {d.name: generator.generate(d) for d in described}
    report = analyze_vocabulary(queries)
    errors = report.errors()
    assert errors == [], [d.describe() for d in errors]


@settings(max_examples=50, deadline=None)
@given(descriptions("single"))
def test_generated_single_query_has_no_errors(description):
    """Per-query path agrees with the vocabulary path on generated queries."""
    query = QueryGenerator().generate(description)
    assert [d for d in analyze_query(query) if d.severity is Severity.ERROR] == []


# ---------------------------------------------------------------------------
# Known-bad corpus: the analyzer must flag each class of broken query.
# Guards against the property above passing vacuously.
# ---------------------------------------------------------------------------

KNOWN_BAD = [
    pytest.param(
        'SELECT "never" MATCHING (kinect_t(abs(rhand_x - 400) < -5));',
        "QA001",
        id="negative-abs-width",
    ),
    pytest.param(
        'SELECT "never" MATCHING (kinect_t(abs(rhand_x - 100) < 10 and '
        "abs(rhand_x - 500) < 10));",
        "QA001",
        id="disjoint-abs-windows",
    ),
    pytest.param(
        'SELECT "never" MATCHING (kinect_t(rhand_x < 0 and rhand_x > 1));',
        "QA001",
        id="contradictory-comparisons",
    ),
    pytest.param(
        'SELECT "g" MATCHING (kinect_t(rhand_x > 0) -> '
        "kinect_t(abs(rhand_y - 1) < 0) within 1 seconds);",
        "QA002",
        id="dead-step",
    ),
    pytest.param(
        'SELECT "g" MATCHING (kinect_t(rhand_x > 1) -> kinect_t(rhand_x > 2));',
        "QA010",
        id="unbounded-wait",
    ),
    pytest.param(
        'SELECT "g" MATCHING (kinect_t(abs(rhand_x - 1) >= 0));',
        "QA003",
        id="tautology",
    ),
]


@pytest.mark.parametrize(("query", "expected_code"), KNOWN_BAD)
def test_known_bad_corpus_is_flagged(query, expected_code):
    found = analyze_query(query)
    assert expected_code in {d.code for d in found}, [d.describe() for d in found]


def test_known_bad_vocabulary_level_codes():
    """Duplicates and subsumption are cross-query, so check them here."""
    good = 'SELECT "a" MATCHING (kinect_t(abs(rhand_x - 400) < 50));'
    narrow = 'SELECT "c" MATCHING (kinect_t(abs(rhand_x - 400) < 5));'
    report = analyze_vocabulary({"a": good, "b": good, "c": narrow})
    reported = {d.code for d in report.diagnostics}
    assert "QA040" in reported  # a and b are byte-identical
    assert "QA042" in reported  # c is subsumed by a/b
