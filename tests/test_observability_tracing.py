"""Tracing, JSON logging, the slow-batch log and the summarize CLI.

Unit-level here; the pipeline-spanning assertions (one trace id from the
gateway frame to the matcher span, across the process-shard boundary)
live in ``tests/test_observability_pipeline.py``.
"""

from __future__ import annotations

import io
import json
import logging
import pickle

import pytest

from repro.observability.__main__ import main as cli_main, summarize_trace
from repro.observability.jsonlog import JsonFormatter, configure_json_logging
from repro.observability.telemetry import SLOW_BATCH_LOGGER, Telemetry, TelemetryConfig
from repro.observability.tracing import (
    TraceContext,
    Tracer,
    current_context,
    use_context,
)


class TestTraceContext:
    def test_dict_round_trip(self):
        context = TraceContext(trace_id="t-1", span_id="s-1", sampled=True)
        assert TraceContext.from_dict(context.to_dict()) == context

    def test_pickles_across_process_boundaries(self):
        context = TraceContext(trace_id="t-1", span_id="s-1")
        assert pickle.loads(pickle.dumps(context)) == context

    def test_child_keeps_trace_changes_span(self):
        context = TraceContext(trace_id="t-1", span_id="s-1")
        child = context.child("s-2")
        assert child.trace_id == "t-1"
        assert child.span_id == "s-2"

    def test_from_dict_rejects_missing_ids(self):
        with pytest.raises(ValueError):
            TraceContext.from_dict({"trace_id": "t-1"})


class TestHeadSampling:
    def test_rate_zero_never_samples(self):
        tracer = Tracer(sample_rate=0.0)
        assert not tracer.active
        assert all(tracer.sample() is None for _ in range(50))

    def test_rate_one_always_samples(self):
        tracer = Tracer(sample_rate=1.0)
        contexts = [tracer.sample() for _ in range(10)]
        assert all(context is not None for context in contexts)
        assert len({context.trace_id for context in contexts}) == 10

    def test_fractional_rate_is_deterministic_interval(self):
        tracer = Tracer(sample_rate=0.25)
        decisions = [tracer.sample() is not None for _ in range(12)]
        assert decisions == [False, False, False, True] * 3

    def test_adopt_continues_caller_context(self):
        tracer = Tracer(sample_rate=1.0)
        adopted = tracer.adopt({"trace_id": "t-9", "span_id": "s-9"})
        assert adopted == TraceContext(trace_id="t-9", span_id="s-9")

    def test_adopt_is_free_when_inactive(self):
        assert Tracer(sample_rate=0.0).adopt({"trace_id": "t", "span_id": "s"}) is None

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


class TestSpans:
    def test_span_records_parent_and_nests(self):
        tracer = Tracer(sample_rate=1.0)
        root = tracer.sample("req")
        outer = tracer.span("outer", "stage", root)
        inner = tracer.span("inner", "stage", outer.context)
        inner.close()
        outer.close(tuples=3)
        spans = {event["name"]: event for event in tracer.spans()}
        assert spans["inner"]["args"]["parent_id"] == outer.context.span_id
        assert spans["outer"]["args"]["parent_id"] == root.span_id
        assert spans["outer"]["args"]["tuples"] == 3
        assert spans["inner"]["args"]["trace_id"] == root.trace_id

    def test_none_context_costs_nothing(self):
        tracer = Tracer(sample_rate=1.0)
        assert tracer.span("noop", "stage", None) is None

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(sample_rate=1.0, buffer_size=8)
        root = tracer.sample()
        for index in range(20):
            tracer.span(f"s{index}", "stage", root).close()
        spans = tracer.spans()
        assert len(spans) == 8
        assert spans[-1]["name"] == "s19"

    def test_drain_hands_over_each_span_once(self):
        tracer = Tracer(sample_rate=1.0)
        tracer.span("once", "stage", tracer.sample()).close()
        drained = tracer.drain()
        assert [event["name"] for event in drained] == ["once"]
        assert tracer.spans() == []

    def test_absorb_merges_chronologically(self):
        parent = Tracer(sample_rate=1.0)
        child = Tracer(sample_rate=1.0)
        context = parent.sample()
        parent.record("late", "stage", context, start=2.0, end=3.0)
        child.record("early", "stage", context, start=1.0, end=1.5)
        parent.absorb(child.drain())
        assert [event["name"] for event in parent.spans()] == ["early", "late"]

    def test_export_is_chrome_trace_document(self):
        tracer = Tracer(sample_rate=1.0)
        tracer.span("one", "stage", tracer.sample()).close()
        document = tracer.export()
        assert document["displayTimeUnit"] == "ms"
        event = document["traceEvents"][0]
        assert event["ph"] == "X"
        assert {"name", "cat", "ts", "dur", "pid", "tid", "args"} <= set(event)

    def test_ambient_context_is_scoped(self):
        context = TraceContext(trace_id="t", span_id="s")
        assert current_context() is None
        with use_context(context):
            assert current_context() == context
        assert current_context() is None


class TestJsonLogging:
    def render(self, logger_name="repro.test", level=logging.INFO, **log_kwargs):
        stream = io.StringIO()
        logger = configure_json_logging(logger_name, level=level, stream=stream)
        logger.propagate = False
        logger.info("hello %s", "world", **log_kwargs)
        return json.loads(stream.getvalue())

    def test_basic_record_shape(self):
        payload = self.render()
        assert payload["message"] == "hello world"
        assert payload["level"] == "INFO"
        assert payload["logger"] == "repro.test"
        assert "trace_id" not in payload

    def test_explicit_trace_id_wins(self):
        payload = self.render(extra={"trace_id": "t-42"})
        assert payload["trace_id"] == "t-42"

    def test_ambient_context_fills_trace_id(self):
        stream = io.StringIO()
        logger = configure_json_logging("repro.test2", stream=stream)
        logger.propagate = False
        with use_context(TraceContext(trace_id="t-amb", span_id="s")):
            logger.info("inside")
        assert json.loads(stream.getvalue())["trace_id"] == "t-amb"

    def test_data_payload_merges_without_clobbering(self):
        payload = self.render(extra={"data": {"tuples": 5, "message": "nope"}})
        assert payload["tuples"] == 5
        assert payload["message"] == "hello world"  # reserved keys win

    def test_unserialisable_values_are_stringified(self):
        payload = self.render(extra={"data": {"path": object()}})
        assert isinstance(payload["path"], str)

    def test_reconfigure_replaces_handler(self):
        logger = configure_json_logging("repro.test3", stream=io.StringIO())
        configure_json_logging("repro.test3", stream=io.StringIO())
        json_handlers = [
            handler
            for handler in logger.handlers
            if getattr(handler, "_repro_json_handler", False)
        ]
        assert len(json_handlers) == 1

    def test_exception_is_rendered(self):
        stream = io.StringIO()
        logger = configure_json_logging("repro.test4", stream=stream)
        logger.propagate = False
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            logger.exception("failed")
        payload = json.loads(stream.getvalue())
        assert "RuntimeError: boom" in payload["exception"]


class TestSlowBatchLog:
    @pytest.fixture()
    def slow_stream(self):
        stream = io.StringIO()
        logger = configure_json_logging(SLOW_BATCH_LOGGER, stream=stream)
        logger.propagate = False
        yield stream
        for handler in list(logger.handlers):
            logger.removeHandler(handler)

    def test_under_threshold_stays_silent(self, slow_stream):
        telemetry = Telemetry(TelemetryConfig(slow_batch_seconds=1.0))
        assert not telemetry.maybe_log_slow_batch(0.5, "s", 10)
        assert slow_stream.getvalue() == ""

    def test_disabled_threshold_stays_silent(self, slow_stream):
        telemetry = Telemetry(TelemetryConfig())
        assert not telemetry.maybe_log_slow_batch(999.0, "s", 10)
        assert slow_stream.getvalue() == ""

    def test_over_threshold_logs_structured_warning(self, slow_stream):
        telemetry = Telemetry(TelemetryConfig(slow_batch_seconds=0.01))
        context = TraceContext(trace_id="t-slow", span_id="s")
        assert telemetry.maybe_log_slow_batch(
            0.5, "kinect_t", 128, shard_id=3, context=context
        )
        payload = json.loads(slow_stream.getvalue())
        assert payload["level"] == "WARNING"
        assert payload["trace_id"] == "t-slow"
        assert payload["stream"] == "kinect_t"
        assert payload["tuples"] == 128
        assert payload["shard_id"] == 3
        assert payload["threshold_seconds"] == 0.01


def make_document():
    tracer = Tracer(sample_rate=1.0)
    root = tracer.sample("req")
    for category, duration in (("gateway", 0.004), ("queue", 0.002), ("shard", 0.008)):
        tracer.record(category, category, root.child(category), 1.0, 1.0 + duration)
    return tracer.export()


class TestSummarizeCli:
    def test_summarize_renders_stage_table(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(make_document()), encoding="utf-8")
        assert cli_main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        for needle in ("Per-stage latency", "gateway", "queue", "shard", "Critical path"):
            assert needle in out

    def test_stage_ordering_by_total_time(self):
        text = summarize_trace(make_document())
        table = text.splitlines()
        assert table.index(
            next(line for line in table if line.startswith("shard"))
        ) < table.index(next(line for line in table if line.startswith("queue")))

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert cli_main(["summarize", str(tmp_path / "absent.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_empty_document_is_not_an_error(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text('{"traceEvents": []}', encoding="utf-8")
        assert cli_main(["summarize", str(path)]) == 0
        captured = capsys.readouterr()
        assert "no complete" in captured.out
        assert captured.err == ""

    def test_malformed_document_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bogus.json"
        path.write_text('{"spans": []}', encoding="utf-8")
        assert cli_main(["summarize", str(path)]) == 2
        assert "traceEvents" in capsys.readouterr().err

    def test_json_output_is_machine_readable(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(make_document()), encoding="utf-8")
        assert cli_main(["summarize", str(path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["spans"] == 3
        assert set(document["stages"]) == {"gateway", "queue", "shard"}
        assert document["critical_path"]["traces"] == 1
        shares = document["critical_path"]["stage_share"]
        assert abs(sum(entry["share"] for entry in shares.values()) - 1.0) < 1e-9

    def test_json_output_for_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text('{"traceEvents": []}', encoding="utf-8")
        assert cli_main(["summarize", str(path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document == {"spans": 0, "stages": {}, "critical_path": {}}
