"""Tests of the GestureSession façade (repro.api.session).

Lifecycle (double-start, feed-after-close, context management), handler
exception isolation, per-partition detection filtering, vocabulary
deployment, sink attachment, workflow delegation, and the typed error
hierarchy of the engine lookups the façade is built on.
"""

from __future__ import annotations

import pytest

from repro.api import F, GestureSession, Q, SessionConfig
from repro.cep import CEPEngine, CollectingSink, install_kinect_view
from repro.core import GestureDescription, LearnerConfig, PoseWindow, Window
from repro.detection import WorkflowConfig
from repro.errors import (
    QueryRegistrationError,
    ReproError,
    SessionClosedError,
    SessionError,
    SessionStateError,
    UnknownQueryError,
    UnknownStreamError,
    UnknownViewError,
)
from repro.kinect import KinectSimulator, SwipeTrajectory, user_by_name
from repro.storage import GestureDatabase
from repro.streams import SimulatedClock

HANDS_UP = Q.stream("kinect_t").where(F("rhand_y") > 400).output("hands_up")

#: A frame that satisfies HANDS_UP once pushed straight to the view stream.
def _frame(ts=0.0, rhand_y=500.0, **extra):
    record = {"ts": ts, "rhand_y": rhand_y}
    record.update(extra)
    return record


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_context_manager_starts_and_closes(self):
        with GestureSession() as session:
            assert session.started
            assert not session.closed
        assert session.closed
        assert not session.started

    def test_double_start_raises(self):
        session = GestureSession()
        session.start()
        with pytest.raises(SessionStateError, match="already started"):
            session.start()
        session.close()

    def test_start_inside_context_raises(self):
        with GestureSession() as session:
            with pytest.raises(SessionStateError):
                session.start()

    def test_feed_after_close_raises(self):
        session = GestureSession()
        session.start()
        session.close()
        with pytest.raises(SessionClosedError):
            session.feed([_frame()], stream="kinect_t")
        with pytest.raises(SessionClosedError):
            session.feed_frame(_frame(), stream="kinect_t")
        with pytest.raises(SessionClosedError):
            session.deploy(HANDS_UP)

    def test_start_after_close_raises(self):
        session = GestureSession()
        session.start()
        session.close()
        with pytest.raises(SessionClosedError):
            session.start()

    def test_close_is_idempotent(self):
        session = GestureSession()
        session.start()
        session.close()
        session.close()

    def test_lazy_start_on_first_use(self):
        session = GestureSession()
        assert not session.started
        session.deploy(HANDS_UP)
        assert session.started
        session.close()

    def test_session_error_hierarchy(self):
        assert issubclass(SessionStateError, SessionError)
        assert issubclass(SessionClosedError, SessionStateError)
        assert issubclass(SessionError, ReproError)

    def test_events_accessors_before_start_are_empty(self):
        session = GestureSession()
        assert session.events == []
        assert session.deployed_gestures() == []

    def test_collected_results_stay_readable_after_close(self):
        with GestureSession() as session:
            session.deploy(HANDS_UP)
            session.feed([_frame()], stream="kinect_t")
            assert len(session.events) == 1
        # The with-block closed the session; results must not vanish.
        assert [event.gesture for event in session.events] == ["hands_up"]
        assert session.deployed_gestures() == ["hands_up"]
        assert len(session.detections("hands_up")) == 1

    def test_repr_reports_state(self):
        session = GestureSession()
        assert "new" in repr(session)
        session.start()
        assert "started" in repr(session)
        session.close()
        assert "closed" in repr(session)


# ---------------------------------------------------------------------------
# Deployment, feeding, events
# ---------------------------------------------------------------------------


class TestDetection:
    def test_deploy_builder_feed_view_stream(self):
        with GestureSession() as session:
            session.deploy(HANDS_UP)
            session.feed([_frame()], stream="kinect_t")
            assert [event.gesture for event in session.events] == ["hands_up"]

    def test_deploy_text_and_description(self):
        description = GestureDescription(
            name="poke",
            poses=[PoseWindow(0, Window({"rhand_x": 100.0}, {"rhand_x": 50.0}))],
        )
        with GestureSession() as session:
            session.deploy('SELECT "textual" MATCHING kinect_t( rhand_y > 400 );')
            session.deploy(description)
            assert session.deployed_gestures() == ["poke", "textual"]

    def test_handler_exceptions_do_not_break_delivery(self):
        calls = []

        def broken(event):
            raise RuntimeError("handler bug")

        with GestureSession() as session:
            session.deploy(HANDS_UP)
            session.on("hands_up", broken)
            session.on("hands_up", calls.append)
            session.on_any(calls.append)
            session.feed([_frame()], stream="kinect_t")

            # Both healthy handlers ran, the event was recorded, and the
            # failure was captured instead of propagating.
            assert len(calls) == 2
            assert [event.gesture for event in session.events] == ["hands_up"]
            assert len(session.handler_errors) == 1
            failure = session.handler_errors[0]
            assert failure.gesture == "hands_up"
            assert isinstance(failure.error, RuntimeError)

    def test_on_error_observers_are_notified(self):
        seen = []
        with GestureSession() as session:
            session.deploy(HANDS_UP)
            session.on_error(seen.append)
            session.on("hands_up", lambda event: 1 / 0)
            session.feed([_frame()], stream="kinect_t")
            assert len(seen) == 1
            assert isinstance(seen[0].error, ZeroDivisionError)

    def test_partition_filtering_through_facade(self):
        two_step = (
            Q.stream("kinect_t")
            .where(F("rhand_y") > 400)
            .then(F("rhand_y") < 100)
            .within(5.0)
            .output("drop_hand")
        )
        with GestureSession() as session:
            session.deploy(two_step)
            # Player 1 completes the pattern; player 2 only ever matches the
            # first step, interleaved with player 1's frames.
            session.feed(
                [
                    _frame(ts=0.0, rhand_y=500.0, player=1),
                    _frame(ts=0.1, rhand_y=500.0, player=2),
                    _frame(ts=0.2, rhand_y=50.0, player=1),
                    _frame(ts=0.3, rhand_y=450.0, player=2),
                ],
                stream="kinect_t",
            )
            assert len(session.detections()) == 1
            assert len(session.detections(partition=1)) == 1
            assert session.detections(partition=2) == []
            assert session.detections("drop_hand", partition=1)[0].partition == 1
            assert session.events[0].player == 1

    def test_attach_sink(self):
        sink = CollectingSink()
        with GestureSession() as session:
            session.deploy(HANDS_UP)
            session.attach_sink(sink, query="hands_up")
            session.feed([_frame()], stream="kinect_t")
            assert sink.outputs() == ["hands_up"]

    def test_deploy_with_sink_argument(self):
        sink = CollectingSink()
        with GestureSession() as session:
            session.deploy(HANDS_UP, sink=sink)
            session.feed([_frame()], stream="kinect_t")
            assert sink.outputs() == ["hands_up"]

    def test_batched_feed_matches_per_tuple(self):
        frames = [
            _frame(ts=index * 0.05, rhand_y=500.0 if index % 7 == 0 else 0.0)
            for index in range(100)
        ]
        def run(batch_size):
            with GestureSession(SessionConfig(batch_size=batch_size)) as session:
                session.deploy(HANDS_UP)
                session.feed(frames, stream="kinect_t")
                return [(d.output, d.timestamp) for d in session.detections()]

        assert run(None) == run(16)

    def test_clear_resets_events_and_errors(self):
        with GestureSession() as session:
            session.deploy(HANDS_UP)
            session.on("hands_up", lambda event: 1 / 0)
            session.feed([_frame()], stream="kinect_t")
            assert session.events and session.handler_errors
            session.clear()
            assert session.events == []
            assert session.handler_errors == []
            assert session.detections() == []


# ---------------------------------------------------------------------------
# Learning and vocabularies
# ---------------------------------------------------------------------------


def _swipe_samples(count=4, seed_user="adult"):
    simulator = KinectSimulator(user=user_by_name(seed_user), clock=SimulatedClock())
    swipe = SwipeTrajectory(direction="right")
    return [
        simulator.perform_variation(swipe, hold_start_s=0.3, hold_end_s=0.3)
        for _ in range(count)
    ]


class TestLearning:
    def test_learn_saves_and_deploys(self):
        config = SessionConfig(
            workflow=WorkflowConfig(learner=LearnerConfig(joints=("rhand",)))
        )
        with GestureSession(config) as session:
            description = session.learn("swipe_right", _swipe_samples(), deploy=True)
            assert description.pose_count >= 2
            assert session.deployed_gestures() == ["swipe_right"]
            record = session.database.load_gesture("swipe_right")
            assert record.query_text.startswith('SELECT "swipe_right"')

            tester = KinectSimulator(user=user_by_name("child"), clock=SimulatedClock())
            swipe = SwipeTrajectory(direction="right")
            for _ in range(3):
                session.feed(
                    tester.perform_variation(swipe, hold_start_s=0.2, hold_end_s=0.2)
                )
                tester.idle_frames(0.5)
            assert any(event.gesture == "swipe_right" for event in session.events)

    def test_deploy_vocabulary_from_database(self):
        database = GestureDatabase(":memory:")
        database.save_gesture(
            GestureDescription(
                name="stored",
                poses=[PoseWindow(0, Window({"rhand_y": 500.0}, {"rhand_y": 100.0}))],
            )
        )
        with GestureSession(database=database) as session:
            assert session.deploy_vocabulary(database) == ["stored"]
            assert session.deployed_gestures() == ["stored"]
        # A caller-owned database is not closed with the session.
        assert database.gesture_names() == ["stored"]

    def test_deploy_vocabulary_from_manifest(self):
        manifest = {
            "hands_up": Q.stream("kinect_t").where(F("rhand_y") > 400),
            "textual": 'SELECT "textual" MATCHING kinect_t( rhand_y < -400 );',
            "swipe_right": _swipe_samples(3),
        }
        config = SessionConfig(
            workflow=WorkflowConfig(learner=LearnerConfig(joints=("rhand",)))
        )
        with GestureSession(config) as session:
            deployed = session.deploy_vocabulary(manifest)
            assert sorted(deployed) == ["hands_up", "swipe_right", "textual"]
            assert session.deployed_gestures() == sorted(deployed)
            # The learned entry was persisted like session.learn() would.
            assert session.database.has_gesture("swipe_right")

    def test_workflow_delegation_shares_the_stack(self):
        config = SessionConfig(
            workflow=WorkflowConfig(
                learner=LearnerConfig(joints=("rhand",)), min_samples=2
            )
        )
        with GestureSession(config) as session:
            session.begin_gesture("swipe_right")
            for sample in _swipe_samples(2):
                session.record_sample(sample)
            description = session.finalize()
            assert description.name == "swipe_right"
            # The workflow deployed through the session's shared detector.
            assert "swipe_right" in session.deployed_gestures()
            assert session.database.has_gesture("swipe_right")
            assert any("learned" in message for message in session.messages)
            session.accept()

    def test_external_engine_is_reused(self):
        engine = CEPEngine(clock=SimulatedClock())
        install_kinect_view(engine)
        with GestureSession(engine=engine) as session:
            assert session.engine is engine
            session.deploy(HANDS_UP)
            engine.push("kinect_t", _frame())
            assert [event.gesture for event in session.events] == ["hands_up"]

    def test_external_engine_rejects_conflicting_config(self):
        from repro.cep import MatcherConfig

        engine = CEPEngine(clock=SimulatedClock())
        install_kinect_view(engine)
        # A non-default matcher config cannot retrofit an existing engine.
        session = GestureSession(
            SessionConfig(matcher=MatcherConfig(partition_field=None)), engine=engine
        )
        with pytest.raises(SessionStateError, match="matcher"):
            session.start()
        # Neither can a clock the engine does not already own.
        session = GestureSession(clock=SimulatedClock(), engine=engine)
        with pytest.raises(SessionStateError, match="clock"):
            session.start()

    def test_manifest_rejects_bare_predicates_with_typed_error(self):
        from repro.errors import QueryBuilderError

        with GestureSession() as session:
            with pytest.raises(QueryBuilderError, match="wrap it in"):
                session.deploy_vocabulary({"hands_up": F("rhand_y") > 400})


# ---------------------------------------------------------------------------
# Typed engine errors (satellite)
# ---------------------------------------------------------------------------


class TestTypedErrors:
    def test_unknown_view_names_key_and_lists_installed(self):
        engine = CEPEngine(clock=SimulatedClock())
        install_kinect_view(engine)
        with pytest.raises(UnknownViewError, match="kinect_t") as info:
            engine.get_view("nope")
        assert "nope" in str(info.value)
        assert isinstance(info.value, UnknownStreamError)
        assert isinstance(info.value, ReproError)

    def test_unknown_query_names_key_and_lists_deployed(self):
        engine = CEPEngine(clock=SimulatedClock())
        engine.create_stream("kinect_t")
        engine.register_query(HANDS_UP)
        with pytest.raises(UnknownQueryError, match="hands_up") as info:
            engine.get_query("absent")
        assert "absent" in str(info.value)
        assert isinstance(info.value, QueryRegistrationError)
        with pytest.raises(UnknownQueryError):
            engine.unregister_query("absent")
        with pytest.raises(UnknownQueryError):
            engine.enable_query("absent")

    def test_unknown_stream_lists_registered(self):
        engine = CEPEngine(clock=SimulatedClock())
        engine.create_stream("kinect")
        with pytest.raises(UnknownStreamError, match="kinect"):
            engine.get_stream("missing")

    def test_register_query_rejects_unbuildable_objects(self):
        engine = CEPEngine(clock=SimulatedClock())
        with pytest.raises(QueryRegistrationError, match="cannot deploy"):
            engine.register_query(42)
