"""Unit tests for the query-language lexer and parser."""

import pytest

from repro.cep.parser import parse_expression, parse_query, tokenize
from repro.cep.query import ConsumePolicy, EventPattern, SelectPolicy, SequencePattern
from repro.errors import QuerySyntaxError

#: The full example query from the paper's Fig. 1 (field names lower-cased to
#: match this library's stream schema).
FIG1_QUERY = """
SELECT "swipe_right"
MATCHING (
  kinect(
    abs(rhand_x - torso_x - 0) < 50 and
    abs(rhand_y - torso_y - 150) < 50 and
    abs(rhand_z - torso_z + 120) < 50
  ) ->
  kinect(
    abs(rhand_x - torso_x - 400) < 50 and
    abs(rhand_y - torso_y - 150) < 50 and
    abs(rhand_z - torso_z + 420) < 50
  )
  within 1 seconds select first consume all
) ->
kinect(
  abs(rhand_x - torso_x - 800) < 50 and
  abs(rhand_y - torso_y - 150) < 50 and
  abs(rhand_z - torso_z + 120) < 50
)
within 1 seconds select first consume all;
"""


class TestTokenizer:
    def test_tokenizes_identifiers_keywords_and_numbers(self):
        tokens = tokenize("SELECT x within 1.5 seconds")
        kinds = [token.kind for token in tokens]
        assert kinds == ["keyword", "ident", "keyword", "number", "ident", "eof"]

    def test_tracks_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_strings_with_both_quote_styles(self):
        assert tokenize('"hello"')[0].value == "hello"
        assert tokenize("'hello'")[0].value == "hello"

    def test_unterminated_string_raises(self):
        with pytest.raises(QuerySyntaxError):
            tokenize('"unterminated')

    def test_comments_are_skipped(self):
        tokens = tokenize("a # comment here\nb -- another\nc")
        values = [token.value for token in tokens if token.kind == "ident"]
        assert values == ["a", "b", "c"]

    def test_multi_character_operators(self):
        values = [t.value for t in tokenize("-> <= >= == != <>") if t.kind == "op"]
        assert values == ["->", "<=", ">=", "==", "!=", "<>"]

    def test_unexpected_character_raises_with_position(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            tokenize("a @ b")
        assert excinfo.value.column == 3


class TestExpressionParsing:
    def test_operator_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.evaluate({}) == 7

    def test_parentheses_override_precedence(self):
        assert parse_expression("(1 + 2) * 3").evaluate({}) == 9

    def test_comparison_binds_looser_than_arithmetic(self):
        assert parse_expression("2 + 3 < 10").evaluate({}) is True

    def test_and_or_not(self):
        expr = parse_expression("not (a > 5) and (b < 2 or b > 8)")
        assert expr.evaluate({"a": 3, "b": 9}) is True
        assert expr.evaluate({"a": 7, "b": 9}) is False

    def test_unary_minus_and_plus(self):
        assert parse_expression("-5 + +3").evaluate({}) == -2

    def test_function_call_with_arguments(self):
        expr = parse_expression("dist(0, 0, 0, x, y, 0) < 10")
        assert expr.evaluate({"x": 3.0, "y": 4.0}) is True

    def test_trailing_garbage_raises(self):
        with pytest.raises(QuerySyntaxError):
            parse_expression("a < 1 garbage garbage")

    def test_round_trip_through_to_query(self):
        text = "abs(rhand_x - 400) < 50 and abs(rhand_y - 150) < 50"
        expr = parse_expression(text)
        assert parse_expression(expr.to_query()) == expr


class TestQueryParsing:
    def test_parses_the_paper_fig1_query(self):
        query = parse_query(FIG1_QUERY)
        assert query.output == "swipe_right"
        assert query.event_count() == 3
        assert query.predicate_count() == 9
        assert query.streams() == {"kinect"}

    def test_fig1_nested_structure_and_policies(self):
        query = parse_query(FIG1_QUERY)
        outer = query.pattern
        assert isinstance(outer, SequencePattern)
        assert outer.within_seconds == pytest.approx(1.0)
        assert outer.select is SelectPolicy.FIRST
        assert outer.consume is ConsumePolicy.ALL
        inner = outer.elements[0]
        assert isinstance(inner, SequencePattern)
        assert inner.within_seconds == pytest.approx(1.0)
        assert isinstance(outer.elements[1], EventPattern)

    def test_single_event_query(self):
        query = parse_query('SELECT "x" MATCHING kinect_t(rhand_y > 400);')
        assert query.event_count() == 1
        assert isinstance(query.pattern, SequencePattern)

    def test_time_units(self):
        assert parse_query(
            'SELECT "x" MATCHING kinect(a > 1) -> kinect(a > 2) within 500 ms'
        ).pattern.within_seconds == pytest.approx(0.5)
        assert parse_query(
            'SELECT "x" MATCHING kinect(a > 1) -> kinect(a > 2) within 2 minutes'
        ).pattern.within_seconds == pytest.approx(120.0)

    def test_missing_select_raises(self):
        with pytest.raises(QuerySyntaxError):
            parse_query('MATCHING kinect(a > 1);')

    def test_missing_matching_raises(self):
        with pytest.raises(QuerySyntaxError):
            parse_query('SELECT "x" kinect(a > 1);')

    def test_unknown_select_policy_raises(self):
        with pytest.raises(QuerySyntaxError):
            parse_query('SELECT "x" MATCHING kinect(a>1) -> kinect(a>2) select sometimes')

    def test_unknown_consume_policy_raises(self):
        with pytest.raises(QuerySyntaxError):
            parse_query('SELECT "x" MATCHING kinect(a>1) -> kinect(a>2) consume some')

    def test_trailing_tokens_raise(self):
        with pytest.raises(QuerySyntaxError):
            parse_query('SELECT "x" MATCHING kinect(a > 1); SELECT')

    def test_generated_text_round_trips(self):
        query = parse_query(FIG1_QUERY)
        reparsed = parse_query(query.to_query())
        assert reparsed.output == query.output
        assert reparsed.event_count() == query.event_count()
        assert reparsed.predicate_count() == query.predicate_count()

    def test_case_insensitive_keywords(self):
        query = parse_query('select "x" matching kinect(a > 1) WITHIN 1 SECONDS;')
        assert query.pattern.within_seconds == pytest.approx(1.0)
