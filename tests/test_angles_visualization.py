"""Unit tests for the joint-angle view (Sec. 3.2 outlook) and the
testing-phase visualisation helpers (Fig. 5 substitute)."""

import pytest

from repro.cep import CEPEngine, install_kinect_view
from repro.core import GestureLearner, LearnerConfig
from repro.detection import describe_attempt, describe_gesture, render_gesture_ascii
from repro.kinect import KinectSimulator, NoNoise, SwipeTrajectory, WaveTrajectory
from repro.streams import SimulatedClock
from repro.transform import (
    JointAngleTransformer,
    KinectTransformer,
    LimbSegment,
    install_angle_view,
)

WAVE_ANGLE_QUERY = """
SELECT "wave"
MATCHING kinect_a(rforearm_yaw > 110 and rforearm_pitch > 5) ->
         kinect_a(rforearm_yaw < 50 and rforearm_pitch > 5) ->
         kinect_a(rforearm_yaw > 110 and rforearm_pitch > 5)
within 3 seconds select first consume all;
"""


class TestJointAngleTransformer:
    def test_adds_angle_fields_for_default_segments(self):
        simulator = KinectSimulator(clock=SimulatedClock(), noise=NoNoise())
        frame = KinectTransformer().transform(simulator.measure_rest())
        enriched = JointAngleTransformer().transform(frame)
        assert "rforearm_pitch" in enriched
        assert "rforearm_yaw" in enriched
        assert "lupperarm_yaw" in enriched
        # Original coordinate fields are preserved.
        assert enriched["rhand_x"] == frame["rhand_x"]

    def test_raised_forearm_has_high_pitch(self):
        frame = {
            "relbow_x": 0.0, "relbow_y": 0.0, "relbow_z": 0.0,
            "rhand_x": 0.0, "rhand_y": 250.0, "rhand_z": 0.0,
        }
        segments = [LimbSegment("rforearm", "relbow", "rhand")]
        enriched = JointAngleTransformer(segments).transform(frame)
        assert enriched["rforearm_pitch"] == pytest.approx(90.0)

    def test_missing_joints_are_skipped(self):
        enriched = JointAngleTransformer().transform({"rhand_x": 1.0})
        assert "rforearm_pitch" not in enriched

    def test_missing_joints_raise_in_strict_mode(self):
        transformer = JointAngleTransformer(keep_missing=False)
        with pytest.raises(KeyError):
            transformer.transform({"rhand_x": 1.0})

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            LimbSegment("", "relbow", "rhand")
        with pytest.raises(ValueError):
            LimbSegment("x", "rhand", "rhand")
        with pytest.raises(ValueError):
            JointAngleTransformer(segments=[])

    def test_angle_fields_listing(self):
        names = JointAngleTransformer().angle_fields()
        assert "rforearm_roll" in names and "lforearm_yaw" in names


class TestAngleView:
    def test_wave_detected_via_rotational_query(self):
        """The paper's motivating case for RPY operators: a wave is awkward as
        positional windows but natural as a yaw oscillation."""
        engine = CEPEngine(clock=SimulatedClock())
        install_kinect_view(engine)
        install_angle_view(engine)
        deployed = engine.register_query(WAVE_ANGLE_QUERY)

        simulator = KinectSimulator(clock=SimulatedClock(), noise=NoNoise())
        raw = engine.get_stream("kinect")
        simulator.stream_to(raw, WaveTrajectory(cycles=3), hold_start_s=0.2, hold_end_s=0.2)
        assert len(deployed.detections()) >= 1

    def test_angle_view_does_not_fire_on_swipe(self):
        engine = CEPEngine(clock=SimulatedClock())
        install_kinect_view(engine)
        install_angle_view(engine)
        deployed = engine.register_query(WAVE_ANGLE_QUERY)
        simulator = KinectSimulator(clock=SimulatedClock(), noise=NoNoise())
        simulator.stream_to(engine.get_stream("kinect"), SwipeTrajectory("right"))
        assert deployed.detections() == []


class TestVisualization:
    @pytest.fixture(scope="class")
    def swipe_description(self):
        simulator = KinectSimulator(clock=SimulatedClock())
        learner = GestureLearner("swipe_right", config=LearnerConfig(joints=("rhand",)))
        for _ in range(3):
            learner.add_sample(
                simulator.perform_variation(SwipeTrajectory("right"),
                                            hold_start_s=0.3, hold_end_s=0.3)
            )
        return learner.description()

    def test_describe_gesture_lists_all_poses(self, swipe_description):
        rows = describe_gesture(swipe_description)
        assert len(rows) == swipe_description.pose_count
        assert all("rhand_x" in row for row in rows)

    def test_attempt_report_for_complete_performance(self, swipe_description):
        simulator = KinectSimulator(clock=SimulatedClock())
        transformer = KinectTransformer()
        frames = [
            transformer.transform(frame)
            for frame in simulator.perform_variation(SwipeTrajectory("right"),
                                                     hold_start_s=0.2, hold_end_s=0.2)
        ]
        report = describe_attempt(swipe_description, frames)
        assert report.detected
        assert report.progress == 1.0
        assert "DETECTED" in report.summary()

    def test_attempt_report_for_aborted_performance(self, swipe_description):
        simulator = KinectSimulator(clock=SimulatedClock())
        transformer = KinectTransformer()
        frames = [
            transformer.transform(frame)
            for frame in simulator.perform_variation(SwipeTrajectory("right"),
                                                     hold_start_s=0.2)
        ]
        aborted = frames[: len(frames) // 3]
        report = describe_attempt(swipe_description, aborted)
        assert not report.detected
        assert 0.0 < report.progress < 1.0
        assert report.first_unreached_pose is not None
        assert "never reached pose" in report.summary()

    def test_ascii_rendering_contains_pose_labels_and_path(self, swipe_description):
        simulator = KinectSimulator(clock=SimulatedClock())
        transformer = KinectTransformer()
        path = [
            transformer.transform(frame)
            for frame in simulator.perform_variation(SwipeTrajectory("right"))
        ]
        art = render_gesture_ascii(swipe_description, path=path)
        assert "swipe_right" in art
        assert "0" in art and "*" in art
        assert len(art.splitlines()) == 20  # header + grid rows

    def test_ascii_rendering_handles_unconstrained_plane(self, swipe_description):
        art = render_gesture_ascii(swipe_description, plane=("lhand_x", "lhand_y"))
        assert "does not constrain" in art
