"""Unit tests for metrics, workload generation and the experiment harness."""

import pytest

from repro.cep.parser import parse_query
from repro.evaluation import (
    ClassificationMetrics,
    ConfusionMatrix,
    DetectionExperiment,
    ExperimentConfig,
    LatencyStats,
    WorkloadConfig,
    build_workload,
    f1_score,
    measure_throughput,
    precision,
    recall,
)
from repro.kinect import KinectSimulator, SwipeTrajectory
from repro.streams import SimulatedClock


class TestMetrics:
    def test_precision_recall_f1_basic(self):
        assert precision(8, 2) == pytest.approx(0.8)
        assert recall(8, 2) == pytest.approx(0.8)
        assert f1_score(0.5, 1.0) == pytest.approx(2 / 3)

    def test_degenerate_cases(self):
        assert precision(0, 0) == 1.0
        assert recall(0, 0) == 1.0
        assert f1_score(0.0, 0.0) == 0.0

    def test_classification_metrics_properties(self):
        metrics = ClassificationMetrics("g", true_positives=9, false_positives=1,
                                        false_negatives=3)
        assert metrics.precision == pytest.approx(0.9)
        assert metrics.recall == pytest.approx(0.75)
        row = metrics.as_row()
        assert row["gesture"] == "g"
        assert row["f1"] == pytest.approx(metrics.f1, abs=1e-3)

    def test_confusion_matrix(self):
        matrix = ConfusionMatrix(["a", "b"])
        matrix.record("a", "a")
        matrix.record("a", "b")
        matrix.record("b", None)
        assert matrix.count("a", "a") == 1
        assert matrix.count("b", None) == 1
        assert matrix.accuracy() == pytest.approx(1 / 3)
        table = matrix.to_table()
        assert table[0][0].startswith("performed")
        assert len(table) == 3

    def test_empty_confusion_matrix_accuracy(self):
        assert ConfusionMatrix(["a"]).accuracy() == 0.0

    def test_latency_stats(self):
        stats = LatencyStats()
        stats.extend([0.001 * i for i in range(1, 101)])
        assert stats.count == 100
        assert stats.mean == pytest.approx(0.0505)
        assert stats.p50 == pytest.approx(0.0505, rel=0.05)
        assert stats.p95 >= stats.p50
        assert stats.maximum == pytest.approx(0.1)
        assert stats.minimum == pytest.approx(0.001)
        assert "p95" in stats.as_row()

    def test_latency_percentile_validation_and_empty(self):
        stats = LatencyStats()
        assert stats.p95 == 0.0
        assert stats.mean == 0.0
        stats.add(1.0)
        with pytest.raises(ValueError):
            stats.percentile(1.5)


class TestWorkloads:
    def test_build_workload_structure(self):
        config = WorkloadConfig(
            gestures=("swipe_right", "circle"), training_samples=2,
            test_performances=1, test_users=("adult", "child"),
        )
        workload = build_workload(config)
        assert workload.gesture_names == ["circle", "swipe_right"]
        assert len(workload.training["circle"]) == 2
        assert len(workload.test["circle"]) == 2  # 1 performance x 2 users
        assert len(workload.idle) == 2
        assert workload.total_test_performances() == 4

    def test_unknown_gesture_rejected(self):
        with pytest.raises(ValueError):
            build_workload(WorkloadConfig(gestures=("moonwalk",)))

    def test_default_workload_excludes_control_gesture(self):
        workload = build_workload(WorkloadConfig(training_samples=1, test_performances=1,
                                                 test_users=("adult",)))
        assert "two_hand_swipe" not in workload.gesture_names

    def test_workload_is_reproducible(self):
        config = WorkloadConfig(gestures=("swipe_right",), training_samples=1,
                                test_performances=1, test_users=("adult",), seed=5)
        first = build_workload(config)
        second = build_workload(config)
        assert first.training["swipe_right"][0].frames[0]["rhand_x"] == pytest.approx(
            second.training["swipe_right"][0].frames[0]["rhand_x"]
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(training_samples=0)
        with pytest.raises(ValueError):
            WorkloadConfig(test_performances=0)
        with pytest.raises(ValueError):
            WorkloadConfig(noise_sigma_mm=-1.0)


class TestDetectionExperiment:
    @pytest.fixture(scope="class")
    def small_workload(self):
        return build_workload(
            WorkloadConfig(
                gestures=("swipe_right", "circle"), training_samples=3,
                test_performances=2, test_users=("adult", "child"),
            )
        )

    def test_learns_and_scores_all_gestures(self, small_workload):
        result = DetectionExperiment(small_workload).run()
        assert set(result.per_gesture) == {"swipe_right", "circle"}
        assert result.macro_recall > 0.7
        assert result.macro_precision > 0.7
        assert result.confusion is not None
        assert result.frames_processed > 0
        assert result.predicate_evaluations > 0

    def test_queries_are_valid_query_objects(self, small_workload):
        result = DetectionExperiment(small_workload).run()
        for query in result.queries.values():
            reparsed = parse_query(query.to_query())
            assert reparsed.event_count() >= 2

    def test_training_sample_limit(self, small_workload):
        config = ExperimentConfig(training_samples=1)
        descriptions = DetectionExperiment(small_workload, config).learn_descriptions()
        assert all(d.sample_count == 1 for d in descriptions.values())

    def test_window_scale_is_applied(self, small_workload):
        base = DetectionExperiment(small_workload).learn_descriptions()
        scaled = DetectionExperiment(
            small_workload, ExperimentConfig(window_scale=2.0)
        ).learn_descriptions()
        gesture = "swipe_right"
        assert scaled[gesture].poses[0].window.width["rhand_x"] == pytest.approx(
            2.0 * base[gesture].poses[0].window.width["rhand_x"]
        )

    def test_optimize_flag_reduces_predicates(self, small_workload):
        base = DetectionExperiment(small_workload).learn_descriptions()
        optimised = DetectionExperiment(
            small_workload, ExperimentConfig(optimize=True)
        ).learn_descriptions()
        total_base = sum(d.predicate_count() for d in base.values())
        total_opt = sum(d.predicate_count() for d in optimised.values())
        assert total_opt <= total_base

    def test_experiment_config_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(training_samples=0)
        with pytest.raises(ValueError):
            ExperimentConfig(window_scale=0.0)

    def test_result_rows_and_macro_f1_empty(self):
        from repro.evaluation.harness import AccuracyResult

        empty = AccuracyResult()
        assert empty.macro_f1 == 0.0
        assert empty.rows() == []


class TestThroughput:
    def test_measure_throughput_reports_realtime_factor(self, swipe_query):
        simulator = KinectSimulator(clock=SimulatedClock())
        frames = simulator.perform(SwipeTrajectory("right"))
        result = measure_throughput([swipe_query], frames, repeat=2)
        assert result.frames_processed == 2 * len(frames)
        assert result.tuples_per_second > 30.0
        assert result.realtime_factor > 1.0
        row = result.as_row()
        assert row["queries"] == 1
        assert row["mean_latency_us"] > 0
