"""Durability subsystem: event log, snapshot store, manager, replay, crash.

The crash-recovery test at the bottom is the headline guarantee: a writer
process is SIGKILLed mid-stream (no atexit, no flush-on-close), and
recovery from its directory reproduces the detections of an uninterrupted
reference run exactly.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.api import DurabilityConfig, F, GestureSession, Q
from repro.cep import CEPEngine
from repro.errors import (
    EventLogError,
    RecoveryError,
    ReplayStateError,
    SessionStateError,
    SnapshotError,
)
from repro.persistence import (
    DurabilityManager,
    EventLog,
    ReplayController,
    SnapshotStore,
    read_log,
)
from repro.streams import SimulatedClock

HANDS_UP = Q.stream("kinect_t").where(F("rhand_y") > 400).named("hands_up")


def entries(directory):
    return list(read_log(directory))


class TestEventLog:
    def test_append_and_read_round_trip(self, tmp_path):
        log = EventLog(tmp_path)
        log.append_control("deploy", {"name": "g", "text": "..."})
        log.append_tuples("kinect", [{"ts": 0.0, "x": 1}, {"ts": 0.1, "x": 2}], 64)
        log.append_snapshot_marker({"log_offset": 1})
        log.close()

        got = entries(tmp_path)
        assert [e.op for e in got] == ["control", "tuples", "snapshot"]
        assert [e.offset for e in got] == [0, 1, 2]
        assert got[0].control == "deploy"
        assert got[1].stream == "kinect"
        assert got[1].records == [{"ts": 0.0, "x": 1}, {"ts": 0.1, "x": 2}]
        assert got[1].batch_size == 64

    def test_offsets_continue_across_reopen_in_new_segment(self, tmp_path):
        log = EventLog(tmp_path)
        log.append_control("a")
        log.append_control("b")
        log.close()
        # A reopened writer never appends to an old segment.
        log2 = EventLog(tmp_path)
        offset = log2.append_control("c")
        log2.close()
        assert offset == 2
        assert [e.offset for e in entries(tmp_path)] == [0, 1, 2]
        assert len(list(tmp_path.glob("events-*.jsonl"))) == 2

    def test_rotation_by_entry_count(self, tmp_path):
        log = EventLog(tmp_path, segment_max_entries=2)
        for i in range(5):
            log.append_control("op", {"i": i})
        log.close()
        assert len(list(tmp_path.glob("events-*.jsonl"))) >= 3
        assert [e.offset for e in entries(tmp_path)] == list(range(5))

    def test_torn_final_line_is_dropped(self, tmp_path):
        log = EventLog(tmp_path)
        log.append_control("kept")
        log.append_control("torn")
        log.close()
        segment = sorted(tmp_path.glob("events-*.jsonl"))[-1]
        text = segment.read_text()
        segment.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        got = entries(tmp_path)
        assert [e.control for e in got] == ["kept"]

    def test_corrupt_mid_log_line_raises(self, tmp_path):
        log = EventLog(tmp_path)
        log.append_control("a")
        log.append_control("b")
        log.close()
        segment = sorted(tmp_path.glob("events-*.jsonl"))[-1]
        lines = segment.read_text().splitlines(keepends=True)
        lines[1] = "{garbage\n"  # first entry after the segment header
        segment.write_text("".join(lines))
        with pytest.raises(EventLogError):
            entries(tmp_path)

    def test_offset_gap_raises(self, tmp_path):
        log = EventLog(tmp_path)
        log.append_control("a")
        log.append_control("b")
        log.close()
        segment = sorted(tmp_path.glob("events-*.jsonl"))[-1]
        lines = segment.read_text().splitlines(keepends=True)
        doctored = json.loads(lines[2])
        doctored["offset"] = 7
        lines[2] = json.dumps(doctored) + "\n"
        segment.write_text("".join(lines))
        with pytest.raises(EventLogError, match="gap"):
            entries(tmp_path)

    def test_start_offset_skips_prefix(self, tmp_path):
        log = EventLog(tmp_path)
        for i in range(4):
            log.append_control("op", {"i": i})
        log.close()
        got = list(read_log(tmp_path, start_offset=2))
        assert [e.offset for e in got] == [2, 3]

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            EventLog(tmp_path, fsync="sometimes")
        with pytest.raises(ValueError):
            DurabilityConfig(tmp_path, fsync="sometimes")

    def test_close_is_idempotent_and_writes_manifest(self, tmp_path):
        log = EventLog(tmp_path)
        log.append_control("a")
        log.close()
        log.close()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["kind"] == "event-log-manifest"


class TestSnapshotStore:
    def test_save_load_latest_best_for(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save({"kind": "x", "n": 1}, log_offset=3)
        store.save({"kind": "x", "n": 2}, log_offset=9)
        assert store.latest().state["n"] == 2
        assert store.best_for(5).log_offset == 3
        assert store.best_for(9).log_offset == 9
        assert store.best_for(2) is None

    def test_prune_keeps_newest(self, tmp_path):
        store = SnapshotStore(tmp_path, keep_last=2)
        for offset in range(5):
            store.save({"kind": "x"}, log_offset=offset)
        assert [record.log_offset for record in map(store.load, store.paths())] == [3, 4]

    def test_malformed_snapshot_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        path = store.save({"kind": "x"}, log_offset=0)
        path.write_text("not json at all")
        with pytest.raises(SnapshotError):
            store.load(path)


def _engine_with_query():
    engine = CEPEngine(clock=SimulatedClock())
    engine.register_query(HANDS_UP, name="hands_up", create_missing_streams=True)
    return engine


class TestDurabilityManager:
    def test_tap_logs_before_delivery_and_suspend_suppresses(self, tmp_path):
        engine = _engine_with_query()
        manager = DurabilityManager(
            engine, DurabilityConfig(tmp_path), capture=engine.capture_state
        )
        manager.attach()
        engine.push("kinect_t", {"ts": 0.0, "rhand_y": 500.0})
        with manager.suspended():
            engine.push("kinect_t", {"ts": 1.0, "rhand_y": 500.0})
        manager.close()
        got = entries(tmp_path)
        assert len(got) == 1 and got[0].records[0]["ts"] == 0.0
        assert manager.metrics.entries_appended == 1

    def test_snapshot_anchor_and_tail_replay(self, tmp_path):
        engine = _engine_with_query()
        manager = DurabilityManager(
            engine, DurabilityConfig(tmp_path), capture=engine.capture_state
        )
        manager.attach()
        engine.push("kinect_t", {"ts": 0.0, "rhand_y": 500.0})
        anchor = manager.snapshot()
        engine.push("kinect_t", {"ts": 1.0, "rhand_y": 500.0})
        manager.close()

        restored = CEPEngine(clock=SimulatedClock())
        replayed = []
        manager2 = DurabilityManager(
            restored, DurabilityConfig(tmp_path), capture=restored.capture_state
        )
        result = manager2.recover_into(
            restore=restored.restore_state, apply_entry=replayed.append
        )
        manager2.close()
        assert result.snapshot_offset == anchor == 0
        assert result.replayed_entries == 1 and result.replayed_tuples == 1
        assert [e.records[0]["ts"] for e in replayed] == [1.0]
        # the snapshot itself restored the first detection
        assert len(restored.detections("hands_up")) == 1

    def test_maybe_snapshot_threshold(self, tmp_path):
        engine = _engine_with_query()
        manager = DurabilityManager(
            engine,
            DurabilityConfig(tmp_path, snapshot_every_tuples=3),
            capture=engine.capture_state,
        )
        manager.attach()
        for i in range(2):
            engine.push("kinect_t", {"ts": float(i), "rhand_y": 0.0})
        assert manager.maybe_snapshot() is None
        engine.push("kinect_t", {"ts": 2.0, "rhand_y": 0.0})
        assert manager.maybe_snapshot() is not None
        assert manager.maybe_snapshot() is None  # counter was reset
        manager.close()

    def test_recovery_error_wraps_bad_snapshot(self, tmp_path):
        engine = _engine_with_query()
        manager = DurabilityManager(
            engine, DurabilityConfig(tmp_path), capture=lambda: {"kind": "bogus"}
        )
        manager.snapshot()
        with pytest.raises(RecoveryError):
            manager.recover_into(
                restore=engine.restore_state, apply_entry=lambda entry: None
            )
        manager.close()


class TestReplayController:
    def _record(self, tmp_path):
        with GestureSession(durability=DurabilityConfig(tmp_path)) as session:
            session.deploy(HANDS_UP)
            session.feed([{"ts": 0.0, "rhand_y": 500.0}], stream="kinect_t")
            session.snapshot()
            session.feed(
                [{"ts": 1.0, "rhand_y": 100.0}, {"ts": 2.0, "rhand_y": 600.0}],
                stream="kinect_t",
            )
            return [event.gesture for event in session.events], session

    def test_play_step_pause_and_seek(self, tmp_path):
        live, session = self._record(tmp_path)
        controller = session.replay()
        assert controller.position == -1 and not controller.finished
        assert controller.step() == 1  # the deploy control
        controller.play()
        assert controller.finished
        assert [event.gesture for event in controller.target.events] == live

        controller.seek(1)  # back to just after the first tuple entry
        assert controller.position == 1
        assert len(controller.target.events) == 1
        controller.play()
        assert [event.gesture for event in controller.target.events] == live

    def test_seek_uses_snapshot_for_backward_jump(self, tmp_path):
        live, session = self._record(tmp_path)
        controller = session.replay()
        controller.play()
        # The snapshot sits at the anchor offset; seeking back must land on
        # a state with exactly one event, restored rather than recomputed.
        controller.seek(1)
        assert [event.gesture for event in controller.target.events] == live[:1]

    def test_seek_beyond_log_raises(self, tmp_path):
        _, session = self._record(tmp_path)
        controller = session.replay()
        with pytest.raises(ReplayStateError):
            controller.seek(controller.last_offset + 1)
        with pytest.raises(ReplayStateError):
            controller.seek(-2)

    def test_pause_stops_playback(self, tmp_path):
        _, session = self._record(tmp_path)
        controller = session.replay()
        controller.target.on_any(lambda event: controller.pause())
        applied = controller.play()
        assert not controller.finished
        assert applied < len(controller)
        controller.play()
        assert controller.finished

    def test_paced_playback_is_ordered_and_complete(self, tmp_path):
        live, session = self._record(tmp_path)
        controller = session.replay(speed=1000.0)
        controller.play()
        assert [event.gesture for event in controller.target.events] == live

    def test_engine_target_with_default_callables(self, tmp_path):
        live, session = self._record(tmp_path)

        def factory():
            engine = CEPEngine(clock=SimulatedClock())
            engine.create_stream("kinect_t")
            return engine

        controller = ReplayController(tmp_path, factory)
        controller.play()
        assert [d.query_name for d in controller.target.detections()] == live

    def test_replay_requires_durability(self):
        with GestureSession() as session:
            with pytest.raises(SessionStateError):
                session.replay()


CRASH_WRITER = textwrap.dedent(
    """
    import os, signal, sys
    from repro.api import DurabilityConfig, F, GestureSession, Q

    directory = sys.argv[1]
    session = GestureSession(
        durability=DurabilityConfig(directory, snapshot_every_tuples=8)
    )
    session.start()
    session.deploy(Q.stream("kinect_t").where(F("rhand_y") > 400).named("hands_up"))
    for i in range(20):
        session.feed(
            [{"ts": float(i), "player": i % 3, "rhand_y": 500.0 if i % 2 == 0 else 100.0}],
            stream="kinect_t",
        )
    sys.stdout.write("fed\\n")
    sys.stdout.flush()
    os.kill(os.getpid(), signal.SIGKILL)  # no close(), no flush, no atexit
    """
)


class TestCrashRecovery:
    def test_sigkilled_writer_recovers_byte_identically(self, tmp_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.run(
            [sys.executable, "-c", CRASH_WRITER, str(tmp_path)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            timeout=120,
        )
        assert process.returncode == -signal.SIGKILL
        assert b"fed" in process.stdout, process.stderr.decode()

        recovered = GestureSession.recover(DurabilityConfig(tmp_path))
        assert recovered.last_recovery.replayed_entries > 0  # log tail, not just snapshot

        # The uninterrupted reference run.
        with GestureSession() as reference:
            reference.deploy(HANDS_UP)
            for i in range(20):
                reference.feed(
                    [
                        {
                            "ts": float(i),
                            "player": i % 3,
                            "rhand_y": 500.0 if i % 2 == 0 else 100.0,
                        }
                    ],
                    stream="kinect_t",
                )
            expected = [d.to_state() for d in reference.detections()]
            expected_events = [event.gesture for event in reference.events]

        assert [d.to_state() for d in recovered.detections()] == expected
        assert [event.gesture for event in recovered.events] == expected_events
        for partition in (0, 1, 2):
            assert [
                d.to_state() for d in recovered.detections(partition=partition)
            ] == [s for s in expected if s["partition"] == partition]
        recovered.close()
