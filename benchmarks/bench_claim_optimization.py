"""C4 — Sec. 3.3.3: pattern optimisation reduces detection effort.

Applies the optimiser (window merging + irrelevant-coordinate elimination)
to the learned gesture set and compares, against the unoptimised patterns:
pose count, predicate count, matcher predicate evaluations per tuple, and
detection quality (recall must not drop).

The benchmark kernel times one optimiser pass over all learned gestures.
"""


from benchmarks.conftest import print_table
from repro.core import PatternOptimizer
from repro.evaluation import DetectionExperiment, ExperimentConfig


def test_c4_optimisation_reduces_detection_effort(benchmark, standard_workload):
    descriptions = DetectionExperiment(
        standard_workload, ExperimentConfig(training_samples=4)
    ).learn_descriptions()
    optimizer = PatternOptimizer()

    def optimise_all():
        return {name: optimizer.optimize(description)
                for name, description in descriptions.items()}

    optimised = benchmark(optimise_all)

    per_gesture_rows = []
    for name, (_optimised_description, report) in sorted(optimised.items()):
        per_gesture_rows.append(
            {
                "gesture": name,
                "poses before": report.poses_before,
                "poses after": report.poses_after,
                "predicates before": report.predicates_before,
                "predicates after": report.predicates_after,
                "eliminated coords": len(report.eliminated_fields),
            }
        )
    print_table("C4a: optimiser effect per gesture", per_gesture_rows)

    rows = []
    results = {}
    for label, optimize in (("unoptimised", False), ("optimised", True)):
        result = DetectionExperiment(
            standard_workload, ExperimentConfig(training_samples=4, optimize=optimize)
        ).run()
        results[label] = result
        rows.append(
            {
                "variant": label,
                "total predicates": sum(
                    d.predicate_count() for d in result.descriptions.values()
                ),
                "predicate evals / tuple": f"{result.predicate_evaluations / max(1, result.frames_processed):.1f}",
                "macro recall": f"{result.macro_recall:.3f}",
                "macro precision": f"{result.macro_precision:.3f}",
            }
        )
    print_table("C4b: detection effort and quality, unoptimised vs optimised", rows)

    unopt, opt = rows
    assert opt["total predicates"] < unopt["total predicates"]
    assert float(opt["predicate evals / tuple"]) <= float(unopt["predicate evals / tuple"])
    assert results["optimised"].macro_recall >= results["unoptimised"].macro_recall - 0.05
