"""A1 — Sec. 4: gesture-controlled OLAP and graph navigation.

Learns a small gesture vocabulary, binds it to the OLAP cube navigator and
the collaboration-graph navigator, replays a scripted interaction session
through the sensor stream, and reports the command success rate — the
"does the demo work" number of the paper's demonstration section.

The benchmark kernel times one complete scripted session (detection +
application actions).
"""

import pytest

from benchmarks.conftest import learn_gesture, make_simulator, print_table
from repro.apps import (
    CubeNavigator,
    GestureBindings,
    GraphNavigator,
    collaboration_demo_graph,
    olap_demo_cube,
)
from repro.detection import GestureDetector
from repro.kinect import PushTrajectory, RaiseHandTrajectory, SwipeTrajectory

VOCABULARY = {
    "swipe_right": SwipeTrajectory("right"),
    "swipe_left": SwipeTrajectory("left", hand="lhand"),
    "push": PushTrajectory(),
    "raise_hand": RaiseHandTrajectory(),
}

#: The scripted analysis session: (gesture to perform, expected action name).
SESSION = [
    ("swipe_right", "drill_down"),
    ("push", "pivot"),
    ("swipe_right", "drill_down"),
    ("swipe_left", "roll_up"),
    ("raise_hand", "reset"),
    ("swipe_right", "drill_down"),
]


@pytest.fixture(scope="module")
def deployed_detector():
    detector = GestureDetector()
    for index, (name, trajectory) in enumerate(VOCABULARY.items()):
        joints = ("lhand",) if getattr(trajectory, "hand", "rhand") == "lhand" else ("rhand",)
        detector.deploy(learn_gesture(name, trajectory, seed=700 + index, joints=joints))
    return detector


def _run_session(detector, seed=801):
    cube = CubeNavigator(olap_demo_cube(), "time", "geography")
    graph = GraphNavigator(collaboration_demo_graph(), "kevin_bacon")
    bindings = GestureBindings(detector)
    bindings.bind("swipe_right", cube.drill_down, name="drill_down")
    bindings.bind("swipe_left", cube.roll_up, name="roll_up")
    bindings.bind("push", cube.pivot, name="pivot")
    bindings.bind("raise_hand", cube.reset, name="reset")

    detector.clear()
    simulator = make_simulator(user="tall_adult", seed=seed, position=(150.0, 0.0, 2500.0))
    outcomes = []
    for gesture, expected_action in SESSION:
        before = len(bindings.log)
        detector.process_frames(
            simulator.perform_variation(VOCABULARY[gesture], hold_start_s=0.3, hold_end_s=0.3)
        )
        simulator.idle_frames(0.6)
        executed = [entry.action for entry in bindings.log.entries[before:]]
        outcomes.append(
            {
                "performed": gesture,
                "expected action": expected_action,
                "executed": ", ".join(executed) or "(none)",
                "correct": expected_action in executed and len(executed) == 1,
            }
        )
    return bindings, cube, graph, outcomes


def test_a1_gesture_driven_navigation(benchmark, deployed_detector):
    bindings, cube, graph, outcomes = benchmark(_run_session, deployed_detector)

    print_table("A1: scripted gesture-controlled OLAP session", outcomes)
    correct = sum(outcome["correct"] for outcome in outcomes)
    summary = [
        {"metric": "commands issued", "value": len(SESSION)},
        {"metric": "commands executed correctly", "value": correct},
        {"metric": "command success rate", "value": f"{correct / len(SESSION):.0%}"},
        {"metric": "failed navigation ops (logged)", "value": len(bindings.log.failures())},
        {"metric": "final OLAP view", "value": cube.describe()},
    ]
    print_table("A1: session summary", summary)

    assert correct >= len(SESSION) - 1


def test_a1_runtime_rebinding(benchmark, deployed_detector):
    """The declarative selling point: exchange gesture→action mappings at
    runtime without re-learning or touching application code."""
    benchmark(collaboration_demo_graph)
    graph = GraphNavigator(collaboration_demo_graph(), "sylvester_stallone")
    graph.set_target("kevin_bacon")
    bindings = GestureBindings(deployed_detector)
    bindings.bind("swipe_right", graph.highlight_next, name="highlight_next")
    bindings.rebind("swipe_right", graph.follow_path, name="follow_path")

    deployed_detector.clear()
    simulator = make_simulator(seed=950)
    steps = 0
    while graph.current != "kevin_bacon" and steps < 6:
        deployed_detector.process_frames(
            simulator.perform_variation(VOCABULARY["swipe_right"],
                                        hold_start_s=0.3, hold_end_s=0.3)
        )
        simulator.idle_frames(0.6)
        steps += 1
    print_table(
        "A1: assisted Kevin-Bacon navigation after runtime re-binding",
        [{"steps": steps, "reached target": graph.current == "kevin_bacon"}],
    )
    assert graph.current == "kevin_bacon"
