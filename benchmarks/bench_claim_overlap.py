"""C3 — Sec. 3.3.2: the overlap problem.

Scaling pose windows generalises a gesture but "scaling them too much
introduces the overlapping problem, i.e., patterns of different gestures
detect the same movement".  The benchmark sweeps the window scale factor and
reports, per setting, the false-positive rate between gestures and whether
the offline validator flags the conflict before deployment.

The benchmark kernel times one validator pass over the learned gesture set.
"""


from benchmarks.conftest import print_table
from repro.core import PatternValidator
from repro.evaluation import DetectionExperiment, ExperimentConfig


def test_c3_overlap_vs_window_scaling(benchmark, standard_workload):
    base_descriptions = DetectionExperiment(
        standard_workload, ExperimentConfig(training_samples=4)
    ).learn_descriptions()
    validator = PatternValidator()

    benchmark(validator.validate, list(base_descriptions.values()))

    rows = []
    for scale in (1.0, 2.0, 3.0, 5.0):
        result = DetectionExperiment(
            standard_workload,
            ExperimentConfig(training_samples=4, window_scale=scale),
        ).run()
        false_positives = sum(m.false_positives for m in result.per_gesture.values())
        scaled = [description.scaled(scale) for description in base_descriptions.values()]
        report = validator.validate(scaled)
        rows.append(
            {
                "window scale": scale,
                "macro recall": f"{result.macro_recall:.3f}",
                "macro precision": f"{result.macro_precision:.3f}",
                "false positives": false_positives,
                "validator overlaps": len(report.overlaps),
                "validator conflicts": len(report.subsumptions),
            }
        )
    print_table("C3: overlap problem vs window scaling", rows)

    unscaled, most_scaled = rows[0], rows[-1]
    # Unscaled patterns are selective; heavy scaling destroys precision and
    # the validator sees it coming (conflicts reported offline).
    assert unscaled["false positives"] <= most_scaled["false positives"]
    assert most_scaled["validator conflicts"] > 0
    assert float(most_scaled["macro precision"]) <= float(unscaled["macro precision"])
