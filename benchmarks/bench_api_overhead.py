"""B3 — the GestureSession façade vs raw engine wiring.

The façade must be free: ``GestureSession.feed(batch_size=…)`` is a thin
delegation onto ``CEPEngine.push_many(batch_size=…)``, so its throughput on
the C5 workload (8 deployed gesture queries, raw frames through the
``kinect_t`` view) has to stay within 5% of hand-wired engine throughput.

Both stacks are built from the same learned queries and fed the same
frames; before any timing comparison the benchmark asserts the per-query
detection sequences are identical — the façade must not change semantics.
Timings take the best of several interleaved repetitions, which damps
shared-runner noise.
"""

import time

from benchmarks.conftest import print_table, record_benchmark
from repro.api import GestureSession
from repro.cep import CEPEngine, install_kinect_view
from repro.streams import SimulatedClock

BATCH_SIZE = 64
REPEATS = 5


def _per_query_detections(detections):
    grouped = {}
    for detection in detections:
        grouped.setdefault(detection.query_name, []).append(
            (
                detection.output,
                detection.timestamp,
                detection.start_timestamp,
                detection.step_timestamps,
            )
        )
    return grouped


def _run_raw(queries, frames):
    """Hand-wired stack: engine + view + register_query + push_many."""
    engine = CEPEngine(clock=SimulatedClock())
    install_kinect_view(engine)
    for query in queries:
        engine.register_query(query, create_missing_streams=True)
    start = time.perf_counter()
    engine.push_many("kinect", frames, batch_size=BATCH_SIZE)
    elapsed = time.perf_counter() - start
    return len(frames) / elapsed, _per_query_detections(engine.detections())


def _run_facade(queries, frames):
    """The same workload through GestureSession.deploy + feed."""
    with GestureSession() as session:
        for query in queries:
            session.deploy(query)
        start = time.perf_counter()
        session.feed(frames, batch_size=BATCH_SIZE)
        elapsed = time.perf_counter() - start
        return len(frames) / elapsed, _per_query_detections(session.detections())


def test_b3_facade_overhead_within_five_percent(
    benchmark, request, gesture_queries, sensor_frames
):
    raw_best, raw_detections = 0.0, None
    facade_best, facade_detections = 0.0, None
    # Interleave repetitions so machine-load drift hits both stacks alike.
    for _ in range(REPEATS):
        tps, detections = _run_raw(gesture_queries, sensor_frames)
        raw_best, raw_detections = max(raw_best, tps), detections
        tps, detections = _run_facade(gesture_queries, sensor_frames)
        facade_best, facade_detections = max(facade_best, tps), detections

    # Correctness first: the façade must detect exactly what raw wiring does.
    assert raw_detections, "workload produced no detections; comparison is vacuous"
    assert facade_detections == raw_detections

    ratio = facade_best / raw_best
    print_table(
        "B3: GestureSession.feed vs raw CEPEngine.push_many "
        f"(batch={BATCH_SIZE}, best of {REPEATS})",
        [
            {"stack": "raw engine", "tuples/s": f"{raw_best:,.0f}", "ratio": "1.00"},
            {"stack": "GestureSession", "tuples/s": f"{facade_best:,.0f}",
             "ratio": f"{ratio:.3f}"},
        ],
    )

    record_benchmark(
        "api_overhead",
        {
            "config": {"batch_size": BATCH_SIZE, "repeats": REPEATS},
            "raw_tuples_per_s": round(raw_best, 1),
            "facade_tuples_per_s": round(facade_best, 1),
            "ratio": round(ratio, 3),
        },
    )

    # The 5% bound is the satellite's acceptance criterion; skip it in the
    # untimed smoke pass where single-shot ratios are unreliable.
    if not request.config.getoption("benchmark_disable", False):
        assert ratio >= 0.95, (
            f"façade throughput is {ratio:.1%} of raw engine throughput; "
            f"the session layer must stay within 5%"
        )

    benchmark(_run_facade, gesture_queries, sensor_frames)
