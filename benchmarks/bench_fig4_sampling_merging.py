"""F4 — Fig. 4: distance-based sampling and window merging.

Reproduces the behaviour sketched in the paper's Fig. 4:

* the number of characteristic points ("windows") extracted from one
  gesture path as a function of the distance threshold,
* how the merged windows grow as further samples are added, and when the
  deviation warning fires,
* the comparison against plain DBSCAN (reference [2]), which loses the pose
  ordering on closed paths such as the circle gesture.

The benchmark kernel times one distance-based sampling pass over a single
recorded sample.
"""

import numpy as np

from benchmarks.conftest import make_simulator, print_table
from repro.core import (
    DBSCAN,
    DBSCANConfig,
    DistanceBasedSampler,
    MergeConfig,
    SamplingConfig,
    WindowMerger,
)
from repro.core.distance import joint_fields
from repro.kinect import CircleTrajectory, SwipeTrajectory
from repro.transform import KinectTransformer

FIELDS = joint_fields(["rhand"])


def _transformed_sample(trajectory, seed):
    simulator = make_simulator(seed=seed)
    transformer = KinectTransformer()
    return [
        transformer.transform(frame)
        for frame in simulator.perform_variation(trajectory, hold_start_s=0.3, hold_end_s=0.3)
    ]


def test_fig4_sampling_threshold_sweep(benchmark):
    frames = _transformed_sample(SwipeTrajectory("right"), seed=41)

    sampler = DistanceBasedSampler(SamplingConfig(fields=FIELDS, relative_threshold=0.12))
    benchmark(sampler.sample, frames)

    rows = []
    for threshold in (0.05, 0.08, 0.12, 0.2, 0.3, 0.5):
        sampled = DistanceBasedSampler(
            SamplingConfig(fields=FIELDS, relative_threshold=threshold)
        ).sample(frames)
        rows.append(
            {
                "relative max_dist": f"{threshold:.2f}",
                "absolute max_dist [mm]": f"{sampled.threshold_used:7.1f}",
                "frames": sampled.frame_count,
                "windows mined": sampled.pose_count,
            }
        )
    print_table("F4a: windows mined vs distance threshold (swipe_right)", rows)
    counts = [row["windows mined"] for row in rows]
    assert counts == sorted(counts, reverse=True)
    assert counts[0] > counts[-1]


def test_fig4_incremental_window_merging(benchmark):
    merger = WindowMerger("swipe_right", MergeConfig(deviation_warning_factor=1.5))
    sampler = DistanceBasedSampler(SamplingConfig(fields=FIELDS, relative_threshold=0.12))

    # Benchmark kernel: merging one additional sample into an existing
    # description (the incremental step of Sec. 3.3.2).
    warm_up_path = sampler.sample(_transformed_sample(SwipeTrajectory("right"), seed=69))

    def merge_one_sample():
        scratch = WindowMerger("swipe_right", MergeConfig())
        scratch.add_sample(warm_up_path)
        return scratch.description()

    benchmark(merge_one_sample)

    rows = []
    for index in range(5):
        frames = _transformed_sample(SwipeTrajectory("right"), seed=70 + index)
        result = merger.add_sample(sampler.sample(frames))
        description = merger.description()
        mean_width = float(
            np.mean([pose.window.width["rhand_x"] for pose in description.poses])
        )
        rows.append(
            {
                "samples merged": index + 1,
                "poses": description.pose_count,
                "mean window width x [mm]": f"{mean_width:6.1f}",
                "deviation of new sample": f"{result.deviation:.2f}",
                "warning": bool(result.warnings),
            }
        )
    print_table("F4b: incremental window merging (swipe_right)", rows)

    widths = [float(row["mean window width x [mm]"]) for row in rows]
    assert widths[-1] >= widths[0]

    # An outlier sample (performed ~40 cm higher) must trigger the warning.
    import warnings as _warnings

    outlier = [dict(frame, rhand_y=frame["rhand_y"] + 400.0) for frame in
               _transformed_sample(SwipeTrajectory("right"), seed=99)]
    with _warnings.catch_warnings():
        _warnings.simplefilter("ignore")
        outlier_result = merger.add_sample(sampler.sample(outlier))
    print_table(
        "F4c: outlier sample detection",
        [{"deviation": f"{outlier_result.deviation:.2f}", "warning raised": bool(outlier_result.warnings)}],
    )
    assert outlier_result.warnings


def test_fig4_dbscan_baseline_loses_ordering(benchmark):
    frames = _transformed_sample(CircleTrajectory(), seed=55)
    sampler = DistanceBasedSampler(SamplingConfig(fields=FIELDS, relative_threshold=0.12))
    sampled = sampler.sample(frames)

    dbscan = DBSCAN(DBSCANConfig(eps=120.0, min_samples=3), fields=FIELDS)
    labels = benchmark(dbscan.fit, frames)

    start_label = labels[0]
    end_label = labels[-1]
    rows = [
        {
            "method": "distance-based sampling (paper)",
            "clusters": sampled.pose_count,
            "start/end distinguishable": sampled.points[0].sequence_index
            != sampled.points[-1].sequence_index,
        },
        {
            "method": "DBSCAN baseline [2]",
            "clusters": dbscan.cluster_count(labels),
            "start/end distinguishable": start_label != end_label,
        },
    ]
    print_table("F4d: sequential sampling vs DBSCAN on the circle gesture", rows)
    assert sampled.pose_count >= 4
    assert start_label == end_label  # DBSCAN merges the closed path's ends
