"""B1 — compiled predicates and batched delivery vs the seed interpreted path.

Runs the C5 throughput workload (8 deployed gesture queries, raw frames
through the ``kinect_t`` view) in three engine configurations:

* ``interpreted`` — per-tuple fan-out, predicates evaluated by walking the
  expression AST (the seed's only path),
* ``compiled`` — per-tuple fan-out, predicates lowered to closures through
  the engine's compiled-predicate cache,
* ``compiled+batched`` — compiled predicates plus chunked delivery, so each
  matcher prunes its run table once per chunk.

Before reporting any speedup the benchmark asserts that all three
configurations produce *identical per-query detection sequences* — the fast
paths must never trade correctness for throughput.
"""


from benchmarks.conftest import print_table, record_benchmark
from repro.evaluation import measure_throughput

BATCH_SIZE = 64


def _per_query_detections(result):
    """Detection sequences grouped by query, for exact equality checks."""
    grouped = {}
    for detection in result.detections:
        grouped.setdefault(detection.query_name, []).append(
            (
                detection.output,
                detection.timestamp,
                detection.start_timestamp,
                detection.step_timestamps,
            )
        )
    return grouped


def test_b1_compiled_and_batched_match_interpreted(
    benchmark, request, gesture_queries, sensor_frames
):
    interpreted = measure_throughput(
        gesture_queries, sensor_frames, compile_predicates=False
    )
    compiled = measure_throughput(gesture_queries, sensor_frames)
    batched = measure_throughput(gesture_queries, sensor_frames, batch_size=BATCH_SIZE)

    # Correctness first: the fast paths must detect exactly what the
    # interpreted per-tuple path detects, query by query, in order.
    baseline = _per_query_detections(interpreted)
    assert baseline, "workload produced no detections; the comparison is vacuous"
    assert _per_query_detections(compiled) == baseline
    assert _per_query_detections(batched) == baseline

    rows = []
    for label, result in (
        ("interpreted / per-tuple", interpreted),
        ("compiled / per-tuple", compiled),
        (f"compiled / batch={BATCH_SIZE}", batched),
    ):
        row = {"configuration": label}
        row.update(result.as_row())
        row["speedup"] = round(
            result.tuples_per_second / interpreted.tuples_per_second, 2
        )
        rows.append(row)
    print_table("B1: interpreted vs compiled vs batched matching", rows)
    record_benchmark("batch_matching", {"rows": rows})

    # Compiled predicates are the headline win; allow a generous noise
    # margin, and skip the timing assertion entirely in the untimed smoke
    # pass (shared CI runners make single-shot ratios unreliable).
    if not request.config.getoption("benchmark_disable", False):
        assert compiled.tuples_per_second > interpreted.tuples_per_second * 1.2

    benchmark(measure_throughput, gesture_queries, sensor_frames, batch_size=BATCH_SIZE)


def test_b1_batched_is_equivalent_across_chunk_sizes(gesture_queries, sensor_frames):
    baseline = _per_query_detections(
        measure_throughput(gesture_queries, sensor_frames)
    )
    for batch_size in (1, 7, 256, len(sensor_frames)):
        batched = measure_throughput(
            gesture_queries, sensor_frames, batch_size=batch_size
        )
        assert _per_query_detections(batched) == baseline, f"batch_size={batch_size}"
