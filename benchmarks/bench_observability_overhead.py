"""B7 — the telemetry layer's cost on the B1 workload.

Observability that distorts what it observes is worse than none: the
default configuration (histograms on, tracing off) must stay within 5%
of the bare stack (``telemetry=False``) on the C5/B1 workload, and a
sampled run (``trace_sample_rate=0.01``) is measured alongside so the
price of tracing is recorded, not guessed.  The control-plane leg runs
the full supervision stack — background metrics sampler plus health
watchdog — and must also stay within 5%, since both poll parent-visible
snapshots off the hot path.  Before any timing comparison, the per-query
detection sequences of all legs are asserted identical — telemetry must
never change semantics.

Timings interleave repetitions and keep the best of each leg, damping
shared-runner noise the same way B3 does.  Each run also exercises the
exports (histogram summaries, per-query stats, the trace document) so
the recorded numbers include a realistic scrape.
"""

import time

from benchmarks.conftest import print_table, record_benchmark
from repro.api import GestureSession
from repro.api.session import SessionConfig
from repro.observability.health import WatchdogConfig

BATCH_SIZE = 64
REPEATS = 5

LEGS = (
    ("telemetry off", SessionConfig(telemetry=False, batch_size=BATCH_SIZE)),
    ("default (histograms)", SessionConfig(batch_size=BATCH_SIZE)),
    (
        "sampled (rate 0.01)",
        SessionConfig(batch_size=BATCH_SIZE, trace_sample_rate=0.01),
    ),
    (
        "control plane (sampler+watchdog)",
        SessionConfig(
            batch_size=BATCH_SIZE,
            sample_interval_seconds=0.5,
            watchdog=WatchdogConfig(),
        ),
    ),
)


def _per_query_detections(detections):
    grouped = {}
    for detection in detections:
        grouped.setdefault(detection.query_name, []).append(
            (
                detection.output,
                detection.timestamp,
                detection.start_timestamp,
                detection.step_timestamps,
            )
        )
    return grouped


def _run_leg(config, queries, frames):
    with GestureSession(config) as session:
        for query in queries:
            session.deploy(query)
        start = time.perf_counter()
        session.feed(frames, batch_size=BATCH_SIZE)
        elapsed = time.perf_counter() - start
        exports = {}
        if session.metrics is not None:
            exports["histograms"] = session.metrics.histogram_summaries()
            exports["query_stats"] = session.query_stats()
            exports["trace_spans"] = len(session.export_trace()["traceEvents"])
        if session.sampler is not None:
            session.sampler.sample_once()
            exports["sampler_series"] = len(session.sampler.names())
        if session.watchdog is not None:
            exports["health"] = session.health().status
        return len(frames) / elapsed, _per_query_detections(session.detections()), exports


def test_b7_telemetry_overhead_within_five_percent(
    benchmark, request, gesture_queries, sensor_frames
):
    best = {name: 0.0 for name, _ in LEGS}
    detections = {}
    exports = {}
    # Interleave repetitions so machine-load drift hits every leg alike.
    for _ in range(REPEATS):
        for name, config in LEGS:
            tps, per_query, leg_exports = _run_leg(config, gesture_queries, sensor_frames)
            best[name] = max(best[name], tps)
            detections[name] = per_query
            exports[name] = leg_exports

    # Correctness first: telemetry must not change a single detection.
    baseline = detections["telemetry off"]
    assert baseline, "workload produced no detections; comparison is vacuous"
    for name, _ in LEGS[1:]:
        assert detections[name] == baseline, f"{name!r} changed the detections"

    # The instrumented legs actually measured something.
    default_histograms = exports["default (histograms)"]["histograms"]
    assert default_histograms["batch_processing"]["count"] >= 1
    assert default_histograms["ingest_to_detection"]["count"] >= 1
    assert exports["default (histograms)"]["query_stats"]
    assert exports["sampled (rate 0.01)"]["trace_spans"] >= 0
    assert exports["control plane (sampler+watchdog)"]["sampler_series"] >= 1
    assert exports["control plane (sampler+watchdog)"]["health"] == "ok"

    off_best = best["telemetry off"]
    ratios = {name: best[name] / off_best for name, _ in LEGS}
    print_table(
        f"B7: telemetry overhead on B1 (batch={BATCH_SIZE}, best of {REPEATS})",
        [
            {
                "configuration": name,
                "tuples/s": f"{best[name]:,.0f}",
                "ratio": f"{ratios[name]:.3f}",
            }
            for name, _ in LEGS
        ],
    )

    record_benchmark(
        "observability",
        {
            "config": {
                "batch_size": BATCH_SIZE,
                "repeats": REPEATS,
                "queries": len(gesture_queries),
                "frames": len(sensor_frames),
            },
            "tuples_per_s": {name: round(best[name], 1) for name, _ in LEGS},
            "ratio_vs_off": {name: round(ratios[name], 3) for name, _ in LEGS},
            "default_histograms": default_histograms,
            "default_query_stats": exports["default (histograms)"]["query_stats"],
            "sampled_trace_spans": exports["sampled (rate 0.01)"]["trace_spans"],
            "control_plane": {
                "sampler_series": exports["control plane (sampler+watchdog)"][
                    "sampler_series"
                ],
                "health": exports["control plane (sampler+watchdog)"]["health"],
            },
        },
    )

    # The 5% bound is the tentpole's acceptance criterion; skip it in the
    # untimed smoke pass where single-shot ratios are unreliable.
    if not request.config.getoption("benchmark_disable", False):
        ratio = ratios["default (histograms)"]
        assert ratio >= 0.95, (
            f"default telemetry throughput is {ratio:.1%} of the bare stack; "
            f"histograms must stay within 5%"
        )
        control_ratio = ratios["control plane (sampler+watchdog)"]
        assert control_ratio >= 0.95, (
            f"sampler+watchdog throughput is {control_ratio:.1%} of the bare "
            f"stack; the control plane must stay within 5%"
        )

    benchmark(_run_leg, LEGS[1][1], gesture_queries, sensor_frames)
