"""F3 — Fig. 3: position, orientation and scale invariance.

The paper's transformation (torso shift, heading alignment, forearm-length
scaling) makes one learned pattern work for users of different heights,
standing anywhere, turned toward or away from the camera.  The benchmark
learns ``swipe_right`` once from the reference adult and measures the
detection rate under each variation, plus the residual coordinate error of
the transformed paths.

The benchmark kernel times the ``kinect_t`` transformation of one full
performance (the per-frame cost the paper's view incurs).
"""

import numpy as np

from benchmarks.conftest import learn_gesture, make_simulator, print_table
from repro.detection import GestureDetector
from repro.kinect import SwipeTrajectory
from repro.transform import KinectTransformer

#: (label, user, position, yaw) variations exercised by the experiment.
VARIATIONS = [
    ("reference adult, centred", "adult", (0.0, 0.0, 2200.0), 0.0),
    ("adult, far left of camera", "adult", (-700.0, 0.0, 2000.0), 0.0),
    ("adult, far away", "adult", (300.0, 100.0, 3400.0), 0.0),
    ("adult, turned 25°", "adult", (0.0, 0.0, 2200.0), 25.0),
    ("child (1.20 m)", "child", (0.0, -300.0, 2000.0), 0.0),
    ("tall adult (2.00 m)", "tall_adult", (200.0, 100.0, 2600.0), 0.0),
]


def test_fig3_user_invariance(benchmark, query_generator):
    description = learn_gesture("swipe_right", SwipeTrajectory("right"), seed=17)
    query = query_generator.generate(description)

    # Benchmark kernel: per-frame transformation cost of one performance.
    reference_frames = make_simulator(seed=50).perform(SwipeTrajectory("right"))

    def transform_performance():
        transformer = KinectTransformer()
        return [transformer.transform(frame) for frame in reference_frames]

    reference_path = benchmark(transform_performance)
    reference_end = reference_path[-1]

    rows = []
    trials = 4
    for label, user, position, yaw in VARIATIONS:
        simulator = make_simulator(user=user, seed=60 + len(rows), position=position, yaw_deg=yaw)
        detector = GestureDetector()
        detector.deploy(query)
        hits = 0
        for _ in range(trials):
            detector.clear()
            detector.process_frames(
                simulator.perform_variation(
                    SwipeTrajectory("right"), hold_start_s=0.2, hold_end_s=0.2
                )
            )
            hits += int(any(event.gesture == "swipe_right" for event in detector.events))

        transformer = KinectTransformer()
        end = [
            transformer.transform(frame)
            for frame in make_simulator(user=user, seed=200 + len(rows),
                                        position=position, yaw_deg=yaw).perform(
                SwipeTrajectory("right")
            )
        ][-1]
        residual = float(np.linalg.norm([
            end["rhand_x"] - reference_end["rhand_x"],
            end["rhand_y"] - reference_end["rhand_y"],
            end["rhand_z"] - reference_end["rhand_z"],
        ]))
        rows.append(
            {
                "variation": label,
                "detected": f"{hits}/{trials}",
                "end-pose residual [mm]": f"{residual:6.1f}",
            }
        )
    print_table("F3: detection under user/position/orientation variation", rows)

    detection_rates = [int(row["detected"].split("/")[0]) for row in rows]
    assert all(rate >= trials - 1 for rate in detection_rates)
    residuals = [float(row["end-pose residual [mm]"]) for row in rows]
    assert max(residuals) < 150.0
