"""Benchmark suite: one module per experiment id from DESIGN.md."""
