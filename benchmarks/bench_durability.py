"""B5 — durability: write-ahead logging overhead, recovery, replay speed.

Runs the B1 hot path (the C5 8-query vocabulary, raw frames through the
``kinect_t`` view, batched delivery) through the ``GestureSession`` façade
in four configurations: no durability (baseline) and the three event-log
fsync policies (``rotate`` / ``batch`` / ``always``).  Before reporting
overhead the benchmark asserts that every durable configuration detects
*exactly* what the baseline detects — the write-ahead tap must never
perturb the data path.

Two more sections exercise the recovery story end to end:

* **recovery** — a durable run snapshots at the midpoint, feeds the rest
  and is abandoned without ``close()`` (a crash, minus the SIGKILL that
  ``tests/test_persistence.py`` already covers); ``GestureSession.recover``
  must reproduce the uninterrupted run's detections, and its wall time and
  replayed-entry count are recorded.
* **replay** — ``session.replay()`` re-drives the whole log into a fresh
  session faster than real time; entries/s and equality are recorded.

The acceptance bar — logging overhead ≤ 10% on the hot path with the
default ``rotate`` policy — is asserted whenever timing is enabled and
recorded in ``BENCH_durability.json`` either way.
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_table, record_benchmark
from repro.api import DurabilityConfig, GestureSession, SessionConfig

BATCH_SIZE = 64
REPEAT = 3


def _detection_states(session):
    return [d.to_state() for d in session.detections()]


def _run_workload(queries, frames, durability=None):
    """Feed the B1 workload through one session; returns (tps, session).

    Throughput is the best single pass of ``REPEAT`` — overhead ratios are
    computed between two such runs, and min-of-N rejects scheduler noise
    that a single aggregate timing would fold into the comparison.
    """
    session = GestureSession(
        config=SessionConfig(batch_size=BATCH_SIZE), durability=durability
    )
    session.start()
    for query in queries:
        session.deploy(query)
    best = float("inf")
    for _ in range(REPEAT):
        start = time.perf_counter()
        session.feed(frames)
        best = min(best, time.perf_counter() - start)
    return len(frames) / best, session


def _durable_feed(queries, frames, directory):
    """The timed kernel for pytest-benchmark: one durable pass."""
    _, session = _run_workload(
        queries, frames, durability=DurabilityConfig(directory)
    )
    session.close()


def test_b5_logging_overhead_recovery_and_replay(
    benchmark, request, gesture_queries, sensor_frames, tmp_path
):
    baseline_tps, baseline = _run_workload(gesture_queries, sensor_frames)
    expected = _detection_states(baseline)
    assert expected, "workload produced no detections; the comparison is vacuous"
    baseline.close()

    rows = [
        {
            "configuration": "baseline (no durability)",
            "tuples_per_second": round(baseline_tps, 1),
            "overhead_pct": 0.0,
            "bytes_appended": 0,
            "fsyncs": 0,
        }
    ]
    overhead_by_policy = {}
    for policy in ("rotate", "batch", "always"):
        directory = tmp_path / f"log-{policy}"
        tps, session = _run_workload(
            gesture_queries,
            sensor_frames,
            durability=DurabilityConfig(directory, fsync=policy),
        )
        # Correctness first: the tap must not change what is detected.
        assert _detection_states(session) == expected, policy
        durability = session.metrics.snapshot()["durability"]
        overhead = (1.0 - tps / baseline_tps) * 100.0
        overhead_by_policy[policy] = overhead
        rows.append(
            {
                "configuration": f"event log / fsync={policy}",
                "tuples_per_second": round(tps, 1),
                "overhead_pct": round(overhead, 1),
                "bytes_appended": durability["bytes_appended"],
                "fsyncs": durability["fsyncs"],
            }
        )
        session.close()
    print_table("B5: write-ahead logging overhead on the B1 hot path", rows)

    # -- recovery: snapshot at the midpoint, crash, recover ----------------------------
    crash_dir = tmp_path / "crash"
    session = GestureSession(
        config=SessionConfig(batch_size=BATCH_SIZE),
        durability=DurabilityConfig(crash_dir),
    )
    session.start()
    for query in gesture_queries:
        session.deploy(query)
    midpoint = len(sensor_frames) // 2
    for _ in range(REPEAT):
        session.feed(sensor_frames[:midpoint])
    session.snapshot()
    for _ in range(REPEAT):
        session.feed(sensor_frames[midpoint:])
    crashed_expected = _detection_states(session)
    # Crash: the session is abandoned — no close(), no log seal.

    start = time.perf_counter()
    recovered = GestureSession.recover(
        DurabilityConfig(crash_dir), config=SessionConfig(batch_size=BATCH_SIZE)
    )
    recovery_seconds = time.perf_counter() - start
    assert _detection_states(recovered) == crashed_expected
    recovery = {
        "seconds": round(recovery_seconds, 4),
        "snapshot_offset": recovered.last_recovery.snapshot_offset,
        "replayed_entries": recovered.last_recovery.replayed_entries,
        "replayed_tuples": recovered.last_recovery.replayed_tuples,
    }

    # -- replay: the whole log, faster than real time ----------------------------------
    controller = recovered.replay()
    start = time.perf_counter()
    applied = controller.play()
    replay_seconds = time.perf_counter() - start
    assert _detection_states(controller.target) == crashed_expected
    replay = {
        "entries": applied,
        "seconds": round(replay_seconds, 4),
        "entries_per_second": round(applied / replay_seconds, 1)
        if replay_seconds > 0
        else 0.0,
    }
    controller.target.close()
    recovered.close()
    print_table(
        "B5: recovery and replay",
        [{**recovery, "replay_entries_per_s": replay["entries_per_second"]}],
    )

    record_benchmark(
        "durability",
        {
            "rows": rows,
            "recovery": recovery,
            "replay": replay,
            "baseline_tuples_per_second": round(baseline_tps, 1),
        },
    )

    # The acceptance bar: the default policy costs ≤ 10% on the hot path.
    # Skipped in the untimed smoke pass (single-shot ratios on shared CI
    # runners are noise, exactly as in B1).
    if not request.config.getoption("benchmark_disable", False):
        assert overhead_by_policy["rotate"] <= 10.0, overhead_by_policy

    benchmark(_durable_feed, gesture_queries, sensor_frames, tmp_path / "kernel")
