"""C5 — Sec. 2 / 3.3.1: the engine must keep up with the 30 Hz sensor stream.

Streams raw sensor frames through the full runtime path (``kinect`` stream →
``kinect_t`` view → NFA matchers) with an increasing number of deployed
gesture queries and reports sustained throughput, the real-time factor
relative to the Kinect's 30 Hz, and per-tuple latency percentiles.

The benchmark kernel times the 8-query configuration (a full gesture
vocabulary) so pytest-benchmark tracks the headline number.
"""

import pytest

from benchmarks.conftest import learn_gesture, make_simulator, print_table
from repro.evaluation import measure_throughput
from repro.kinect import (
    CircleTrajectory,
    PushTrajectory,
    RaiseHandTrajectory,
    SwipeTrajectory,
    WaveTrajectory,
)

GESTURES = [
    ("swipe_right", SwipeTrajectory("right")),
    ("swipe_left", SwipeTrajectory("left", hand="lhand")),
    ("circle", CircleTrajectory()),
    ("push", PushTrajectory()),
    ("raise_hand", RaiseHandTrajectory()),
    ("wave_big", WaveTrajectory(cycles=2, amplitude_mm=260.0, name="wave_big")),
    ("swipe_right_low", SwipeTrajectory("right", height_mm=-100.0, name="swipe_right_low")),
    ("push_left", PushTrajectory(hand="lhand", name="push_left")),
]


@pytest.fixture(scope="module")
def gesture_queries(query_generator):
    queries = []
    for index, (name, trajectory) in enumerate(GESTURES):
        joints = ("lhand",) if getattr(trajectory, "hand", "rhand") == "lhand" else ("rhand",)
        description = learn_gesture(name, trajectory, seed=500 + index, joints=joints)
        queries.append(query_generator.generate(description))
    return queries


@pytest.fixture(scope="module")
def sensor_frames():
    simulator = make_simulator(seed=900)
    frames = []
    for _, trajectory in GESTURES[:4]:
        frames.extend(
            simulator.perform_variation(trajectory, hold_start_s=0.2, hold_end_s=0.2)
        )
        frames.extend(simulator.idle_frames(0.5))
    return frames


def test_c5_engine_throughput_vs_query_count(benchmark, gesture_queries, sensor_frames):
    rows = []
    for count in (1, 2, 4, 8):
        result = measure_throughput(gesture_queries[:count], sensor_frames)
        row = result.as_row()
        row["realtime_x (vs 30 Hz)"] = row.pop("realtime_x")
        rows.append(row)
    print_table("C5: engine throughput vs number of deployed gesture queries", rows)

    benchmark(measure_throughput, gesture_queries, sensor_frames)

    # The engine must sustain the Kinect rate with a full vocabulary deployed.
    full_vocabulary = rows[-1]
    assert full_vocabulary["realtime_x (vs 30 Hz)"] > 1.0
    assert rows[0]["tuples_per_s"] >= full_vocabulary["tuples_per_s"]
