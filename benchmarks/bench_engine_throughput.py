"""C5 — Sec. 2 / 3.3.1: the engine must keep up with the 30 Hz sensor stream.

Streams raw sensor frames through the full runtime path (``kinect`` stream →
``kinect_t`` view → NFA matchers) with an increasing number of deployed
gesture queries and reports sustained throughput, the real-time factor
relative to the Kinect's 30 Hz, and per-tuple latency percentiles.

The benchmark kernel times the 8-query configuration (a full gesture
vocabulary) so pytest-benchmark tracks the headline number.  The gesture
vocabulary and frame fixtures live in ``conftest.py`` and are shared with
the B1 batched-matching comparison (``bench_batch_matching.py``).
"""

from benchmarks.conftest import print_table
from repro.evaluation import measure_throughput


def test_c5_engine_throughput_vs_query_count(benchmark, gesture_queries, sensor_frames):
    rows = []
    for count in (1, 2, 4, 8):
        result = measure_throughput(gesture_queries[:count], sensor_frames)
        row = result.as_row()
        row["realtime_x (vs 30 Hz)"] = row.pop("realtime_x")
        rows.append(row)
    print_table("C5: engine throughput vs number of deployed gesture queries", rows)

    benchmark(measure_throughput, gesture_queries, sensor_frames)

    # The engine must sustain the Kinect rate with a full vocabulary deployed.
    full_vocabulary = rows[-1]
    assert full_vocabulary["realtime_x (vs 30 Hz)"] > 1.0
    assert rows[0]["tuples_per_s"] >= full_vocabulary["tuples_per_s"]
