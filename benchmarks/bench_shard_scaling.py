"""B4 — the sharded runtime: correctness and shard-count scaling.

The sharded runtime (:mod:`repro.runtime`) executes the detection path
across N worker shards, routing every frame to its player's shard by a
stable partition hash.  Two measurements:

* **Equivalence** — replay a 16-user interleaved recording (8 deployed
  gesture queries, raw frames through each shard's ``kinect_t`` view) on a
  4-shard runtime in the interpreted, compiled and batched matcher
  configurations, and assert the per-player detection sequences are
  *identical* to a single inline engine's.  Sharding must never trade
  correctness for scale.
* **Scaling** — end-to-end throughput (feed + drain) of
  ``GestureSession(shards=1/2/4/8)`` on the 16-user workload, recorded to
  ``BENCH_shard_scaling.json``.  ``shards=1`` is the inline engine path.

Interpreting the scaling numbers: worker *threads* on a GIL-bound CPython
build time-slice one core, so thread-sharding buys isolation and
backpressure, not speed.  Real parallelism needs the process executor and
multiple cores — the benchmark uses ``shard_executor="process"`` whenever
the machine has more than one CPU, and asserts the ≥2× speedup of
``shards=4`` over ``shards=1`` only where it is physically achievable
(≥ 4 CPUs) and timing is enabled (skipped in the untimed smoke pass, like
B1's timing assertion).  The measured ratio is always recorded in the
JSON either way.
"""

import os
import time

from benchmarks.conftest import THROUGHPUT_GESTURES, print_table, record_benchmark
from repro.api import GestureSession, SessionConfig
from repro.cep.matcher import MatcherConfig
from repro.evaluation import measure_throughput
from repro.kinect import generate_multiuser_recording
from repro.runtime import ShardedRuntime
from repro.runtime.shard import ShardEngineSpec

BATCH_SIZE = 64
USER_COUNT = 16
SHARD_COUNTS = (1, 2, 4, 8)
EQUIVALENCE_SHARDS = 4
SPEEDUP_SHARDS = 4
SPEEDUP_FACTOR = 2.0
#: CPUs needed before a 2x speedup of 4 process shards is physically
#: plausible (the routing/pickling parent thread occupies part of one).
SPEEDUP_MIN_CPUS = 4


def _make_recording(seed: int = 77):
    return generate_multiuser_recording(
        dict(THROUGHPUT_GESTURES[:4]),
        user_count=USER_COUNT,
        gestures_per_user=2,
        seed=seed,
    )


def _per_player_detections(detections):
    """Detection sequences keyed by (player, query) for exact equality."""
    grouped = {}
    for detection in detections:
        grouped.setdefault((detection.partition, detection.query_name), []).append(
            (
                detection.output,
                detection.timestamp,
                detection.start_timestamp,
                detection.step_timestamps,
            )
        )
    return grouped


def _run_sharded(queries, frames, compile_predicates=True, batch_size=None, shards=EQUIVALENCE_SHARDS):
    """Replay ``frames`` on a sharded runtime; returns its detections."""
    spec = ShardEngineSpec(matcher=MatcherConfig(compile_predicates=compile_predicates))
    with ShardedRuntime(shard_count=shards, spec=spec) as runtime:
        for query in queries:
            runtime.register_query(query)
        runtime.feed(frames, batch_size=batch_size)
        return runtime.detections()


def test_b4_sharded_detections_equal_inline_per_player(gesture_queries):
    recording = _make_recording()

    # Ground truth: the inline single-engine path (per-tuple, compiled).
    inline = measure_throughput(gesture_queries, recording.frames)
    baseline = _per_player_detections(inline.detections)
    assert baseline, "workload produced no detections; the comparison is vacuous"
    assert len({player for player, _ in baseline}) == USER_COUNT

    # A 4-shard runtime must reproduce it exactly, player by player, on
    # every matcher configuration.
    for label, kwargs in (
        ("interpreted", dict(compile_predicates=False)),
        ("compiled", dict()),
        ("batched", dict(batch_size=BATCH_SIZE)),
    ):
        sharded = _run_sharded(gesture_queries, recording.frames, **kwargs)
        assert _per_player_detections(sharded) == baseline, label


def test_b4_shard_counts_are_equivalent(gesture_queries):
    """1, 2, 4 and 8 shards all detect identically (routing is lossless)."""
    recording = _make_recording(seed=78)
    reference = None
    for shards in SHARD_COUNTS:
        detections = _per_player_detections(
            _run_sharded(gesture_queries, recording.frames, shards=shards)
        )
        if reference is None:
            reference = detections
            assert reference
        else:
            assert detections == reference, f"shards={shards}"


def _session_throughput(frames, queries, shards, executor, repeats=3):
    """Best-of-N end-to-end session throughput (deploy once, feed+drain)."""
    config = SessionConfig(shards=shards, shard_executor=executor)
    best = 0.0
    detections = 0
    with GestureSession(config) as session:
        for query in queries:
            session.deploy(query)
        for _ in range(repeats):
            session.clear()
            started = time.perf_counter()
            session.feed(frames)
            session.drain()
            elapsed = time.perf_counter() - started
            best = max(best, len(frames) / elapsed)
        detections = len(session.detections())
    return best, detections


def test_b4_shard_scaling_throughput(benchmark, request, gesture_queries):
    recording = _make_recording()
    frames = recording.frames
    cpu_count = os.cpu_count() or 1
    executor = "process" if cpu_count > 1 else "thread"
    timing_enabled = not request.config.getoption("benchmark_disable", False)
    repeats = 3 if timing_enabled else 1

    rows = []
    throughput = {}
    detections = {}
    for shards in SHARD_COUNTS:
        tps, found = _session_throughput(
            frames, gesture_queries, shards, executor, repeats=repeats
        )
        throughput[shards] = tps
        detections[shards] = found
        rows.append(
            {
                "shards": shards,
                "executor": "inline" if shards == 1 else executor,
                "tuples_per_s": round(tps, 1),
                "realtime_x": round(tps / (30.0 * USER_COUNT), 1),
                "speedup_vs_1": round(tps / throughput[1], 2),
                "detections": found,
            }
        )
    print_table(f"B4: shard scaling ({USER_COUNT} users, 8 queries)", rows)

    # Sharding must never lose or invent detections, whatever the count.
    assert len(set(detections.values())) == 1, detections

    ratio = throughput[SPEEDUP_SHARDS] / throughput[1]
    record_benchmark(
        "shard_scaling",
        {
            "config": {
                "users": USER_COUNT,
                "queries": len(gesture_queries),
                "frames": len(frames),
                "shard_counts": list(SHARD_COUNTS),
                "executor": executor,
                "repeats": repeats,
                "timing_enabled": timing_enabled,
            },
            "rows": rows,
            "speedup_4_shards_vs_inline": round(ratio, 2),
            "speedup_asserted": timing_enabled and cpu_count >= SPEEDUP_MIN_CPUS,
        },
    )

    # The ≥2x claim is asserted where it is achievable: timing enabled and
    # enough cores for 4 process shards to actually run in parallel.  On a
    # single-core/GIL box the ratio is recorded but cannot exceed ~1.
    if timing_enabled and cpu_count >= SPEEDUP_MIN_CPUS:
        assert ratio >= SPEEDUP_FACTOR, (
            f"shards={SPEEDUP_SHARDS} reached only {ratio:.2f}x the inline "
            f"throughput on {cpu_count} CPUs; expected >= {SPEEDUP_FACTOR}x"
        )

    benchmark(
        _run_sharded, gesture_queries, frames, batch_size=BATCH_SIZE, shards=2
    )
