"""C2 — Sec. 3.3.1: using every 30 Hz measure as a pose overfits and
increases detection complexity.

Compares two ways of turning one recorded sample into a pattern:

* **raw poses** — (a subsample of) every measured frame becomes its own pose
  window, the strawman the paper argues against,
* **distance-based sampling** — the paper's approach.

Reported per variant: number of poses/predicates, detection rate on repeat
performances by other users (generalisation), and the matcher's predicate
evaluations per input tuple (detection effort).

The benchmark kernel times detection of one performance against the
distance-sampled pattern.
"""


from benchmarks.conftest import make_simulator, print_table
from repro.core import GestureLearner, LearnerConfig, SamplingConfig
from repro.core.description import GestureDescription
from repro.core.distance import joint_fields
from repro.core.windows import PoseWindow, Window
from repro.detection import GestureDetector
from repro.kinect import SwipeTrajectory
from repro.transform import KinectTransformer

FIELDS = joint_fields(["rhand"])


def _raw_pose_description(frames, stride=3, width=60.0):
    """The overfitted strawman: one pose window per (strided) raw frame."""
    transformer = KinectTransformer()
    transformed = [transformer.transform(frame) for frame in frames]
    poses = []
    for index, frame in enumerate(transformed[::stride]):
        poses.append(
            PoseWindow(
                sequence_index=index,
                window=Window(
                    center={name: frame[name] for name in FIELDS},
                    width={name: width for name in FIELDS},
                ),
            )
        )
    return GestureDescription(
        name="swipe_right_raw", poses=poses, joints=["rhand"],
        sample_count=1, mean_duration_s=2.0, max_duration_s=2.0,
    )


def _sampled_description(frames):
    learner = GestureLearner(
        "swipe_right",
        config=LearnerConfig(joints=("rhand",), sampling=SamplingConfig(relative_threshold=0.12)),
    )
    learner.add_sample(frames)
    return learner.description()


def _evaluate(description, query_generator, trials=6):
    detector = GestureDetector()
    detector.deploy(query_generator.generate(description))
    hits = 0
    frames_total = 0
    for trial in range(trials):
        user = ("adult", "child", "tall_adult")[trial % 3]
        simulator = make_simulator(user=user, seed=300 + trial)
        performance = simulator.perform_variation(
            SwipeTrajectory("right"), hold_start_s=0.2, hold_end_s=0.2
        )
        frames_total += len(performance)
        detector.clear()
        detector.process_frames(performance)
        hits += int(any(event.gesture == description.name for event in detector.events))
    stats = detector.engine.get_query(description.name).matcher.stats
    evaluations_per_tuple = stats.predicate_evaluations / max(1, stats.tuples_processed)
    return hits, trials, evaluations_per_tuple


def test_c2_raw_poses_overfit_vs_distance_sampling(benchmark, query_generator):
    training = make_simulator(seed=120).perform_variation(
        SwipeTrajectory("right"), hold_start_s=0.3, hold_end_s=0.3
    )

    sampled = _sampled_description(training)
    raw = _raw_pose_description(training)

    detector = GestureDetector()
    detector.deploy(query_generator.generate(sampled))
    test_frames = make_simulator(seed=310).perform_variation(
        SwipeTrajectory("right"), hold_start_s=0.2, hold_end_s=0.2
    )

    def detect_once():
        detector.clear()
        detector.process_frames(test_frames)
        return len(detector.events)

    benchmark(detect_once)

    rows = []
    for label, description in (("distance-based sampling", sampled),
                               ("raw 30 Hz poses (stride 3)", raw)):
        hits, trials, cost = _evaluate(description, query_generator)
        rows.append(
            {
                "variant": label,
                "poses (NFA states)": description.pose_count,
                "predicates": description.predicate_count(),
                "detected (other users)": f"{hits}/{trials}",
                "predicate evals / tuple": f"{cost:.1f}",
            }
        )
    print_table("C2: overfitting of per-measure poses vs distance sampling", rows)

    sampled_row, raw_row = rows
    sampled_hits = int(sampled_row["detected (other users)"].split("/")[0])
    raw_hits = int(raw_row["detected (other users)"].split("/")[0])
    # The paper's two arguments against per-measure poses: (i) the pattern is
    # several times larger (more NFA states and predicates to maintain), and
    # (ii) it overfits the training performance, so other users' repetitions
    # of the same gesture are missed.
    assert sampled_row["poses (NFA states)"] * 2 <= raw_row["poses (NFA states)"]
    assert sampled_row["predicates"] < raw_row["predicates"]
    assert sampled_hits >= trials - 1
    assert raw_hits < sampled_hits
