"""C1 — "Usually, 3-5 samples are sufficient to achieve acceptable results."

Learns every workload gesture from 1…5 training samples and measures
precision / recall / F1 on held-out performances by *different* users
(adult, child, tall adult).  The paper's claim holds if the curve rises
steeply and saturates by 3–5 samples.

The benchmark kernel times one full detection experiment at 3 training
samples (learning + deployment + replay + scoring).
"""


from benchmarks.conftest import print_table
from repro.evaluation import DetectionExperiment, ExperimentConfig


def test_c1_accuracy_vs_training_samples(benchmark, standard_workload):
    def run_three_sample_experiment():
        return DetectionExperiment(
            standard_workload, ExperimentConfig(training_samples=3)
        ).run()

    benchmark(run_three_sample_experiment)

    rows = []
    series = {}
    for samples in (1, 2, 3, 4, 5):
        result = DetectionExperiment(
            standard_workload, ExperimentConfig(training_samples=samples)
        ).run()
        series[samples] = result
        rows.append(
            {
                "training samples": samples,
                "macro precision": f"{result.macro_precision:.3f}",
                "macro recall": f"{result.macro_recall:.3f}",
                "macro F1": f"{result.macro_f1:.3f}",
            }
        )
    print_table("C1: detection quality vs number of training samples", rows)

    per_gesture = [metrics.as_row() for metrics in series[4].per_gesture.values()]
    print_table("C1: per-gesture metrics at 4 training samples", per_gesture)

    # Shape: good by 3-5 samples, and never much worse than with 1 sample.
    assert series[4].macro_f1 >= 0.85
    assert series[5].macro_f1 >= 0.85
    assert series[3].macro_recall >= series[1].macro_recall - 0.05
