"""F2 — Fig. 2: the full interactive learning workflow.

Runs the stream-driven loop of the paper's architecture figure: wave control
gesture → record three samples (stationary-pose triggered) → finalise →
generate + store + deploy the query → testing phase detections.  Reports how
many control gestures, samples, poses and detections each stage produced.

The benchmark kernel times one complete workflow cycle (3 samples,
finalisation, one test detection).
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.detection import LearningWorkflow, WorkflowConfig
from repro.kinect import GaussianNoise, KinectSimulator, PushTrajectory, WaveTrajectory
from repro.streams import SimulatedClock


def _run_workflow(seed: int = 3):
    workflow = LearningWorkflow(config=WorkflowConfig(min_samples=3))
    simulator = KinectSimulator(
        clock=SimulatedClock(),
        noise=GaussianNoise(sigma_mm=5.0, rng=np.random.default_rng(seed)),
        rng=np.random.default_rng(seed + 1),
    )
    gesture = PushTrajectory()
    wave = WaveTrajectory()

    workflow.begin_gesture("push")
    attempts = 0
    while workflow.sample_count < 3 and attempts < 6:
        attempts += 1
        for frame in simulator.perform(wave, hold_start_s=0.2, hold_end_s=0.2):
            workflow.process_frame(frame)
        for frame in simulator.perform_variation(gesture, hold_start_s=1.0, hold_end_s=1.0):
            workflow.process_frame(frame)
    description = workflow.finalize()

    detections = 0
    trials = 3
    for _ in range(trials):
        before = len(workflow.test_events())
        workflow.process_frames(
            simulator.perform_variation(gesture, hold_start_s=0.3, hold_end_s=0.3)
        )
        detections += int(len(workflow.test_events()) > before)
    return workflow, description, attempts, detections, trials


def test_fig2_interactive_workflow(benchmark):
    workflow, description, attempts, detections, trials = benchmark(_run_workflow)

    control_messages = sum("wave detected" in message for message in workflow.messages)
    rows = [
        {"stage": "control gestures recognised", "value": control_messages},
        {"stage": "recording attempts needed", "value": attempts},
        {"stage": "samples recorded", "value": description.sample_count},
        {"stage": "poses mined", "value": description.pose_count},
        {"stage": "range predicates generated", "value": description.predicate_count()},
        {"stage": "gesture stored in database", "value": workflow.database.has_gesture("push")},
        {"stage": "query deployed", "value": "push" in workflow.detector.deployed_gestures()},
        {"stage": f"test detections (of {trials})", "value": detections},
    ]
    print_table("F2: interactive learning workflow (paper Fig. 2)", rows)

    assert description.sample_count >= 3
    assert workflow.database.has_gesture("push")
    assert detections >= trials - 1
