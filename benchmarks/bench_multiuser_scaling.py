"""B2 — multi-user partitioned matching: correctness and scaling.

The deployment story of the paper is a *shared sensor space*: one Kinect
stream carries the movements of every tracked player.  The detection path
partitions all per-stream state by the ``player`` field — the transformer's
smoothed forearm scale and every matcher's run table — so N interleaved
users must detect exactly like N isolated single-user streams.

Two measurements:

* **Equivalence** — replay a 4-user interleaved recording through the full
  engine (raw frames → ``kinect_t`` view → 8 deployed gesture queries) on
  the interpreted, compiled and batched paths, and assert the per-player
  detection sequences are identical to running each player's isolated
  recording alone.  Partitioning must never trade correctness for scale.
* **Scaling** — throughput at 1, 4 and 16 concurrent users with 8 deployed
  queries, on the per-tuple and batched delivery paths, against the
  Kinect's 30 Hz-per-player real-time budget.
"""


from benchmarks.conftest import THROUGHPUT_GESTURES, print_table, record_benchmark
from repro.evaluation import measure_throughput
from repro.kinect import generate_multiuser_recording

BATCH_SIZE = 64
USER_COUNTS = (1, 4, 16)
GESTURES_PER_USER = 2


def _make_recording(user_count: int, seed: int = 77):
    return generate_multiuser_recording(
        dict(THROUGHPUT_GESTURES[:4]),
        user_count=user_count,
        gestures_per_user=GESTURES_PER_USER,
        seed=seed,
    )


def _per_player_detections(detections):
    """Detection sequences keyed by (player, query) for exact equality."""
    grouped = {}
    for detection in detections:
        grouped.setdefault((detection.partition, detection.query_name), []).append(
            (
                detection.output,
                detection.timestamp,
                detection.start_timestamp,
                detection.step_timestamps,
            )
        )
    return grouped


def test_b2_interleaved_users_detect_like_isolated_users(gesture_queries):
    recording = _make_recording(user_count=4)

    # Ground truth: each player's recording replayed alone on a fresh engine.
    isolated = {}
    for player_id, player_recording in recording.players.items():
        result = measure_throughput(gesture_queries, player_recording.frames)
        for (partition, query), sequence in _per_player_detections(
            result.detections
        ).items():
            assert partition == player_id
            isolated[(partition, query)] = sequence
    assert isolated, "no single-user detections; the comparison is vacuous"
    assert len({player for player, _ in isolated}) > 1

    # The interleaved stream must reproduce exactly that, player by player,
    # on every engine path.
    for label, kwargs in (
        ("interpreted", dict(compile_predicates=False)),
        ("compiled", dict()),
        ("batched", dict(batch_size=BATCH_SIZE)),
    ):
        interleaved = measure_throughput(gesture_queries, recording.frames, **kwargs)
        assert _per_player_detections(interleaved.detections) == isolated, label


def test_b2_throughput_scales_with_user_count(benchmark, gesture_queries):
    rows = []
    for user_count in USER_COUNTS:
        recording = _make_recording(user_count=user_count)
        per_tuple = measure_throughput(gesture_queries, recording.frames)
        batched = measure_throughput(
            gesture_queries, recording.frames, batch_size=BATCH_SIZE
        )
        # The batched path must not change what anyone's gesture detects.
        assert _per_player_detections(batched.detections) == _per_player_detections(
            per_tuple.detections
        )
        for label, result in (("per-tuple", per_tuple), (f"batch={BATCH_SIZE}", batched)):
            row = {"users": user_count, "path": label}
            row.update(result.as_row())
            # 30 Hz per tracked player: the real-time budget grows with the
            # number of concurrent users.
            row["realtime_x"] = round(
                result.tuples_per_second / (30.0 * user_count), 1
            )
            row["detections"] = len(result.detections)
            rows.append(row)
    print_table("B2: multi-user scaling (8 queries)", rows)
    record_benchmark("multiuser_scaling", {"rows": rows})

    for row in rows:
        assert row["realtime_x"] > 1.0, f"below real time: {row}"

    frames_16 = _make_recording(user_count=16).frames
    benchmark(measure_throughput, gesture_queries, frames_16, batch_size=BATCH_SIZE)
