"""Shared fixtures and reporting helpers for the benchmark suite.

Every benchmark corresponds to one experiment id from ``DESIGN.md`` /
``EXPERIMENTS.md`` (F1–F5, C1–C5, A1).  Benchmarks print the table or series
the experiment reproduces — run with ``pytest benchmarks/ --benchmark-only -s``
to see them — and additionally time a representative kernel through the
``benchmark`` fixture so pytest-benchmark collects comparable numbers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np
import pytest

from repro.core import GestureLearner, LearnerConfig, QueryGenerator
from repro.evaluation import WorkloadConfig, build_workload
from repro.kinect import GaussianNoise, KinectSimulator, user_by_name
from repro.streams import SimulatedClock


def print_table(title: str, rows: Sequence[Dict[str, object]]) -> None:
    """Print a list of dictionaries as an aligned text table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("  (no rows)")
        return
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row[column])) for row in rows))
        for column in columns
    }
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    print("  " + header)
    print("  " + "-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        print("  " + " | ".join(str(row[column]).ljust(widths[column]) for column in columns))


def make_simulator(user: str = "adult", seed: int = 11, **kwargs) -> KinectSimulator:
    """A deterministic simulator for benchmark training/test data."""
    return KinectSimulator(
        user=user_by_name(user),
        clock=SimulatedClock(),
        noise=GaussianNoise(sigma_mm=6.0, rng=np.random.default_rng(seed)),
        rng=np.random.default_rng(seed + 1),
        **kwargs,
    )


def learn_gesture(name, trajectory, samples=4, seed=11, joints=("rhand",)):
    """Learn one gesture from ``samples`` simulated performances."""
    simulator = make_simulator(seed=seed)
    learner = GestureLearner(name, config=LearnerConfig(joints=tuple(joints)))
    for _ in range(samples):
        learner.add_sample(
            simulator.perform_variation(trajectory, hold_start_s=0.3, hold_end_s=0.3)
        )
    return learner.description()


@pytest.fixture(scope="session")
def query_generator() -> QueryGenerator:
    return QueryGenerator()


@pytest.fixture(scope="session")
def standard_workload():
    """The workload used by the accuracy-style experiments (C1, C3, C4)."""
    return build_workload(
        WorkloadConfig(
            gestures=("swipe_right", "swipe_left", "circle", "push"),
            training_samples=5,
            test_performances=3,
            test_users=("adult", "child", "tall_adult"),
            seed=23,
        )
    )
