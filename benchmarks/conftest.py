"""Shared fixtures and reporting helpers for the benchmark suite.

Every benchmark corresponds to one experiment id from ``DESIGN.md`` /
``EXPERIMENTS.md`` (F1–F5, C1–C5, A1, B1).  Benchmarks print the table or
series the experiment reproduces — run with
``pytest benchmarks/ --benchmark-only -s`` to see them — and additionally
time a representative kernel through the ``benchmark`` fixture so
pytest-benchmark collects comparable numbers.

``python -m pytest benchmarks -q -m smoke`` runs every benchmark kernel
exactly once with pytest-benchmark timing disabled — a fast CI smoke pass
that keeps the perf harness working without paying for calibration rounds.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, Mapping, Sequence

# Allow `python -m pytest benchmarks` without an explicit PYTHONPATH=src.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np
import pytest

from repro.core import GestureLearner, LearnerConfig, QueryGenerator
from repro.evaluation import WorkloadConfig, build_workload
from repro.kinect import (
    CircleTrajectory,
    GaussianNoise,
    KinectSimulator,
    PushTrajectory,
    RaiseHandTrajectory,
    SwipeTrajectory,
    WaveTrajectory,
    user_by_name,
)
from repro.streams import SimulatedClock


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "smoke: run each benchmark kernel once without pytest-benchmark timing",
    )
    # `-m smoke` implies --benchmark-disable: kernels run once, untimed.
    # Exact match only — composed expressions like "not smoke" keep explicit
    # control over --benchmark-disable.
    if (config.getoption("markexpr", "") or "").strip() == "smoke":
        config.option.benchmark_disable = True


def pytest_collection_modifyitems(config, items):
    for item in items:
        if "bench_" in item.nodeid:
            item.add_marker(pytest.mark.smoke)


#: Where ``record_benchmark`` writes its JSON files.
RESULTS_DIR = Path(__file__).resolve().parent

#: ``history`` entries kept per benchmark file — old runs age out so the
#: checked-in JSON stays reviewable.
HISTORY_LIMIT = 20


def _git_sha() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=RESULTS_DIR,
                capture_output=True,
                text=True,
                timeout=5,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _load_history(path: Path) -> list:
    """Prior runs from an existing BENCH file, oldest first.

    Legacy single-run documents (no ``history`` key) become the first
    history entry, so the perf trajectory survives the format change.
    """
    if not path.exists():
        return []
    try:
        previous = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    if not isinstance(previous, dict):
        return []
    history = previous.get("history")
    if isinstance(history, list):
        return history
    previous.setdefault("git_sha", "unknown")
    return [previous]


def record_benchmark(name: str, payload: Mapping[str, object]) -> Path:
    """Record one benchmark run in ``benchmarks/BENCH_<name>.json``.

    The perf trajectory of the repo lives in these files: every benchmark
    passes its configuration, throughput numbers and detection counts, and
    the writer adds the environment (python, platform, cpu count), a
    wall-clock stamp and the current git SHA.  The latest run stays at the
    top level (so existing readers keep working) and every run — keyed by
    ``git_sha`` + ``written_at`` — is appended to a bounded ``history``
    array, so regressions across commits are diffable in review.  Values
    must be JSON-serialisable — pass the same plain rows the
    ``print_table`` reports use.
    """
    entry = {
        "benchmark": name,
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": _git_sha(),
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        **payload,
    }
    path = RESULTS_DIR / f"BENCH_{name}.json"
    history = [
        {key: value for key, value in run.items() if key != "history"}
        for run in _load_history(path)
    ]
    history.append(entry)
    history = history[-HISTORY_LIMIT:]
    document = {**entry, "history": history}
    path.write_text(json.dumps(document, indent=2, default=str) + "\n")
    return path


def print_table(title: str, rows: Sequence[Dict[str, object]]) -> None:
    """Print a list of dictionaries as an aligned text table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("  (no rows)")
        return
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row[column])) for row in rows))
        for column in columns
    }
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    print("  " + header)
    print("  " + "-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        print("  " + " | ".join(str(row[column]).ljust(widths[column]) for column in columns))


def make_simulator(user: str = "adult", seed: int = 11, **kwargs) -> KinectSimulator:
    """A deterministic simulator for benchmark training/test data."""
    return KinectSimulator(
        user=user_by_name(user),
        clock=SimulatedClock(),
        noise=GaussianNoise(sigma_mm=6.0, rng=np.random.default_rng(seed)),
        rng=np.random.default_rng(seed + 1),
        **kwargs,
    )


def learn_gesture(name, trajectory, samples=4, seed=11, joints=("rhand",)):
    """Learn one gesture from ``samples`` simulated performances."""
    simulator = make_simulator(seed=seed)
    learner = GestureLearner(name, config=LearnerConfig(joints=tuple(joints)))
    for _ in range(samples):
        learner.add_sample(
            simulator.perform_variation(trajectory, hold_start_s=0.3, hold_end_s=0.3)
        )
    return learner.description()


#: The 8-gesture vocabulary of the C5 throughput experiment (also reused by
#: the B1 batched-matching comparison).
THROUGHPUT_GESTURES = [
    ("swipe_right", SwipeTrajectory("right")),
    ("swipe_left", SwipeTrajectory("left", hand="lhand")),
    ("circle", CircleTrajectory()),
    ("push", PushTrajectory()),
    ("raise_hand", RaiseHandTrajectory()),
    ("wave_big", WaveTrajectory(cycles=2, amplitude_mm=260.0, name="wave_big")),
    ("swipe_right_low", SwipeTrajectory("right", height_mm=-100.0, name="swipe_right_low")),
    ("push_left", PushTrajectory(hand="lhand", name="push_left")),
]


@pytest.fixture(scope="session")
def query_generator() -> QueryGenerator:
    return QueryGenerator()


@pytest.fixture(scope="session")
def gesture_queries(query_generator):
    """One learned query per gesture of the throughput vocabulary."""
    queries = []
    for index, (name, trajectory) in enumerate(THROUGHPUT_GESTURES):
        joints = ("lhand",) if getattr(trajectory, "hand", "rhand") == "lhand" else ("rhand",)
        description = learn_gesture(name, trajectory, seed=500 + index, joints=joints)
        queries.append(query_generator.generate(description))
    return queries


@pytest.fixture(scope="session")
def sensor_frames():
    """Raw sensor frames: four performed gestures interleaved with idle."""
    simulator = make_simulator(seed=900)
    frames = []
    for _, trajectory in THROUGHPUT_GESTURES[:4]:
        frames.extend(
            simulator.perform_variation(trajectory, hold_start_s=0.2, hold_end_s=0.2)
        )
        frames.extend(simulator.idle_frames(0.5))
    return frames


@pytest.fixture(scope="session")
def standard_workload():
    """The workload used by the accuracy-style experiments (C1, C3, C4)."""
    return build_workload(
        WorkloadConfig(
            gestures=("swipe_right", "swipe_left", "circle", "push"),
            training_samples=5,
            test_performances=3,
            test_users=("adult", "child", "tall_adult"),
            seed=23,
        )
    )
