"""F5 — Fig. 5 / Sec. 3.1: testing-phase feedback.

The paper's testing phase visualises the learned windows and the user's
tracked joints so they can see *why* a movement was (not) detected.  The
equivalent signal in this reproduction is the per-gesture partial-match
progress exposed by the detector.  The benchmark replays a swipe performance
frame by frame and reports the progress curve: it must rise through the pose
sequence and either complete (detection) or expose where an aborted movement
stopped.

The benchmark kernel times one feedback snapshot (cheap: it is read per
rendered GUI frame in the original system).
"""


from benchmarks.conftest import learn_gesture, make_simulator, print_table
from repro.detection import GestureDetector
from repro.kinect import CircleTrajectory, SwipeTrajectory


def test_fig5_partial_match_feedback(benchmark, query_generator):
    detector = GestureDetector()
    for name, trajectory in (
        ("swipe_right", SwipeTrajectory("right")),
        ("circle", CircleTrajectory()),
    ):
        detector.deploy(learn_gesture(name, trajectory, seed=hash(name) % 1000))

    benchmark(detector.feedback)

    simulator = make_simulator(seed=77)
    frames = simulator.perform_variation(
        SwipeTrajectory("right"), hold_start_s=0.2, hold_end_s=0.2
    )

    rows = []
    checkpoints = [0.25, 0.5, 0.75, 1.0]
    consumed = 0
    for fraction in checkpoints:
        target = int(len(frames) * fraction)
        detector.process_frames(frames[consumed:target])
        consumed = target
        feedback = detector.feedback()
        rows.append(
            {
                "frames replayed": f"{int(fraction * 100)}%",
                "swipe_right progress": f"{feedback.progress['swipe_right']:.0%}",
                "circle progress": f"{feedback.progress['circle']:.0%}",
                "best candidate": feedback.best_candidate() or "-",
                "detections": len(detector.events),
            }
        )
    print_table("F5: partial-match progress during a swipe performance", rows)

    # Mid-performance the swipe pattern must lead, and the full performance
    # must end in a detection.
    mid = rows[1]
    assert mid["best candidate"] == "swipe_right"
    assert rows[-1]["detections"] >= 1

    # An aborted movement: progress is visible but no detection fires.
    detector.clear()
    detector.process_frames(frames[: len(frames) // 3])
    aborted = detector.feedback()
    print_table(
        "F5: aborted movement feedback",
        [{
            "swipe_right progress": f"{aborted.progress['swipe_right']:.0%}",
            "detections": len(detector.events),
        }],
    )
    assert aborted.progress["swipe_right"] > 0.0
    assert len(detector.events) == 0
