"""B6 — gateway load: 1000 websocket clients, byte-identical detections.

The experiment behind the number: the paper's engine serves interactive
gesture sessions; ROADMAP scale means thousands of concurrent sensor
streams entering over the network.  B6 stands up one
:class:`~repro.gateway.GatewayServer` on loopback and drives it with
``CLIENT_COUNT`` real websocket clients (real handshakes, real frames,
real acks) spread over ``TENANT_COUNT`` tenants — every client playing
one `player` partition of its tenant's session.  Three assertions:

* **Fidelity** — after the load drains, each tenant's per-player
  detection sequences (``Detection.to_state()`` serialised with sorted
  keys) are *byte-identical* to a direct in-process
  ``GestureSession.feed`` of the same tuples.  The network path may
  reorder players relative to each other, never a player against itself
  (the PR-2 partitioning contract, now holding across a socket).
* **Liveness** — ``GET /healthz`` and ``GET /metrics`` answer 200
  *during* the load, polled concurrently with the clients.
* **Accounting** — the gateway's edge counters add up: every offered
  tuple was accepted (block policy, no drops) and fed.

Throughput (tuples/s through the full websocket → admission → session
path) and ack round-trip latency percentiles go to
``BENCH_gateway_load.json``.
"""

import asyncio
import json
import time

import numpy as np

from benchmarks.conftest import print_table, record_benchmark
from repro.api import GestureSession, SessionConfig
from repro.gateway import GatewayClient, GatewayConfig, GatewayServer, TenantConfig

CLIENT_COUNT = 1000
TENANT_COUNT = 20
PLAYERS_PER_TENANT = CLIENT_COUNT // TENANT_COUNT
#: tuples frames each client sends, and tuples per frame.
ROUNDS = 3
FRAMES_PER_ROUND = 4
#: Cap on concurrent connection handshakes (TCP accept bursts).
CONNECT_CONCURRENCY = 100

HIGH = 'SELECT "high" MATCHING kinect_t(rhand_y > 450);'
UPDOWN = (
    'SELECT "updown" MATCHING ( kinect_t(rhand_y > 400) -> '
    "kinect_t(rhand_y < 100) within 5 seconds );"
)
VOCABULARY = {"high": HIGH, "updown": UPDOWN}


def tenant_name(index):
    return f"tenant{index:02d}"


def player_frames(player):
    """One client's workload: alternating highs and lows, rising clock."""
    frames = []
    for step in range(ROUNDS * FRAMES_PER_ROUND):
        value = 500.0 if step % 2 == 0 else 50.0
        frames.append(
            {"ts": (step + 1) * 0.033, "player": player, "rhand_y": value}
        )
    return frames


def canonical(detection_states):
    """Per-player detection sequences as byte-comparable JSON strings."""
    grouped = {}
    for state in detection_states:
        grouped.setdefault(state["partition"], []).append(
            json.dumps(state, sort_keys=True)
        )
    return grouped


def reference_detections():
    """The ground truth: every tenant's tuples through the direct API."""
    with GestureSession(SessionConfig()) as session:
        session.deploy_vocabulary(VOCABULARY)
        for player in range(1, PLAYERS_PER_TENANT + 1):
            session.feed(player_frames(player), stream="kinect_t")
        return canonical([d.to_state() for d in session.detections()])


async def run_client(server, tenant, player, limiter, barrier, latencies):
    """One simulated client: attach, stream its rounds, ack-timed.

    The connect ramp is semaphore-limited (TCP accept bursts); the barrier
    then holds every connected client until all 1000 are attached, so the
    load phase genuinely runs with 1000 concurrent websocket connections.
    """
    async with limiter:
        client = await GatewayClient.connect("127.0.0.1", server.port)
        await client.hello(tenant)
    try:
        await barrier.wait()
        frames = player_frames(player)
        for round_index in range(ROUNDS):
            chunk = frames[
                round_index * FRAMES_PER_ROUND : (round_index + 1) * FRAMES_PER_ROUND
            ]
            started = time.perf_counter()
            ack = await client.send_tuples(
                chunk, stream="kinect_t", seq=round_index
            )
            latencies.append(time.perf_counter() - started)
            assert ack["accepted"] == len(chunk), ack
            assert ack["dropped"] == 0, ack
    finally:
        await client.close()


async def poll_http(server, stop, counters):
    """Hammer /healthz and /metrics while the load runs."""
    while not stop.is_set():
        for target in ("/healthz", "/metrics"):
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(f"GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n".encode())
            await writer.drain()
            raw = await reader.read(-1)
            writer.close()
            status = int(raw.split(b" ", 2)[1])
            counters[target][status] = counters[target].get(status, 0) + 1
        await asyncio.sleep(0.02)


async def run_load():
    config = GatewayConfig(
        port=0,
        default_tenant=TenantConfig(
            policy="block",
            pending_capacity=FRAMES_PER_ROUND * PLAYERS_PER_TENANT * 2,
            max_connections=PLAYERS_PER_TENANT + 1,
        ),
    )
    server = GatewayServer(config)
    await server.start()
    try:
        # One admin connection per tenant deploys the vocabulary up front.
        admins = {}
        for index in range(TENANT_COUNT):
            admin = await GatewayClient.connect("127.0.0.1", server.port)
            await admin.hello(tenant_name(index))
            deployed = await admin.deploy_vocabulary(VOCABULARY)
            assert sorted(deployed) == ["high", "updown"]
            admins[tenant_name(index)] = admin

        # Bring up every client (bounded connect concurrency), then fire
        # the load with all CLIENT_COUNT connections attached at once.
        barrier = asyncio.Barrier(CLIENT_COUNT + 1)
        limiter = asyncio.Semaphore(CONNECT_CONCURRENCY)
        latencies = []
        tasks = [
            asyncio.ensure_future(
                run_client(
                    server,
                    tenant_name(index // PLAYERS_PER_TENANT),
                    1 + index % PLAYERS_PER_TENANT,
                    limiter,
                    barrier,
                    latencies,
                )
            )
            for index in range(CLIENT_COUNT)
        ]
        stop_polling = asyncio.Event()
        http_counters = {"/healthz": {}, "/metrics": {}}
        poller = asyncio.ensure_future(poll_http(server, stop_polling, http_counters))

        await barrier.wait()  # every client is connected and attached
        clients_connected = server.metrics.connections_active
        load_started = time.perf_counter()
        await asyncio.gather(*tasks)
        load_seconds = time.perf_counter() - load_started
        stop_polling.set()
        await poller

        # Drain every tenant and pull its detections over the wire.
        gateway_detections = {}
        for tenant, admin in admins.items():
            await admin.drain()
            gateway_detections[tenant] = await admin.detections()
            await admin.bye()

        edge = server.metrics.snapshot()
        return {
            "latencies": latencies,
            "load_seconds": load_seconds,
            "clients_connected": clients_connected,
            "http_counters": http_counters,
            "gateway_detections": gateway_detections,
            "edge": edge,
            "loop_lag_ewma": edge["loop_lag_ewma_seconds"],
            "loop_lag_max": edge["loop_lag_max_seconds"],
        }
    finally:
        await server.close()


def test_b6_gateway_load(benchmark):
    expected = reference_detections()
    assert expected  # the workload detects; the comparison is non-vacuous

    result = asyncio.run(run_load())

    # Fidelity: per-tenant, per-player byte-identical to the direct feed.
    # Every tenant ran the identical workload, so each must equal the one
    # reference (players are the partition key; byte equality per player).
    for tenant, states in result["gateway_detections"].items():
        assert canonical(states) == expected, f"{tenant} diverged from direct feed"

    # Liveness: both endpoints answered 200, and only 200, during load.
    for target, by_status in result["http_counters"].items():
        assert set(by_status) == {200}, f"{target} answered {by_status}"
        assert by_status[200] > 0, f"{target} was never reached during load"

    # Accounting: block policy, ample capacity — nothing dropped, all fed.
    total_tuples = CLIENT_COUNT * ROUNDS * FRAMES_PER_ROUND
    assert result["edge"]["tuples_in"] == total_tuples
    assert result["edge"]["tuples_accepted"] == total_tuples
    assert result["edge"]["tuples_dropped"] == 0
    # All 1000 clients (plus the per-tenant admins) were attached at once
    # when the load phase started — this was a concurrency test, not a ramp.
    assert result["clients_connected"] >= CLIENT_COUNT

    latencies_ms = np.asarray(result["latencies"]) * 1000.0
    throughput = total_tuples / result["load_seconds"]
    row = {
        "clients": CLIENT_COUNT,
        "tenants": TENANT_COUNT,
        "tuples": total_tuples,
        "tuples_per_s": round(throughput, 1),
        "ack_p50_ms": round(float(np.percentile(latencies_ms, 50)), 2),
        "ack_p95_ms": round(float(np.percentile(latencies_ms, 95)), 2),
        "ack_p99_ms": round(float(np.percentile(latencies_ms, 99)), 2),
        "loop_lag_max_ms": round(result["loop_lag_max"] * 1000.0, 2),
    }
    print_table("B6: gateway load (1000 websocket clients)", [row])

    record_benchmark(
        "gateway_load",
        {
            "config": {
                "clients": CLIENT_COUNT,
                "tenants": TENANT_COUNT,
                "players_per_tenant": PLAYERS_PER_TENANT,
                "rounds": ROUNDS,
                "frames_per_round": FRAMES_PER_ROUND,
                "queries": sorted(VOCABULARY),
                "policy": "block",
            },
            "row": row,
            "clients_connected_at_load_start": result["clients_connected"],
            "latency_ms": {
                "p50": row["ack_p50_ms"],
                "p95": row["ack_p95_ms"],
                "p99": row["ack_p99_ms"],
                "max": round(float(latencies_ms.max()), 2),
            },
            "loop_lag_seconds": {
                "ewma": result["loop_lag_ewma"],
                "max": result["loop_lag_max"],
            },
            "http_during_load": {
                target: dict(by_status)
                for target, by_status in result["http_counters"].items()
            },
            "detections_per_tenant": {
                tenant: len(states)
                for tenant, states in sorted(result["gateway_detections"].items())
            },
            "byte_identical_to_direct_feed": True,
        },
    )

    # The pytest-benchmark kernel: one full client lifecycle against a
    # fresh single-tenant server — the per-connection overhead number.
    async def one_client_roundtrip():
        server = GatewayServer(GatewayConfig(port=0))
        await server.start()
        try:
            client = await GatewayClient.connect("127.0.0.1", server.port)
            await client.hello("kernel")
            await client.deploy(HIGH)
            await client.send_tuples(player_frames(1), stream="kinect_t")
            await client.drain()
            await client.bye()
        finally:
            await server.close()

    benchmark(lambda: asyncio.run(one_client_roundtrip()))
