"""F1 — Fig. 1: the generated ``swipe_right`` query and its detection.

Reproduces the paper's running example: a right-hand swipe learned from a
few samples yields a nested sequence query over three (±1) pose windows at
roughly (0, 150, -120) → (400, 150, -420) → (800, 150, -120) relative to the
torso, and that query detects fresh performances of the gesture on the
sensor stream.

The benchmark kernel times the full learn-and-generate pipeline (sampling,
merging, query generation) for one gesture.
"""

import pytest

from benchmarks.conftest import make_simulator, print_table
from repro.core import GestureLearner, LearnerConfig
from repro.detection import GestureDetector
from repro.kinect import SwipeTrajectory


def _train_samples(count=4, seed=31):
    simulator = make_simulator(seed=seed)
    swipe = SwipeTrajectory("right")
    return [
        simulator.perform_variation(swipe, hold_start_s=0.3, hold_end_s=0.3)
        for _ in range(count)
    ]


def test_fig1_swipe_right_query(benchmark, query_generator):
    samples = _train_samples()

    def learn_and_generate():
        learner = GestureLearner("swipe_right", config=LearnerConfig(joints=("rhand",)))
        description = learner.learn(samples)
        return description, query_generator.generate(description)

    description, query = benchmark(learn_and_generate)

    rows = []
    for pose in description.poses:
        center, width = pose.window.center, pose.window.width
        rows.append(
            {
                "pose": pose.sequence_index,
                "center (x, y, z)": (
                    f"({center['rhand_x']:7.1f}, {center['rhand_y']:6.1f}, "
                    f"{center['rhand_z']:7.1f})"
                ),
                "width (x, y, z)": (
                    f"({width['rhand_x']:5.1f}, {width['rhand_y']:5.1f}, "
                    f"{width['rhand_z']:5.1f})"
                ),
                "support": pose.support,
            }
        )
    print_table("F1: learned swipe_right pose windows (paper Fig. 1)", rows)
    print("\nGenerated query:\n")
    print(query.to_query())

    # Deploy and verify detection on unseen performances.
    detector = GestureDetector()
    detector.deploy(query)
    test_simulator = make_simulator(seed=91)
    hits = 0
    trials = 5
    for _ in range(trials):
        detector.clear()
        detector.process_frames(
            test_simulator.perform_variation(
                SwipeTrajectory("right"), hold_start_s=0.2, hold_end_s=0.2
            )
        )
        hits += int(any(event.gesture == "swipe_right" for event in detector.events))
    print_table(
        "F1: end-to-end detection",
        [{"performances": trials, "detected": hits, "detection rate": f"{hits / trials:.0%}"}],
    )

    # Shape assertions: structure and geometry of the paper's example.
    assert 3 <= description.pose_count <= 6
    assert description.poses[0].window.center["rhand_x"] == pytest.approx(0.0, abs=120.0)
    assert description.poses[-1].window.center["rhand_x"] == pytest.approx(800.0, abs=150.0)
    assert "select first consume all" in query.to_query()
    assert hits >= 4
