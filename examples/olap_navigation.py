#!/usr/bin/env python3
"""Gesture-controlled OLAP navigation (the paper's Data3-style demo).

A whole gesture vocabulary is learned from simulated samples, deployed on
the CEP engine, and bound to navigation operators of an in-memory OLAP
cube: swipe right/left drill down / roll up, a push pivots, a raised hand
resets the view.  The script then simulates an "analysis session" — a user
standing in front of the camera performing gestures — and prints the cube
view after every detected command.

Run with::

    python examples/olap_navigation.py
"""

import numpy as np

from repro.apps import CubeNavigator, GestureBindings, olap_demo_cube
from repro.core import GestureLearner, LearnerConfig
from repro.detection import GestureDetector
from repro.kinect import (
    GaussianNoise,
    KinectSimulator,
    PushTrajectory,
    RaiseHandTrajectory,
    SwipeTrajectory,
    user_by_name,
)
from repro.streams import SimulatedClock

#: Gesture name -> (trajectory, bound cube operation name).
GESTURE_SET = {
    "swipe_right": SwipeTrajectory(direction="right"),
    "swipe_left": SwipeTrajectory(direction="left", hand="lhand"),
    "push": PushTrajectory(),
    "raise_hand": RaiseHandTrajectory(),
}


def learn_vocabulary(detector: GestureDetector) -> None:
    """Learn every gesture of the vocabulary from four samples each."""
    trainer = KinectSimulator(
        user=user_by_name("adult"),
        clock=SimulatedClock(),
        noise=GaussianNoise(sigma_mm=5.0, rng=np.random.default_rng(10)),
        rng=np.random.default_rng(11),
    )
    for name, trajectory in GESTURE_SET.items():
        learner = GestureLearner(name, config=LearnerConfig())
        for _ in range(4):
            learner.add_sample(
                trainer.perform_variation(trajectory, hold_start_s=0.3, hold_end_s=0.3)
            )
        description = learner.description()
        detector.deploy(description)
        print(f"  learned '{name}': {description.pose_count} poses, "
              f"joints {description.joints}")


def main() -> None:
    print("=== learning the gesture vocabulary ===")
    detector = GestureDetector()
    learn_vocabulary(detector)

    print("\n=== binding gestures to OLAP operations ===")
    navigator = CubeNavigator(olap_demo_cube(), "time", "geography")
    bindings = GestureBindings(detector)
    bindings.bind("swipe_right", navigator.drill_down, name="drill_down")
    bindings.bind("swipe_left", navigator.roll_up, name="roll_up")
    bindings.bind("push", navigator.pivot, name="pivot")
    bindings.bind("raise_hand", navigator.reset, name="reset")
    for gesture in bindings.bound_gestures():
        print(f"  {gesture:12s} -> {bindings.action_name(gesture)}")

    print("\n=== analysis session ===")
    print(f"initial view: {navigator.describe()}")
    session = ["swipe_right", "push", "swipe_right", "swipe_left", "raise_hand"]
    user = KinectSimulator(
        user=user_by_name("tall_adult"),
        clock=SimulatedClock(),
        noise=GaussianNoise(sigma_mm=6.0, rng=np.random.default_rng(20)),
        rng=np.random.default_rng(21),
        position=(200.0, 0.0, 2500.0),
    )
    for gesture in session:
        before = len(bindings.log)
        detector.process_frames(
            user.perform_variation(GESTURE_SET[gesture], hold_start_s=0.3, hold_end_s=0.3)
        )
        user.idle_frames(0.6)
        executed = bindings.log.entries[before:]
        actions = ", ".join(entry.action for entry in executed) or "(not detected)"
        print(f"  performed {gesture:12s} -> {actions:12s} | view: {navigator.describe()}")

    print("\n=== session summary ===")
    print(f"  commands performed : {len(session)}")
    print(f"  actions executed   : {len(bindings.log.successes())}")
    print(f"  failed operations  : {len(bindings.log.failures())}")
    top = sorted(navigator.view().items(), key=lambda item: -item[1])[:3]
    print("  top cells in the current view:")
    for key, value in top:
        print(f"    {key}: {value:,.0f}")


if __name__ == "__main__":
    main()
