#!/usr/bin/env python3
"""Gesture-controlled OLAP navigation (the paper's Data3-style demo).

A whole gesture vocabulary is learned from simulated samples through one
:class:`~repro.api.GestureSession` (``session.deploy_vocabulary`` with a
name → samples manifest), and bound to navigation operators of an
in-memory OLAP cube: swipe right/left drill down / roll up, a push pivots,
a raised hand resets the view.  The script then simulates an "analysis
session" — a user standing in front of the camera performing gestures —
and prints the cube view after every detected command.

Run with::

    python examples/olap_navigation.py
"""

import numpy as np

from repro.api import F, GestureSession, Q
from repro.apps import CubeNavigator, GestureBindings, olap_demo_cube
from repro.kinect import (
    GaussianNoise,
    KinectSimulator,
    PushTrajectory,
    RaiseHandTrajectory,
    SwipeTrajectory,
    user_by_name,
)
from repro.streams import SimulatedClock

#: Gesture name -> trajectory performed for its training samples.
GESTURE_SET = {
    "swipe_right": SwipeTrajectory(direction="right"),
    "swipe_left": SwipeTrajectory(direction="left", hand="lhand"),
    "push": PushTrajectory(),
    "raise_hand": RaiseHandTrajectory(),
}

#: The reset gesture is *hand-written* with the fluent DSL instead of being
#: learned — the "manual fine tuning" path the paper mentions.  Pose 1: the
#: right hand hangs near the hip; pose 2: it rises above the head.
RAISE_HAND_QUERY = (
    Q.stream("kinect_t")
    .where((abs(F("rhand_y") + 120) < 200) & (F("rhand_x") > 0))
    .then(F("rhand_y") > 550)
    .within(2.0)
    .select("first")
    .consume("all")
    .output("raise_hand")
)


def training_manifest() -> dict:
    """The deployed vocabulary: three learned gestures + one DSL query."""
    trainer = KinectSimulator(
        user=user_by_name("adult"),
        clock=SimulatedClock(),
        noise=GaussianNoise(sigma_mm=5.0, rng=np.random.default_rng(10)),
        rng=np.random.default_rng(11),
    )
    manifest: dict = {
        name: [
            trainer.perform_variation(trajectory, hold_start_s=0.3, hold_end_s=0.3)
            for _ in range(4)
        ]
        for name, trajectory in GESTURE_SET.items()
        if name != "raise_hand"
    }
    manifest["raise_hand"] = RAISE_HAND_QUERY
    return manifest


def main() -> None:
    with GestureSession() as session:
        print("=== learning the gesture vocabulary ===")
        session.deploy_vocabulary(training_manifest())
        for name in session.deployed_gestures():
            if session.database.has_gesture(name):
                description = session.database.load_gesture(name).description
                print(f"  learned '{name}': {description.pose_count} poses, "
                      f"joints {description.joints}")
            else:
                print(f"  hand-written '{name}' (fluent DSL)")

        print("\n=== binding gestures to OLAP operations ===")
        navigator = CubeNavigator(olap_demo_cube(), "time", "geography")
        bindings = GestureBindings(session)
        bindings.bind("swipe_right", navigator.drill_down, name="drill_down")
        bindings.bind("swipe_left", navigator.roll_up, name="roll_up")
        bindings.bind("push", navigator.pivot, name="pivot")
        bindings.bind("raise_hand", navigator.reset, name="reset")
        for gesture in bindings.bound_gestures():
            print(f"  {gesture:12s} -> {bindings.action_name(gesture)}")

        print("\n=== analysis session ===")
        print(f"initial view: {navigator.describe()}")
        commands = ["swipe_right", "push", "swipe_right", "swipe_left", "raise_hand"]
        user = KinectSimulator(
            user=user_by_name("tall_adult"),
            clock=SimulatedClock(),
            noise=GaussianNoise(sigma_mm=6.0, rng=np.random.default_rng(20)),
            rng=np.random.default_rng(21),
            position=(200.0, 0.0, 2500.0),
        )
        for gesture in commands:
            before = len(bindings.log)
            session.feed(
                user.perform_variation(GESTURE_SET[gesture], hold_start_s=0.3, hold_end_s=0.3)
            )
            user.idle_frames(0.6)
            executed = bindings.log.entries[before:]
            actions = ", ".join(entry.action for entry in executed) or "(not detected)"
            print(f"  performed {gesture:12s} -> {actions:12s} | view: {navigator.describe()}")

        print("\n=== session summary ===")
        print(f"  commands performed : {len(commands)}")
        print(f"  actions executed   : {len(bindings.log.successes())}")
        print(f"  failed operations  : {len(bindings.log.failures())}")
        top = sorted(navigator.view().items(), key=lambda item: -item[1])[:3]
        print("  top cells in the current view:")
        for key, value in top:
            print(f"    {key}: {value:,.0f}")


if __name__ == "__main__":
    main()
