#!/usr/bin/env python3
"""The interactive learning workflow of the paper (Fig. 2), end to end.

This example drives the interactive workflow through a
:class:`~repro.api.GestureSession` the way the demo at EDBT drove it —
through the sensor stream only:

1. the user performs the *wave* control gesture, which arms the recording
   controller,
2. they move to the start pose, hold still, perform their new gesture
   (a circle), and hold still again — that becomes one training sample,
3. after three samples the gesture is finalised: the learner merges the
   samples, generates the CEP query, stores everything in the gesture
   database and deploys the query,
4. the testing phase begins: new performances are detected live, and the
   partial-match feedback shows how far a movement got when it is *not*
   detected,
5. finally the learned gesture is bound to an OLAP navigation operation.

Run with::

    python examples/custom_gesture_workflow.py
"""

import numpy as np

from repro.api import F, GestureSession, Q, SessionConfig
from repro.apps import CubeNavigator, GestureBindings, olap_demo_cube
from repro.kinect import CircleTrajectory, GaussianNoise, KinectSimulator, WaveTrajectory
from repro.streams import SimulatedClock


def main() -> None:
    config = SessionConfig(deploy_control_gestures=True)
    simulator = KinectSimulator(
        clock=SimulatedClock(),
        noise=GaussianNoise(sigma_mm=5.0, rng=np.random.default_rng(1)),
        rng=np.random.default_rng(2),
    )

    circle = CircleTrajectory()
    wave = WaveTrajectory()

    with GestureSession(config) as session:
        print("=== collecting phase ===")
        session.begin_gesture("circle")
        for attempt in range(3):
            # Wave -> the control query fires and arms the recording controller.
            session.feed(simulator.perform(wave, hold_start_s=0.2, hold_end_s=0.2))
            # Move to the start pose, hold, perform the circle, hold again.
            session.feed(
                simulator.perform_variation(circle, hold_start_s=1.0, hold_end_s=1.0)
            )
            print(f"  after attempt {attempt + 1}: "
                  f"{session.workflow.sample_count} sample(s) recorded")

        print("\n=== finalising ===")
        description = session.finalize()
        record = session.database.load_gesture("circle")
        print(f"  learned '{description.name}': {description.pose_count} poses from "
              f"{description.sample_count} samples")
        print(f"  stored query text ({len(record.query_text or '')} characters) "
              f"in the gesture database")

        print("\n=== testing phase ===")
        # A complete performance is detected ...
        session.feed(
            simulator.perform_variation(circle, hold_start_s=0.3, hold_end_s=0.3)
        )
        print(f"  detections so far: {[event.gesture for event in session.events]}")

        # ... an aborted performance is not, but the feedback explains how far it got.
        frames = simulator.perform_variation(circle, hold_start_s=0.3)
        session.feed(frames[: len(frames) // 3])
        feedback = session.feedback()
        print(f"  aborted movement feedback: {feedback.describe()}")
        session.accept()

        print("\n=== application binding ===")
        navigator = CubeNavigator(olap_demo_cube(), "time", "geography")
        bindings = GestureBindings(session)
        bindings.bind("circle", navigator.drill_down, name="drill_down")
        # Learned and hand-written gestures coexist in one vocabulary: the
        # reset command is a fluent-DSL query, no training required.
        session.deploy(
            Q.stream("kinect_t")
            .where((abs(F("rhand_y") + 120) < 200) & (F("rhand_x") > 0))
            .then(F("rhand_y") > 550)
            .within(2.0)
            .named("raise_hand")
        )
        bindings.bind("raise_hand", navigator.reset, name="reset")
        session.feed(
            simulator.perform_variation(circle, hold_start_s=0.3, hold_end_s=0.3)
        )
        print(f"  OLAP view after gesture: {navigator.describe()}")
        print(f"  action log: {[entry.action for entry in bindings.log.entries]}")

        print("\nWorkflow messages:")
        for message in session.messages:
            print(f"  - {message}")


if __name__ == "__main__":
    main()
