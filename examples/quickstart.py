#!/usr/bin/env python3
"""Quickstart: learn a gesture from a few samples and detect it.

This is the smallest end-to-end tour of the library, built entirely on the
public API (:mod:`repro.api`): one :class:`~repro.api.GestureSession` owns
the CEP engine, the ``kinect_t`` transformation view, the detector and the
gesture database.

1. simulate a user performing the ``swipe_right`` gesture a few times in
   front of a (simulated) Kinect camera,
2. learn the gesture's event pattern with the distance-based sampling +
   window-merging pipeline of the paper (``session.learn``),
3. print the generated CEP query (the paper's Fig. 1 artefact),
4. deploy it and detect fresh performances — including ones by a
   *different* user standing somewhere else,
5. deploy a second, *hand-written* gesture through the fluent query DSL
   (``Q`` / ``F``) — the "manual fine tuning" path the paper mentions.

Run with::

    python examples/quickstart.py
"""

from repro.api import F, GestureSession, Q, SessionConfig
from repro.cep import parse_query
from repro.core import LearnerConfig
from repro.detection import WorkflowConfig
from repro.kinect import KinectSimulator, SwipeTrajectory, user_by_name
from repro.streams import SimulatedClock


def main() -> None:
    swipe = SwipeTrajectory(direction="right")
    trainer = KinectSimulator(user=user_by_name("adult"), clock=SimulatedClock())

    config = SessionConfig(
        workflow=WorkflowConfig(learner=LearnerConfig(joints=("rhand",)))
    )
    with GestureSession(config) as session:
        # ---------------------------------------------------------------- learn
        print("Recording 4 training samples of 'swipe_right' ...")
        description = session.learn(
            "swipe_right",
            (
                trainer.perform_variation(swipe, hold_start_s=0.3, hold_end_s=0.3)
                for _ in range(4)
            ),
            deploy=True,
        )
        print(f"\nLearned description: {description.pose_count} poses, "
              f"{description.predicate_count()} range predicates, "
              f"joints={description.joints}")
        for pose in description.poses:
            center = pose.window.center
            print(f"  pose {pose.sequence_index}: rhand at "
                  f"({center['rhand_x']:.0f}, {center['rhand_y']:.0f}, "
                  f"{center['rhand_z']:.0f}) "
                  f"± ({pose.window.width['rhand_x']:.0f}, "
                  f"{pose.window.width['rhand_y']:.0f}, "
                  f"{pose.window.width['rhand_z']:.0f}) mm")

        # The generated query text is stored alongside the gesture; it is the
        # paper's Fig. 1 artefact and round-trips through the parser.
        query_text = session.database.load_gesture("swipe_right").query_text
        print("\nGenerated CEP query (paper Fig. 1 format):\n")
        print(query_text)
        # The text form is canonical: parsing and re-rendering is a no-op.
        assert parse_query(query_text).to_query() == query_text

        # --------------------------------------------- a hand-written DSL query
        # The same dialect, written fluently: two poses of the right hand, low
        # then high, within a second — no learning involved.
        raise_hand = (
            Q.stream("kinect_t")
            .where((abs(F("rhand_y") - 0) < 120) & (F("rhand_x") > -200))
            .then(abs(F("rhand_y") - 450) < 150)
            .within(1.5)
            .select("first")
            .consume("all")
            .named("raise_hand_manual")
        )
        session.deploy(raise_hand)
        print("Hand-written DSL query:\n")
        print(raise_hand.to_query())

        # ------------------------------------------------------------------ detect
        print("\nTesting with a different user (child) standing elsewhere ...")
        tester = KinectSimulator(
            user=user_by_name("child"),
            clock=SimulatedClock(),
            position=(400.0, 0.0, 2600.0),
        )
        for _ in range(5):
            session.feed(
                tester.perform_variation(swipe, hold_start_s=0.2, hold_end_s=0.2)
            )
            tester.idle_frames(0.5)
        swipes = [event for event in session.events if event.gesture == "swipe_right"]
        print(f"Detected {len(swipes)}/5 performances.")
        for event in swipes:
            print(f"  {event.gesture} at t={event.timestamp:.2f}s "
                  f"(duration {event.duration:.2f}s)")


if __name__ == "__main__":
    main()
