#!/usr/bin/env python3
"""Quickstart: learn a gesture from a few samples and detect it.

This is the smallest end-to-end tour of the library:

1. simulate a user performing the ``swipe_right`` gesture a few times in
   front of a (simulated) Kinect camera,
2. learn the gesture's event pattern with the distance-based sampling +
   window-merging pipeline of the paper,
3. print the generated CEP query (the paper's Fig. 1 artefact),
4. deploy it on the CEP engine and detect fresh performances — including
   ones by a *different* user standing somewhere else.

Run with::

    python examples/quickstart.py
"""

from repro.core import GestureLearner, LearnerConfig, QueryGenerator
from repro.detection import GestureDetector
from repro.kinect import KinectSimulator, SwipeTrajectory, user_by_name
from repro.streams import SimulatedClock


def main() -> None:
    swipe = SwipeTrajectory(direction="right")

    # ------------------------------------------------------------------ learn
    trainer = KinectSimulator(user=user_by_name("adult"), clock=SimulatedClock())
    learner = GestureLearner("swipe_right", config=LearnerConfig(joints=("rhand",)))
    print("Recording 4 training samples of 'swipe_right' ...")
    for index in range(4):
        frames = trainer.perform_variation(swipe, hold_start_s=0.3, hold_end_s=0.3)
        result = learner.add_sample(frames)
        print(f"  sample {index + 1}: {len(frames)} frames, "
              f"deviation from learned windows: {result.deviation:.2f}")

    description = learner.description()
    print(f"\nLearned description: {description.pose_count} poses, "
          f"{description.predicate_count()} range predicates, joints={description.joints}")
    for pose in description.poses:
        center = pose.window.center
        print(f"  pose {pose.sequence_index}: rhand at "
              f"({center['rhand_x']:.0f}, {center['rhand_y']:.0f}, {center['rhand_z']:.0f}) "
              f"± ({pose.window.width['rhand_x']:.0f}, "
              f"{pose.window.width['rhand_y']:.0f}, {pose.window.width['rhand_z']:.0f}) mm")

    # --------------------------------------------------------- generate query
    query = QueryGenerator().generate(description)
    print("\nGenerated CEP query (paper Fig. 1 format):\n")
    print(query.to_query())

    # ------------------------------------------------------------------ detect
    detector = GestureDetector()
    detector.deploy(query)

    print("\nTesting with a different user (child) standing elsewhere ...")
    tester = KinectSimulator(
        user=user_by_name("child"), clock=SimulatedClock(), position=(400.0, 0.0, 2600.0)
    )
    detections = 0
    for _ in range(5):
        detector.process_frames(
            tester.perform_variation(swipe, hold_start_s=0.2, hold_end_s=0.2)
        )
        tester.idle_frames(0.5)
    detections = len(detector.events)
    print(f"Detected {detections}/5 performances.")
    for event in detector.events:
        print(f"  {event.gesture} at t={event.timestamp:.2f}s "
              f"(duration {event.duration:.2f}s)")


if __name__ == "__main__":
    main()
