#!/usr/bin/env python3
"""Gesture-controlled graph navigation — the "Kevin Bacon game" demo.

Mirrors the paper's companion demo [1]: the user explores an actor
collaboration graph with gestures.  Swiping cycles through the current
node's neighbours, a push follows the highlighted edge, raising the hand
steps back.  The goal of the game: reach Kevin Bacon from a randomly chosen
start actor in as few steps as possible.

The whole stack runs behind one :class:`~repro.api.GestureSession`: the
control vocabulary is learned from a name → samples manifest, and the
gesture bindings attach straight to the session.  The example also shows
the runtime re-binding the paper emphasises: halfway through the session
the swipe gesture is re-bound from "highlight next" to "follow the
shortest path", turning the manual game into an assisted one.

Run with::

    python examples/graph_navigation.py
"""

import numpy as np

from repro.api import F, GestureSession, Q
from repro.apps import GestureBindings, GraphNavigator, collaboration_demo_graph
from repro.kinect import (
    GaussianNoise,
    KinectSimulator,
    PushTrajectory,
    RaiseHandTrajectory,
    SwipeTrajectory,
    user_by_name,
)
from repro.streams import SimulatedClock

GESTURES = {
    "swipe_right": SwipeTrajectory(direction="right"),
    "push": PushTrajectory(),
    "raise_hand": RaiseHandTrajectory(),
}


def training_manifest() -> dict:
    """Two learned gestures plus a hand-written DSL query for 'back'."""
    trainer = KinectSimulator(
        user=user_by_name("adult"),
        clock=SimulatedClock(),
        noise=GaussianNoise(sigma_mm=5.0, rng=np.random.default_rng(30)),
        rng=np.random.default_rng(31),
    )
    manifest: dict = {
        name: [
            trainer.perform_variation(trajectory, hold_start_s=0.3, hold_end_s=0.3)
            for _ in range(4)
        ]
        for name, trajectory in GESTURES.items()
        if name != "raise_hand"
    }
    # Raising the hand steps back; written fluently instead of learned.
    manifest["raise_hand"] = (
        Q.stream("kinect_t")
        .where((abs(F("rhand_y") + 120) < 200) & (F("rhand_x") > 0))
        .then(F("rhand_y") > 550)
        .within(2.0)
        .output("raise_hand")
    )
    return manifest


def perform(session, simulator, gesture) -> None:
    session.feed(
        simulator.perform_variation(GESTURES[gesture], hold_start_s=0.3, hold_end_s=0.3)
    )
    simulator.idle_frames(0.6)


def main() -> None:
    graph = collaboration_demo_graph()
    start, target = "sylvester_stallone", "kevin_bacon"
    navigator = GraphNavigator(graph, start)
    navigator.set_target(target)
    print(f"=== Kevin Bacon game: from '{start}' to '{target}' ===")
    print(f"shortest possible path: {' -> '.join(graph.shortest_path(start, target))}\n")

    with GestureSession() as session:
        print("=== learning the control gestures ===")
        for name in session.deploy_vocabulary(training_manifest()):
            print(f"  learned '{name}'")

        bindings = GestureBindings(session)
        bindings.bind("swipe_right", navigator.highlight_next, name="highlight_next")
        bindings.bind("push", navigator.follow, name="follow")
        bindings.bind("raise_hand", navigator.back, name="back")

        player = KinectSimulator(
            user=user_by_name("adult"),
            clock=SimulatedClock(),
            noise=GaussianNoise(sigma_mm=6.0, rng=np.random.default_rng(40)),
            rng=np.random.default_rng(41),
        )

        print("\n=== manual play ===")
        print(f"  {navigator.describe()}")
        for gesture in ("swipe_right", "push", "swipe_right", "push"):
            perform(session, player, gesture)
            print(f"  performed {gesture:12s} -> {navigator.describe()}")

        print("\n=== re-binding swipe to 'assisted path' at runtime ===")
        bindings.rebind("swipe_right", navigator.follow_path, name="follow_path")
        steps = 0
        while navigator.current != target and steps < 10:
            perform(session, player, "swipe_right")
            steps += 1
            print(f"  assisted step {steps}: now at '{navigator.current}'")

        print("\n=== result ===")
        reached = navigator.current == target
        print(f"  reached {target}: {reached}")
        print(f"  gesture-triggered actions: {len(bindings.log.successes())} succeeded, "
              f"{len(bindings.log.failures())} failed")
        print(f"  navigation history: "
              f"{' -> '.join([start] + navigator.history[1:] + [navigator.current])}")


if __name__ == "__main__":
    main()
