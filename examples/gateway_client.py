#!/usr/bin/env python3
"""Gateway round trip: serve, attach two tenants, stream, get pushed events.

The gateway (``docs/gateway.md``) puts a websocket wire protocol in front
of the session pool: one ``GestureSession`` per tenant, edge admission
control, a detections push channel and ``/healthz`` + ``/metrics`` over
plain HTTP.  This example runs the whole loop in one process:

1. start a ``GatewayServer`` on an ephemeral loopback port,
2. attach two tenants ("arcade" and "lab") and deploy each a different
   vocabulary over the wire,
3. stream hand-height tuples from a subscribed and an unsubscribed
   connection, receiving server-push ``event`` frames as they detect,
4. show tenant isolation (the same tuples detect differently per tenant)
   and scrape ``/metrics``.

Run with::

    python examples/gateway_client.py

Against a standalone server (``python -m repro.gateway --port 8876``)
the same ``GatewayClient`` calls work unchanged — drop the embedded
server and connect to its port.
"""

import asyncio

from repro.gateway import GatewayClient, GatewayConfig, GatewayServer

HIGH = 'SELECT "high" MATCHING kinect_t(rhand_y > 450);'
LOW = 'SELECT "low" MATCHING kinect_t(rhand_y < 100);'


def hand_wave(player: int, heights) -> list:
    return [
        {"ts": (i + 1) * 0.033, "player": player, "rhand_y": float(h)}
        for i, h in enumerate(heights)
    ]


async def fetch(host: str, port: int, target: str) -> str:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {target} HTTP/1.1\r\nHost: example\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    return raw.decode("utf-8", "replace")


async def main() -> None:
    async with GatewayServer(GatewayConfig(port=0)) as server:
        print(f"Gateway listening on 127.0.0.1:{server.port}")

        # Tenant "arcade": a subscribed connection — detections are pushed.
        arcade = await GatewayClient.connect("127.0.0.1", server.port)
        await arcade.hello("arcade", subscribe=True)
        deployed = await arcade.deploy_vocabulary({"high": HIGH})
        print(f"arcade deployed: {deployed}")

        # Tenant "lab": same tuples, different vocabulary, no push channel.
        lab = await GatewayClient.connect("127.0.0.1", server.port)
        await lab.hello("lab")
        await lab.deploy(LOW)

        waves = hand_wave(player=7, heights=[500, 480, 300, 90, 60, 520])
        ack = await arcade.send_tuples(waves, stream="kinect_t")
        await lab.send_tuples(waves, stream="kinect_t")
        print(f"arcade ack: accepted={ack['accepted']} dropped={ack['dropped']}")

        # The subscribed connection receives each detection as it happens.
        for _ in range(3):
            event = await arcade.next_event()
            print(
                f"  pushed event: {event['gesture']!r} by player "
                f"{event['player']} at t={event['timestamp']:.2f}s"
            )

        # Tenant isolation: identical tuples, disjoint detections.
        await lab.drain()
        arcade_hits = {d["output"] for d in await arcade.detections()}
        lab_hits = {d["output"] for d in await lab.detections()}
        print(f"arcade detected {sorted(arcade_hits)}, lab detected {sorted(lab_hits)}")
        assert arcade_hits == {"high"} and lab_hits == {"low"}

        # The same server answers plain HTTP for health and metrics.
        health = await fetch("127.0.0.1", server.port, "/healthz")
        print(f"healthz: {health.splitlines()[-1]}")
        metrics = await fetch("127.0.0.1", server.port, "/metrics")
        for line in metrics.splitlines():
            if line.startswith("repro_gateway_tuples_"):
                print(f"  {line}")

        await arcade.bye()
        await lab.bye()


if __name__ == "__main__":
    asyncio.run(main())
