#!/usr/bin/env python3
"""Multi-user detection: two simulated players, one engine, per-player events.

The paper's deployment is a shared sensor space — one Kinect stream carries
every tracked player, and each frame is stamped with its ``player`` id.
The detection path partitions all per-stream state by that id:

* the ``kinect_t`` view smooths each player's forearm scale separately (a
  child and a tall adult must not blend scale factors), and
* every deployed query keys its NFA run table by player, so one player's
  half-finished gesture can never be completed by another player's frames.

This example learns a swipe from one user, then replays an *interleaved*
recording of a child and a tall adult performing it concurrently.  The
handlers receive one event per performance, attributed to the right player.

Run with::

    python examples/multiuser_detection.py
"""

from repro.core import GestureLearner, LearnerConfig
from repro.detection import GestureDetector
from repro.kinect import (
    KinectSimulator,
    SwipeTrajectory,
    generate_multiuser_recording,
    user_by_name,
)
from repro.streams import SimulatedClock


def main() -> None:
    swipe = SwipeTrajectory(direction="right")

    # ------------------------------------------------------------------ learn
    trainer = KinectSimulator(user=user_by_name("adult"), clock=SimulatedClock())
    learner = GestureLearner("swipe_right", config=LearnerConfig(joints=("rhand",)))
    print("Learning 'swipe_right' from 4 samples of one adult user ...")
    for _ in range(4):
        learner.add_sample(trainer.perform_variation(swipe, hold_start_s=0.3, hold_end_s=0.3))

    detector = GestureDetector()
    detector.deploy(learner.description())

    # --------------------------------------------- a shared, interleaved scene
    recording = generate_multiuser_recording(
        {"swipe_right": swipe},
        users=[user_by_name("child"), user_by_name("tall_adult")],
        gestures_per_user=2,
        seed=11,
    )
    names = {
        player_id: recording.players[player_id].user
        for player_id in recording.player_ids
    }
    print(f"\nReplaying {len(recording)} interleaved frames of "
          f"{len(names)} concurrent players: {names}")

    detector.on_gesture(
        "swipe_right",
        lambda event: print(
            f"  player {event.player} ({names.get(event.player, '?')}) swiped "
            f"at t={event.timestamp:.2f}s (duration {event.duration:.2f}s)"
        ),
    )
    detector.process_frames(recording.frames)

    per_player = {
        player_id: sum(1 for e in detector.events if e.player == player_id)
        for player_id in recording.player_ids
    }
    print(f"\nDetections per player: {per_player}")
    assert all(count >= 1 for count in per_player.values()), (
        "every player's swipes should be detected despite the interleaving"
    )


if __name__ == "__main__":
    main()
