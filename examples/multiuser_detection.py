#!/usr/bin/env python3
"""Multi-user detection: two simulated players, one session, per-player events.

The paper's deployment is a shared sensor space — one Kinect stream carries
every tracked player, and each frame is stamped with its ``player`` id.
The detection path partitions all per-stream state by that id:

* the ``kinect_t`` view smooths each player's forearm scale separately (a
  child and a tall adult must not blend scale factors), and
* every deployed query keys its NFA run table by player, so one player's
  half-finished gesture can never be completed by another player's frames.

This example learns a swipe from one user through a
:class:`~repro.api.GestureSession`, then replays an *interleaved* recording
of a child and a tall adult performing it concurrently.  The handlers
receive one event per performance, attributed to the right player, and
``session.detections(partition=…)`` slices the result per player.

Run with::

    python examples/multiuser_detection.py
"""

from repro.api import F, GestureSession, Q, SessionConfig
from repro.core import LearnerConfig
from repro.detection import WorkflowConfig
from repro.kinect import (
    KinectSimulator,
    SwipeTrajectory,
    generate_multiuser_recording,
    user_by_name,
)
from repro.streams import SimulatedClock


def main() -> None:
    swipe = SwipeTrajectory(direction="right")
    trainer = KinectSimulator(user=user_by_name("adult"), clock=SimulatedClock())

    config = SessionConfig(
        workflow=WorkflowConfig(learner=LearnerConfig(joints=("rhand",)))
    )
    with GestureSession(config) as session:
        # ------------------------------------------------------------------ learn
        print("Learning 'swipe_right' from 4 samples of one adult user ...")
        session.learn(
            "swipe_right",
            (
                trainer.perform_variation(swipe, hold_start_s=0.3, hold_end_s=0.3)
                for _ in range(4)
            ),
            deploy=True,
        )

        # A coarse hand-written swipe (fluent DSL) runs alongside the learned
        # one; its run table is partitioned per player exactly the same way.
        session.deploy(
            Q.stream("kinect_t")
            .where(F("rhand_x") < 100)
            .then(F("rhand_x") > 700)
            .within(2.0)
            .named("swipe_coarse")
        )

        # --------------------------------------------- a shared, interleaved scene
        recording = generate_multiuser_recording(
            {"swipe_right": swipe},
            users=[user_by_name("child"), user_by_name("tall_adult")],
            gestures_per_user=2,
            seed=11,
        )
        names = {
            player_id: recording.players[player_id].user
            for player_id in recording.player_ids
        }
        print(f"\nReplaying {len(recording)} interleaved frames of "
              f"{len(names)} concurrent players: {names}")

        session.on(
            "swipe_right",
            lambda event: print(
                f"  player {event.player} ({names.get(event.player, '?')}) swiped "
                f"at t={event.timestamp:.2f}s (duration {event.duration:.2f}s)"
            ),
        )
        session.feed(recording.frames)

        per_player = {
            player_id: len(session.detections("swipe_right", partition=player_id))
            for player_id in recording.player_ids
        }
        coarse = {
            player_id: len(session.detections("swipe_coarse", partition=player_id))
            for player_id in recording.player_ids
        }
        print(f"\nLearned-query detections per player : {per_player}")
        print(f"Hand-written-query detections per player: {coarse}")
        assert all(count >= 1 for count in per_player.values()), (
            "every player's swipes should be detected despite the interleaving"
        )


if __name__ == "__main__":
    main()
