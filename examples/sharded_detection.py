#!/usr/bin/env python3
"""Sharded detection: 8 concurrent players on a 4-shard session.

One Kinect stream carrying many players is embarrassingly parallel: the
matchers keep all their state per player (PR 2), so the session can route
every frame to one of N worker shards by a stable hash of its ``player``
id and run N engines side by side.  ``GestureSession(shards=4)`` does
exactly that — ``deploy`` fans out to every shard, ``feed`` routes, and
``detections`` / ``events`` / ``on`` behave as if the engine were inline
(reads wait for queued frames to finish, and per player the detections
are identical to a single engine's).

The session also exposes what the runtime measures about itself:
per-shard throughput, queue-depth high-water marks and detection counts
via ``session.metrics``.

Run with::

    python examples/sharded_detection.py
"""

from repro.api import GestureSession, SessionConfig
from repro.core import LearnerConfig
from repro.detection import WorkflowConfig
from repro.kinect import (
    KinectSimulator,
    SwipeTrajectory,
    generate_multiuser_recording,
    user_by_name,
)
from repro.streams import SimulatedClock


def main() -> None:
    swipe = SwipeTrajectory(direction="right")
    trainer = KinectSimulator(user=user_by_name("adult"), clock=SimulatedClock())
    samples = [
        trainer.perform_variation(swipe, hold_start_s=0.3, hold_end_s=0.3)
        for _ in range(4)
    ]

    # An 8-player shared scene, everyone swiping on their own schedule.
    recording = generate_multiuser_recording(
        {"swipe_right": swipe}, user_count=8, gestures_per_user=2, seed=11
    )

    config = SessionConfig(
        shards=4,                      # 4 worker shards, players hashed across them
        backpressure="block",          # lossless replay; "drop_oldest" for live feeds
        workflow=WorkflowConfig(learner=LearnerConfig(joints=("rhand",))),
    )
    with GestureSession(config) as session:
        print("Learning 'swipe_right' from 4 samples, deploying to all 4 shards ...")
        session.learn("swipe_right", samples, deploy=True)

        session.on(
            "swipe_right",
            lambda event: print(
                f"  shard-routed detection: player {event.player} swiped "
                f"at t={event.timestamp:.2f}s"
            ),
        )

        print(f"\nFeeding {len(recording)} interleaved frames of 8 players ...")
        session.feed(recording.frames)
        session.drain()  # explicit barrier (reads would drain implicitly)

        per_player = {
            player_id: len(session.detections("swipe_right", partition=player_id))
            for player_id in recording.player_ids
        }
        print(f"\nDetections per player: {per_player}")
        assert all(count >= 1 for count in per_player.values()), (
            "every player's swipes should be detected despite the sharding"
        )

        print("\nRuntime metrics (per shard):")
        for shard in session.metrics.snapshot()["shards"]:
            print(
                f"  shard {shard['shard_id']}: "
                f"{shard['tuples_processed']} tuples, "
                f"{shard['detections']} detections, "
                f"queue hwm {shard['queue_depth_hwm']}, "
                f"{shard['tuples_per_second']:.0f} tuples/s busy throughput"
            )
        totals = session.metrics.totals()
        print(
            f"  total: {totals['tuples_processed']} tuples, "
            f"{totals['detections']} detections, 0 dropped"
            if totals["tuples_dropped"] == 0
            else f"  total: {totals}"
        )


if __name__ == "__main__":
    main()
